//! Offline stand-in for `criterion`.
//!
//! A real wall-clock micro-benchmark harness with criterion's macro and
//! builder surface (`criterion_group!`/`criterion_main!`, benchmark
//! groups, throughput annotation, `bench_with_input`) but none of its
//! statistics machinery: each benchmark is warmed up, then timed over a
//! fixed sample count, and mean/min per-iteration times are printed.
//! Good enough to compare relative costs (e.g. traced vs untraced engine)
//! in an offline container.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A formatted benchmark id, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, warm-up first, then `sample_size` measured runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measure: batches of runs until sample count reached or the
        // measurement budget is spent (whichever is later on tiny
        // routines, respecting at least one sample).
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.measurement_time && !self.samples.is_empty() {
                break;
            }
        }
    }
}

/// One named collection of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.criterion.sample_size,
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
        };
        f(&mut b);
        self.report(&id.to_string(), &b.samples);
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input));
    }

    /// Finishes the group (prints nothing extra; parity with criterion).
    pub fn finish(self) {}

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                format!("  {:.2} Melem/s", n as f64 / mean.as_secs_f64() / 1.0e6)
            }
            Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
                format!(
                    "  {:.2} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: mean {:?}  min {:?}  ({} samples){rate}",
            self.name,
            mean,
            min,
            samples.len()
        );
    }
}

/// The harness configuration/entry object.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the measured sample count.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// Runs a single unnamed-group benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
