//! Offline stand-in for `crossbeam`: the `scope` API over
//! `std::thread::scope` (which did not exist when crossbeam introduced
//! scoped threads, and which fully covers this workspace's usage).

use std::any::Any;

/// The scope handle passed to spawned closures (crossbeam's closures take
/// the scope again so they can spawn nested work).
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a worker inside the scope.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope whose spawned threads all join before `scope`
/// returns. Mirrors crossbeam's signature: the `Err` side (a panicked
/// child) is produced by std's scope unwinding instead, so in practice
/// this always returns `Ok` or propagates the panic.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_join_and_share() {
        let count = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| count.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }
}
