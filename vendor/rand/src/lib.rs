//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` — over a
//! SplitMix64 generator. Streams are deterministic per seed (what the
//! workload generators and the determinism tests rely on) but are *not*
//! bit-compatible with upstream rand's ChaCha-based `StdRng`.

/// The raw entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from raw bits (the stand-in for `Standard:
/// Distribution<T>`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by `gen_range`.
pub trait SampleRange {
    /// The produced value type.
    type Output;

    /// Draws one value from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;

            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Widening multiply: unbiased enough for simulation work.
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + off as $t
            }
        }

        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + off as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;

    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform bits; `f64` in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_from(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng as _StdRngForDocs;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }
}
