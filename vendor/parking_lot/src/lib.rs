//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind
//! parking_lot's non-poisoning API (lock never returns a `Result`).

use std::sync::MutexGuard;

/// A mutex whose `lock` does not expose poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, recovering from poisoning (parking_lot has no
    /// poisoning at all, so recovery matches its semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }
}
