//! Offline stand-in for `proptest`.
//!
//! Implements the strategy surface this workspace's property tests use —
//! integer ranges, `any::<T>()`, tuples, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, `Just` — plus the `proptest!` test macro.
//! Unlike real proptest there is no shrinking: each test runs its body
//! over `cases` deterministically seeded random samples (seed derived
//! from the test name), and a failing case panics with the plain
//! assertion message. That keeps failures reproducible without any
//! persistence files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner plumbing (RNG + configuration).
pub mod test_runner {
    use super::*;

    /// The deterministic generator driving one property test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes), so every
        /// property test has a stable, independent stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.gen::<u64>()
        }

        /// A float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.inner.gen::<f64>()
        }

        /// A uniform index in `0..n`.
        ///
        /// # Panics
        ///
        /// Panics if `n` is zero.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "cannot index an empty choice");
            self.inner.gen_range(0..n)
        }
    }

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` samples.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

use test_runner::TestRng;

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (for heterogeneous unions).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        (**self).sample_one(rng)
    }
}

/// `prop_map`'s strategy.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample_one(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample_one(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].sample_one(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + off as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + off as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample_one(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let off = ((u128::from(rng.next_u64()) * u128::from(span as u64)) >> 64) as $u;
                self.start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample_one(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// A `&str` is a regex strategy producing matching `String`s, as in real
/// proptest. Supported subset: literal characters, `[...]` classes with
/// ranges, and the repetition operators `{n}`, `{m,n}`, `?`, `+`, `*`
/// (unbounded repeats capped at 8).
impl Strategy for &str {
    type Value = String;

    fn sample_one(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a literal char or a character class.
            let atom: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unterminated [class] in regex strategy")
                    + i;
                let mut set = Vec::new();
                let body = &chars[i + 1..close];
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in [class]");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition operator.
            let (lo, hi) = match chars.get(i) {
                Some('?') => {
                    i += 1;
                    (0usize, 1usize)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {rep} in regex strategy")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad lower repeat bound"),
                            n.trim().parse().expect("bad upper repeat bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                }
                _ => (1, 1),
            };
            let count = if lo == hi {
                lo
            } else {
                (lo..=hi).sample_one(rng)
            };
            for _ in 0..count {
                out.push(atom[rng.index(atom.len())]);
            }
        }
        out
    }
}

/// Types with a canonical "anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Builds the canonical strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_one(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A `Vec` of `element`s with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The strategy [`vec`] builds.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.start..self.size.end).sample_one(rng);
            (0..len).map(|_| self.element.sample_one(rng)).collect()
        }
    }
}

/// Boxes a strategy for `prop_oneof!` (a free function so the macro can
/// unify arm types by inference).
pub fn boxed_arm<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Everything the tests import.
pub mod prelude {
    /// Mirror of real proptest's `prelude::prop` module re-export.
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof};
    pub use crate::{proptest, Arbitrary, Just, Strategy};
}

/// Asserts inside a property body (no shrinking here: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_arm($arm)),+])
    };
}

/// Declares property tests: each generated `#[test]` samples its
/// arguments `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $($crate::__proptest_one! {
            cfg = $cfg;
            $(#[$meta])* fn $name($($arg in $strat),*) $body
        })*
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $($crate::__proptest_one! {
            cfg = $crate::test_runner::Config::default();
            $(#[$meta])* fn $name($($arg in $strat),*) $body
        })*
    };
}

/// Expands one property test (implementation detail of [`proptest!`]).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),*) $body:block
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::sample_one(&($strat), &mut __rng);)*
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Shape {
        Dot(u64),
        Flag(bool),
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u64..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 100 }),
        ) {
            prop_assert!(pair < 10 || (100..110).contains(&pair));
        }

        #[test]
        fn oneof_hits_every_arm(
            shapes in prop::collection::vec(
                prop_oneof![
                    (0u64..5).prop_map(Shape::Dot),
                    any::<bool>().prop_map(Shape::Flag),
                ],
                1..50,
            ),
        ) {
            prop_assert!(!shapes.is_empty() && shapes.len() < 50);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_controls_cases(_x in 0u64..2) {
            // Just exercising the configured path.
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        let s = (0u64..1000, any::<bool>());
        for _ in 0..50 {
            assert_eq!(s.sample_one(&mut a), s.sample_one(&mut b));
        }
    }
}
