//! Offline stand-in for `serde`.
//!
//! This workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! markers on plain data types (no `serde_json` or other serializer is in
//! the dependency tree), so the traits here are deliberately empty: the
//! derives expand to empty impls and everything compiles exactly as it
//! would against real serde. Actual wire formats in this workspace are
//! hand-rolled (`twobit-workload`'s binary trace, `twobit-obs`'s JSONL).

/// Marker trait matching `serde::Serialize`'s role in this workspace.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s role in this workspace.
pub trait Deserialize<'de> {}

/// Marker trait matching `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}
