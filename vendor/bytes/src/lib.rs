//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes`/`BytesMut` backed by plain `Vec<u8>` plus the subset
//! of `Buf`/`BufMut` the workspace's binary trace codec uses. No
//! refcounted zero-copy slicing — callers here never rely on it.

use std::fmt;

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Total length, including consumed bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The unconsumed bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.data.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

/// Read side: sequential little-endian extraction.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns the next byte.
    fn get_u8(&mut self) -> u8;

    /// `true` while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes([self.get_u8(), self.get_u8()])
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes([self.get_u8(), self.get_u8(), self.get_u8(), self.get_u8()])
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        for slot in &mut b {
            *slot = self.get_u8();
        }
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.pos < self.data.len(), "buffer underflow");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

/// Write side: sequential little-endian appends.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        for b in v.to_le_bytes() {
            self.put_u8(b);
        }
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.put_u8(b);
        }
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.put_u8(b);
        }
    }

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]) {
        for &b in src {
            self.put_u8(b);
        }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_roundtrip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u64_le(0xdead_beef_1234_5678);
        w.put_u16_le(42);
        w.put_u8(7);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u64_le(), 0xdead_beef_1234_5678);
        assert_eq!(r.get_u16_le(), 42);
        assert_eq!(r.get_u8(), 7);
        assert!(!r.has_remaining());
    }

    #[test]
    fn from_static_reads() {
        let mut b = Bytes::from_static(b"ab");
        assert_eq!(b.get_u8(), b'a');
        assert_eq!(b.remaining(), 1);
    }
}
