//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The real serde_derive generates visitor-based impls; since the stub
//! traits are empty markers, all we need is the item's name and generic
//! parameters, parsed directly from the token stream (no syn/quote in an
//! offline build). Lifetimes and type parameters are carried through so
//! generic containers would also derive cleanly.

use proc_macro::{TokenStream, TokenTree};

/// The parts of an item header we need to emit an impl block.
struct Header {
    name: String,
    /// Generic parameter *declarations*, e.g. `<'a, T: Clone>` (may be empty).
    decl: String,
    /// Generic parameter *uses*, e.g. `<'a, T>` (may be empty).
    args: String,
}

/// Extracts the item name and generics from a `struct`/`enum` definition.
fn parse_header(input: TokenStream) -> Header {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifiers until the
    // `struct`/`enum` keyword.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) => {
                let word = i.to_string();
                tokens.next();
                if word == "struct" || word == "enum" || word == "union" {
                    break;
                }
                // `pub`, `pub(crate)` parens are Groups, handled below.
            }
            Some(_) => {
                tokens.next();
            }
            None => panic!("derive input has no struct/enum keyword"),
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    // Collect generics if the next token opens `<...>`.
    let mut decl = String::new();
    let mut args = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut raw = String::new();
            for tok in tokens.by_ref() {
                if let TokenTree::Punct(p) = &tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                raw.push_str(&tok.to_string());
                raw.push(' ');
            }
            decl = format!("<{raw}>");
            args = format!("<{}>", strip_bounds(&raw));
        }
    }
    Header { name, decl, args }
}

/// Turns `'a, T: Clone + Send, const N: usize` into `'a, T, N` for the
/// impl's type-argument position. Splits on top-level commas and keeps the
/// first path segment of each parameter.
fn strip_bounds(raw: &str) -> String {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in raw.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                current.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out.iter()
        .map(|p| {
            let p = p.trim();
            let p = p.strip_prefix("const ").unwrap_or(p);
            p.split(':').next().unwrap_or(p).trim().to_string()
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Derives the empty `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let h = parse_header(input);
    format!(
        "impl {decl} serde::Serialize for {name} {args} {{}}",
        decl = h.decl,
        name = h.name,
        args = h.args
    )
    .parse()
    .expect("generated impl parses")
}

/// Derives the empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let h = parse_header(input);
    // The fresh `'de` lifetime must be threaded into existing generics.
    let decl = if h.decl.is_empty() {
        "<'de>".to_string()
    } else {
        format!("<'de, {}", &h.decl[1..])
    };
    format!(
        "impl {decl} serde::Deserialize<'de> for {name} {args} {{}}",
        name = h.name,
        args = h.args
    )
    .parse()
    .expect("generated impl parses")
}
