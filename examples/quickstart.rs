//! Quickstart: build the Figure 3-1 system, run the paper's workload
//! model on it, and read the results in the paper's units.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use twobit::sim::System;
use twobit::types::{ProtocolKind, SystemConfig};
use twobit::workload::{SharingModel, SharingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An 8-processor machine: 8 private caches, 8 interleaved memory
    // modules, each module's controller holding a 2-bit entry per block.
    let config = SystemConfig::with_defaults(8).with_protocol(ProtocolKind::TwoBit);
    println!(
        "topology: {} processor-cache pairs, {} memory modules, {} / {}-way caches, protocol {}",
        config.caches,
        config.address_map.modules(),
        config.cache.total_blocks(),
        config.cache.assoc,
        config.protocol,
    );

    // The paper's moderate-sharing workload: q = 0.05 of references touch
    // writeable shared blocks, 20% of those are writes.
    let workload = SharingModel::new(SharingParams::moderate(), config.caches, 42)?;

    let mut system = System::build(config)?;
    let report = system.run(workload, 50_000)?;

    println!();
    println!(
        "ran {} references in {} cycles",
        report.stats.total_references(),
        report.cycles
    );
    println!("hit ratio:                 {:.3}", report.hit_ratio());
    println!(
        "commands received/ref:     {:.4}  (the Table 4-1/4-2 axis)",
        report.commands_per_reference()
    );
    println!(
        "  of which useless:        {:.4}  (broadcast probes finding nothing)",
        report.useless_per_reference()
    );
    println!(
        "stolen cache cycles/ref:   {:.4}",
        report.stolen_per_reference()
    );
    println!(
        "broadcasts sent/ref:       {:.4}",
        report.broadcasts_per_reference()
    );
    println!(
        "network deliveries/ref:    {:.4}",
        report.deliveries_per_reference()
    );

    let totals = report.stats.controller_totals();
    println!();
    println!(
        "controller activity: {} REQUESTs, {} MREQUESTs, {} EJECTs, {} broadcasts, {} queued conflicts",
        totals.requests, totals.mrequests, totals.ejects, totals.broadcasts_sent, totals.conflicts_queued,
    );
    Ok(())
}
