//! Walkthrough of the section 4.4 translation-buffer enhancement.
//!
//! The enhancement keeps a small cache of *owner identities* at each
//! memory controller. When the two-bit scheme would broadcast, a buffer
//! hit lets the controller send targeted commands instead — "selective
//! message handling can be performed just as with the n+1 bit approach".
//!
//! ```sh
//! cargo run --release --example translation_buffer
//! ```

use twobit::sim::System;
use twobit::types::{fmt3, ProtocolKind, SystemConfig, Table};
use twobit::workload::{SharingModel, SharingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let refs_per_cpu = 30_000;
    let params = SharingParams::high().with_w(0.3);

    let mut table = Table::new(
        "Translation buffer: from two-bit to (almost) full map",
        vec![
            "configuration".into(),
            "cmds/ref".into(),
            "useless/ref".into(),
            "tlb hit ratio".into(),
        ],
    );

    let mut run =
        |label: String, protocol: ProtocolKind| -> Result<(), Box<dyn std::error::Error>> {
            let config = SystemConfig::with_defaults(n).with_protocol(protocol);
            let workload = SharingModel::new(params, n, 99)?;
            let mut system = System::build(config)?;
            let report = system.run(workload, refs_per_cpu)?;
            let hit_ratio = report.stats.controller_totals().tlb_hit_ratio();
            table.push_row(vec![
                label,
                fmt3(report.commands_per_reference()),
                fmt3(report.useless_per_reference()),
                if hit_ratio > 0.0 {
                    fmt3(hit_ratio)
                } else {
                    "-".into()
                },
            ]);
            Ok(())
        };

    run("two-bit (no buffer)".into(), ProtocolKind::TwoBit)?;
    for entries in [2u32, 4, 8, 16, 32] {
        run(
            format!("two-bit + {entries}-entry buffer"),
            ProtocolKind::TwoBitTlb { entries },
        )?;
    }
    run("full map (the target)".into(), ProtocolKind::FullMap)?;

    print!("{table}");
    println!();
    println!(
        "The workload's shared working set is 16 blocks: once the buffer covers it, hit ratios \
         approach 1 and the useless-command column collapses toward the full map's zero — \
         \"the performance can achieve any desired approximation of the full bit map approach\"."
    );
    Ok(())
}
