//! Trace walkthrough: watch the two-bit protocol arbitrate one contended
//! block, end to end through the observability layer.
//!
//! Four CPUs hammer the same shared block (read, then write — the
//! section 3.2.5 upgrade race, continuously). The run records every
//! event through a [`JsonlTracer`], the JSONL is parsed back into
//! events, and the contended block's history is rendered as a per-actor
//! timeline. Run with:
//!
//! ```sh
//! cargo run --example trace_walkthrough
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use twobit_obs::{render_block_timeline, JsonlTracer, SimEvent, TxnClass};
use twobit_sim::System;
use twobit_types::{AccessKind, BlockAddr, CacheId, MemRef, SystemConfig, WordAddr};
use twobit_workload::Workload;

/// Every CPU hits the same block — even CPUs write, odd CPUs read — so
/// invalidations, broadcasts, and upgrade races all land on one address.
struct PingPong;

impl Workload for PingPong {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        MemRef {
            addr: WordAddr::new(1, 0),
            kind: if k.index().is_multiple_of(2) {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    fn name(&self) -> &'static str {
        "ping-pong"
    }
}

/// A fixed per-cpu reference script, repeating its last entry if drained.
struct Script(Vec<Vec<MemRef>>, Vec<usize>);

impl Script {
    fn new(per_cpu: Vec<Vec<MemRef>>) -> Self {
        let cursors = vec![0; per_cpu.len()];
        Script(per_cpu, cursors)
    }
}

impl Workload for Script {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let script = &self.0[k.index()];
        let i = self.1[k.index()].min(script.len() - 1);
        self.1[k.index()] += 1;
        script[i]
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

/// A `Write` sink we can read back after the tracer is boxed away.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs `workload` on a fresh `cpus`-way two-bit system with a JSONL
/// tracer attached; returns the chronologically sorted events, the raw
/// JSONL text, and the report.
fn traced_run<W: Workload>(
    cpus: usize,
    workload: W,
    refs_per_cpu: u64,
) -> (Vec<SimEvent>, String, twobit_sim::Report) {
    let buf = SharedBuf::default();
    let mut system = System::build(SystemConfig::with_defaults(cpus)).expect("valid config");
    system.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
    let report = system.run(workload, refs_per_cpu).expect("coherent run");
    drop(system.take_tracer());
    let text = String::from_utf8(buf.0.borrow().clone()).expect("traces are UTF-8");
    let mut events: Vec<SimEvent> = text.lines().filter_map(SimEvent::from_jsonl).collect();
    // Events are recorded in causal order; message injections carry their
    // network-level timestamp, so a stable sort by time gives the
    // wall-clock view without breaking same-cycle causality.
    events.sort_by_key(|e| e.t);
    (events, text, report)
}

fn main() {
    let contended = BlockAddr::new(1);

    // Scenario 1: the section 3.2.5 write race, isolated. Both CPUs read
    // the block (Present* — both hold it unmodified), then both write:
    // two MREQUESTs race, one wins MGRANTED(yes), the loser's copy is
    // invalidated in flight and its stale MREQUEST bounces (MGRANTED(no))
    // into a retry.
    let rd = MemRef {
        addr: WordAddr::new(1, 0),
        kind: AccessKind::Read,
    };
    let wr = MemRef {
        addr: WordAddr::new(1, 0),
        kind: AccessKind::Write,
    };
    let (events, _, _) = traced_run(2, Script::new(vec![vec![rd, wr], vec![rd, wr]]), 2);
    println!("== Scenario 1: the 3.2.5 stale-MREQUEST race (2 cpus, rd+wr each) ==");
    print!("{}", render_block_timeline(&events, contended));

    // Scenario 2: sustained 4-way contention, plus the raw trace format
    // and the metrics summary.
    let (events, text, report) = traced_run(4, PingPong, 6);

    println!();
    println!("== Raw JSONL (first 8 of {} events) ==", events.len());
    for line in text.lines().take(8) {
        println!("{line}");
    }

    println!();
    println!("== Timeline of the contended block (4 cpus, sustained) ==");
    print!("{}", render_block_timeline(&events, contended));

    println!();
    println!("== Run summary ==");
    println!(
        "cycles: {}, hit ratio: {:.3}",
        report.cycles,
        report.hit_ratio()
    );
    for class in TxnClass::ALL {
        if let Some(lat) = report.latency(class) {
            if lat.count > 0 {
                println!(
                    "{class:<15} n={:<4} mean={:>6.1} cyc  p90<={:<4} max={}",
                    lat.count, lat.mean, lat.p90, lat.max
                );
            }
        }
    }
    println!(
        "useless commands: {:.1}% of {} delivered",
        report.useless_rate() * 100.0,
        report.obs.as_ref().map_or(0, |o| o.commands_delivered)
    );
}
