//! Every coherence scheme from the paper's section 2 spectrum, on one
//! workload, in one table.
//!
//! ```sh
//! cargo run --release --example protocol_zoo
//! ```

use twobit::sim::System;
use twobit::types::{fmt3, AddressMap, ProtocolKind, SystemConfig, Table};
use twobit::workload::{SharingModel, SharingParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let refs_per_cpu = 25_000;
    let params = SharingParams::moderate();

    let protocols = [
        ("2.2 static software", ProtocolKind::StaticSoftware),
        (
            "2.3 classical write-through",
            ProtocolKind::ClassicalWriteThrough,
        ),
        ("2.4.2 full map (n+1 bits)", ProtocolKind::FullMap),
        ("2.4.3 full map + local state", ProtocolKind::FullMapLocal),
        ("3    two-bit (this paper)", ProtocolKind::TwoBit),
        (
            "4.4  two-bit + translation buffer",
            ProtocolKind::TwoBitTlb { entries: 16 },
        ),
        ("2.5  write-once (bus)", ProtocolKind::WriteOnce),
        ("2.5  Illinois/MESI (bus)", ProtocolKind::Illinois),
    ];

    let mut table = Table::new(
        format!("The section 2 spectrum (n={n}, moderate sharing, {refs_per_cpu} refs/cpu)"),
        vec![
            "scheme".into(),
            "cmds/ref".into(),
            "useless/ref".into(),
            "deliveries/ref".into(),
            "hit ratio".into(),
        ],
    );

    for (label, protocol) in protocols {
        let mut config = SystemConfig::with_defaults(n).with_protocol(protocol);
        if protocol.is_bus_based() {
            config.address_map = AddressMap::interleaved(1);
        }
        let workload = SharingModel::new(params, n, 0xbeef)?;
        let mut system = System::build(config)?;
        let report = system.run(workload, refs_per_cpu)?;
        table.push_row(vec![
            label.to_string(),
            fmt3(report.commands_per_reference()),
            fmt3(report.useless_per_reference()),
            fmt3(report.deliveries_per_reference()),
            fmt3(report.hit_ratio()),
        ]);
    }

    print!("{table}");
    println!();
    println!("Reading guide (what the paper's section 2 predicts, measured here):");
    println!(" - static software avoids all coherence traffic by never caching shared data,");
    println!("   paying with shared hit ratio;");
    println!(" - classical write-through broadcasts every store;");
    println!(" - the full-map family is the minimal-traffic baseline;");
    println!(" - two-bit adds broadcast overhead only on sharing events, and the translation");
    println!("   buffer removes most of it;");
    println!(" - bus snooping delivers every transaction to every cache (fine at n=8, the");
    println!("   reason non-bus machines needed directories at all).");
    Ok(())
}
