//! The paper's sweet spot: independent processes (no write sharing).
//!
//! "It can then be observed from the tables that the two-bit approach can
//! give acceptable performance with up to 64 processors, assuming a low
//! level of sharing such as in the case of execution of independent
//! processes." With no sharing at all, the two-bit scheme's lack of owner
//! identities costs *nothing*: broadcasts only happen on sharing events.
//!
//! ```sh
//! cargo run --release --example independent_processes
//! ```

use twobit::sim::System;
use twobit::types::{fmt3, ProtocolKind, SystemConfig, Table};
use twobit::workload::scenarios::IndependentProcesses;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let refs_per_cpu = 30_000;
    let mut table = Table::new(
        "Independent processes: two-bit vs full map (the economical case)",
        vec![
            "n".into(),
            "protocol".into(),
            "cmds/ref".into(),
            "broadcasts/ref".into(),
            "hit ratio".into(),
        ],
    );

    for n in [4usize, 8, 16] {
        for protocol in [ProtocolKind::TwoBit, ProtocolKind::FullMap] {
            let config = SystemConfig::with_defaults(n).with_protocol(protocol);
            let workload = IndependentProcesses::new(n, 96, 7)?;
            let mut system = System::build(config)?;
            let report = system.run(workload, refs_per_cpu)?;
            table.push_row(vec![
                n.to_string(),
                protocol.to_string(),
                fmt3(report.commands_per_reference()),
                fmt3(report.broadcasts_per_reference()),
                fmt3(report.hit_ratio()),
            ]);
        }
    }

    print!("{table}");
    println!();
    println!(
        "With zero write sharing the two directory schemes are indistinguishable in traffic — \
         but the full map pays n+1 bits per memory block for that equality, while the two-bit \
         map pays 2. That asymmetry is the paper's whole argument."
    );
    Ok(())
}
