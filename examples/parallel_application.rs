//! Where the two-bit scheme degrades: a cooperating parallel application
//! with heavy write sharing — lock contention plus migratory data.
//!
//! This is the workload class for which the paper concedes "the
//! unmodified two-bit solution is appropriate only for configurations
//! with 8 or less processors".
//!
//! ```sh
//! cargo run --release --example parallel_application
//! ```

use twobit::sim::System;
use twobit::types::{fmt3, ProtocolKind, SystemConfig, Table};
use twobit::workload::scenarios::{LockContention, Migratory};
use twobit::workload::Workload;

fn run(
    protocol: ProtocolKind,
    n: usize,
    make: impl Fn() -> Box<dyn Workload>,
) -> Result<twobit::sim::Report, Box<dyn std::error::Error>> {
    let config = SystemConfig::with_defaults(n).with_protocol(protocol);
    let mut system = System::build(config)?;
    Ok(system.run(make(), 20_000)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut table = Table::new(
        "Parallel application (locks + migratory data): overhead growth with n",
        vec![
            "workload".into(),
            "n".into(),
            "two-bit cmds/ref".into(),
            "full-map cmds/ref".into(),
            "extra (the paper's cost)".into(),
        ],
    );

    for n in [4usize, 8, 16] {
        let locks = || -> Box<dyn Workload> {
            Box::new(LockContention::new(n, 4, 11).expect("valid scenario"))
        };
        let two_bit = run(ProtocolKind::TwoBit, n, locks)?;
        let full_map = run(ProtocolKind::FullMap, n, locks)?;
        table.push_row(vec![
            "lock-contention".into(),
            n.to_string(),
            fmt3(two_bit.commands_per_reference()),
            fmt3(full_map.commands_per_reference()),
            fmt3(two_bit.commands_per_reference() - full_map.commands_per_reference()),
        ]);
    }
    for n in [4usize, 8, 16] {
        let migratory = || -> Box<dyn Workload> {
            Box::new(Migratory::new(n, 8, 64, 13).expect("valid scenario"))
        };
        let two_bit = run(ProtocolKind::TwoBit, n, migratory)?;
        let full_map = run(ProtocolKind::FullMap, n, migratory)?;
        table.push_row(vec![
            "migratory".into(),
            n.to_string(),
            fmt3(two_bit.commands_per_reference()),
            fmt3(full_map.commands_per_reference()),
            fmt3(two_bit.commands_per_reference() - full_map.commands_per_reference()),
        ]);
    }

    print!("{table}");
    println!();
    println!(
        "The extra column grows roughly linearly with n: every sharing event costs the two-bit \
         scheme a broadcast where the full map sends one or two targeted commands. Section 4.4's \
         translation buffer exists precisely to claw this back (see the translation_buffer \
         example)."
    );
    Ok(())
}
