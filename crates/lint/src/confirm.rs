//! Dynamic confirmation of flow-graph liveness findings.
//!
//! The flow analyses ([`crate::flow_graph`]) are static: they flag a
//! (state, message) arrival that *could* livelock if the implicated
//! race window is reachable. This module asks the model checker whether
//! it is, by steering its state-space search toward the window with
//! [`ModelChecker::explore_guided`] rather than exploring breadth-first
//! and hoping.
//!
//! The barrier-livelock window (the PR 9 class) is a **channel
//! co-occupancy**: one module→cache channel holding a completion
//! (grant-class) message with a recall-class message queued behind it.
//! Under the shipped gate discipline the completion is withheld until
//! the invalidations are acknowledged and the recall is withheld behind
//! it; under the pre-fix discipline the recall passes the completion
//! and lands at a cache that is still `awaiting-grant` and owes no
//! data. Reaching the co-occupancy dynamically proves the static
//! finding describes a real execution window — the search's action path
//! is replayed into a `twobit-obs` timeline as evidence. Budget
//! exhaustion downgrades the verdict to `PLAUSIBLE`.

use twobit_core::{FlightMsg, ModelChecker, Node, State};
use twobit_obs::RingTracer;
use twobit_types::{MemRef, ProtocolKind, SystemConfig, WordAddr};

/// Verdict string for a finding whose implicated window the model
/// checker reached.
pub const CONFIRMED: &str = "CONFIRMED";
/// Verdict string for a finding whose window was not reached within
/// the search budget.
pub const PLAUSIBLE: &str = "PLAUSIBLE";

/// The outcome of a dynamic confirmation run.
#[derive(Debug, Clone)]
pub struct Confirmation {
    /// [`CONFIRMED`] or [`PLAUSIBLE`].
    pub verdict: &'static str,
    /// The replayable evidence: how the search went and, when
    /// confirmed, the per-block observation timeline of the action path
    /// that reaches the implicated window.
    pub evidence: String,
}

/// Whether any module→cache channel in `state` holds a grant-class
/// completion with a recall-class message queued behind it — the
/// window the inv-ack gate's withholding discipline exists to order.
fn grant_recall_window(mc: &ModelChecker, state: &State) -> bool {
    mc.probe_channels(state).iter().any(|((src, dst), queue)| {
        matches!(src, Node::Module(_))
            && matches!(dst, Node::Cache(_))
            && queue.iter().enumerate().any(|(i, m)| {
                matches!(m, FlightMsg::Grant { .. } | FlightMsg::UpgradeAck)
                    && queue[i + 1..]
                        .iter()
                        .any(|n| matches!(n, FlightMsg::Recall))
            })
    })
}

/// Confirms the barrier-livelock finding class for the two-bit scheme:
/// a write miss that invalidates a sharer puts the exclusive grant in
/// flight; a follow-up read miss from the invalidated cache recalls the
/// new owner while the grant is still queued. The guided search scores
/// states by coherence traffic in flight and targets the
/// grant-before-recall co-occupancy.
#[must_use]
pub fn confirm_barrier_livelock(node_budget: u64, jobs: usize) -> Confirmation {
    let rd = |b: u64| MemRef::read(WordAddr::new(b, 0));
    let wr = |b: u64| MemRef::write(WordAddr::new(b, 0));
    let config = SystemConfig::with_defaults(2).with_protocol(ProtocolKind::TwoBit);
    // c1 reads (becoming a sharer the write must invalidate), c0's
    // write then carries the gate, and c1's second read — a miss once
    // its copy is invalidated — recalls the freshly granted owner.
    let script = vec![vec![wr(1)], vec![rd(1), rd(1)]];
    let mc = match ModelChecker::new(config, script) {
        Ok(mc) => mc,
        Err(e) => {
            return Confirmation {
                verdict: PLAUSIBLE,
                evidence: format!("model checker rejected the confirmation scenario: {e}"),
            }
        }
    };
    let score = |mc: &ModelChecker, s: &State| -> u64 {
        let mut score = 0u64;
        for ((_, dst), queue) in mc.probe_channels(s) {
            for m in &queue {
                score += match m {
                    FlightMsg::Grant { .. } | FlightMsg::UpgradeAck => 4,
                    FlightMsg::Recall => 4,
                    FlightMsg::Inv => 2,
                    FlightMsg::Command => 1,
                };
            }
            if matches!(dst, Node::Cache(_)) && queue.len() > 1 {
                score += 4; // depth on one cache-bound link is the window's shape
            }
        }
        score
    };
    let search = mc.explore_guided(node_budget, jobs, &score, &grant_recall_window);
    match search.hit {
        Some(path) => {
            let mut ring = RingTracer::new(path.len().max(1));
            let replay = mc.replay_traced(&path, &mut ring);
            let events: Vec<_> = ring.events().into_iter().cloned().collect();
            let mut evidence = format!(
                "guided search reached the implicated window after {} state(s): a \
                 module→cache channel holds a grant-class completion with a recall \
                 queued behind it; without the gate's withholding the recall would \
                 overtake the grant and land at a cache still awaiting its fill.\n",
                search.states_visited
            );
            let mut blocks = Vec::new();
            for e in &events {
                if !blocks.contains(&e.block) {
                    blocks.push(e.block);
                }
            }
            for block in blocks {
                evidence.push_str(&twobit_obs::render_block_timeline(&events, block));
            }
            if let Err(e) = replay {
                evidence.push_str(&format!("replay error: {e}\n"));
            }
            Confirmation {
                verdict: CONFIRMED,
                evidence,
            }
        }
        None => Confirmation {
            verdict: PLAUSIBLE,
            evidence: format!(
                "guided search did not reach the implicated window within {} of {} \
                 budgeted state(s){}",
                search.states_visited,
                node_budget,
                if search.truncated {
                    " (budget exhausted with states still pending)"
                } else {
                    " (state space exhausted — the window is unreachable in this scenario)"
                }
            ),
        },
    }
}

/// Attaches a confirmation to every finding of the barrier-livelock
/// class (the flow-unserviced overtake findings and the wait cycle),
/// sharing one guided-search run across them.
pub fn confirm_livelock_findings(findings: &mut [crate::Finding], node_budget: u64, jobs: usize) {
    let implicated = |f: &crate::Finding| {
        (f.analysis == "flow-unserviced" && f.message.contains("overtake"))
            || f.analysis == "flow-wait-cycle"
    };
    if !findings.iter().any(&implicated) {
        return;
    }
    let conf = confirm_barrier_livelock(node_budget, jobs);
    for f in findings.iter_mut().filter(|f| implicated(f)) {
        f.verdict = Some(conf.verdict);
        f.evidence = Some(conf.evidence.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grant_recall_window_is_reachable_and_confirmed() {
        let conf = confirm_barrier_livelock(500_000, 2);
        assert_eq!(conf.verdict, CONFIRMED, "{}", conf.evidence);
        assert!(conf.evidence.contains("guided search reached"));
    }

    #[test]
    fn a_starved_budget_degrades_to_plausible() {
        let conf = confirm_barrier_livelock(1, 1);
        assert_eq!(conf.verdict, PLAUSIBLE);
    }
}
