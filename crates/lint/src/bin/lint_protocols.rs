//! Lints every shipped protocol's transition table and (optionally)
//! differentially cross-checks the tables against the model checker's
//! explored state graphs. Exits nonzero on any finding.
//!
//! ```text
//! lint_protocols [--json PATH] [--cross-check] [--budget N] [--jobs N]
//!                [--demo-drop-invalidate]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use twobit_core::transitions::ActionKind;
use twobit_core::DirectoryProtocol;
use twobit_lint::{cross_check, lint_table, render_human, render_json, Finding};

struct Options {
    json: Option<String>,
    cross_check: bool,
    budget: u64,
    jobs: usize,
    demo_drop_invalidate: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: None,
        cross_check: false,
        budget: 150_000,
        jobs: 2,
        demo_drop_invalidate: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                opts.json = Some(args.next().ok_or("--json requires a path")?);
            }
            "--cross-check" => opts.cross_check = true,
            "--budget" => {
                let v = args.next().ok_or("--budget requires a number")?;
                opts.budget = v.parse().map_err(|_| format!("bad --budget value '{v}'"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a number")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
            }
            "--demo-drop-invalidate" => opts.demo_drop_invalidate = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lint_protocols [--json PATH] [--cross-check] [--budget N] \
                     [--jobs N] [--demo-drop-invalidate]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Seeds the classic directory bug — dropping the invalidation from the
/// write-hit-on-Present* upgrade — into a copy of the two-bit table and
/// lints it, demonstrating what the analyses catch.
fn demo_drop_invalidate() -> Vec<Finding> {
    let mut table = twobit_core::TwoBitDirectory::new()
        .transition_table()
        .expect("two-bit ships a table")
        .clone();
    let rule = table
        .rule_mut("modify-fresh-shared")
        .expect("two-bit declares the shared-upgrade rule");
    rule.actions
        .retain(|a| !matches!(a, ActionKind::Invalidate { .. }));
    println!("seeded bug: removed the invalidate from rule 'modify-fresh-shared'");
    println!("(a write hit on a Present* block now upgrades without BROADINV)\n");
    lint_table(&table)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    if opts.demo_drop_invalidate {
        findings.extend(demo_drop_invalidate());
    } else {
        for table in twobit_core::shipped_tables() {
            let before = findings.len();
            findings.extend(lint_table(table));
            let n = findings.len() - before;
            println!(
                "lint {:<14} {} rule(s), {} finding(s)",
                table.scheme,
                table.rules.len(),
                n
            );
        }
        if opts.cross_check {
            println!(
                "cross-check: replaying model-checker edges against the tables \
                 (budget {}, jobs {})",
                opts.budget, opts.jobs
            );
            findings.extend(cross_check(opts.budget, opts.jobs));
        }
    }

    print!("{}", render_human(&findings));

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, render_json(&findings)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
