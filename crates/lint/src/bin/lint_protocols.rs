//! Lints every shipped protocol's transition table — the five
//! per-table analyses plus the three whole-system flow analyses
//! (unserviced messages, wait cycles, reorder sensitivity) — and
//! (optionally) differentially cross-checks the tables against the
//! model checker's explored state graphs. Exits nonzero on any finding.
//!
//! ```text
//! lint_protocols [--json PATH] [--cross-check] [--budget N] [--jobs N]
//!                [--demo-drop-invalidate] [--demo-barrier-livelock]
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use twobit_core::transitions::ActionKind;
use twobit_core::DirectoryProtocol;
use twobit_dist::flow::GateSpec;
use twobit_lint::confirm::confirm_livelock_findings;
use twobit_lint::flow_graph::lint_flow;
use twobit_lint::{cross_check, dedup_findings, lint_table, render_human, render_json, Finding};

struct Options {
    json: Option<String>,
    cross_check: bool,
    budget: u64,
    jobs: usize,
    demo_drop_invalidate: bool,
    demo_barrier_livelock: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: None,
        cross_check: false,
        budget: 150_000,
        jobs: 2,
        demo_drop_invalidate: false,
        demo_barrier_livelock: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                opts.json = Some(args.next().ok_or("--json requires a path")?);
            }
            "--cross-check" => opts.cross_check = true,
            "--budget" => {
                let v = args.next().ok_or("--budget requires a number")?;
                opts.budget = v.parse().map_err(|_| format!("bad --budget value '{v}'"))?;
            }
            "--jobs" => {
                let v = args.next().ok_or("--jobs requires a number")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs value '{v}'"))?;
            }
            "--demo-drop-invalidate" => opts.demo_drop_invalidate = true,
            "--demo-barrier-livelock" => opts.demo_barrier_livelock = true,
            "--help" | "-h" => {
                return Err(
                    "usage: lint_protocols [--json PATH] [--cross-check] [--budget N] \
                     [--jobs N] [--demo-drop-invalidate] [--demo-barrier-livelock]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

/// Seeds the classic directory bug — dropping the invalidation from the
/// write-hit-on-Present* upgrade — into a copy of the two-bit table and
/// lints it, demonstrating what the analyses catch.
fn demo_drop_invalidate() -> Vec<Finding> {
    let mut table = twobit_core::TwoBitDirectory::new()
        .transition_table()
        .expect("two-bit ships a table")
        .clone();
    let rule = table
        .rule_mut("modify-fresh-shared")
        .expect("two-bit declares the shared-upgrade rule");
    rule.actions
        .retain(|a| !matches!(a, ActionKind::Invalidate { .. }));
    println!("seeded bug: removed the invalidate from rule 'modify-fresh-shared'");
    println!("(a write hit on a Present* block now upgrades without BROADINV)\n");
    lint_table(&table)
}

/// Seeds the PR 9 livelock — the pre-fix inv-ack gate that held
/// completions but let later recalls pass straight through — and runs
/// the flow analyses over the two-bit scheme under it. The resulting
/// unserviced-liveness finding is then confirmed dynamically: a guided
/// model-checker search is steered toward the implicated race window
/// and the reaching path rendered as a replayable timeline.
fn demo_barrier_livelock(budget: u64, jobs: usize) -> Vec<Finding> {
    let table = twobit_core::TwoBitDirectory::new()
        .transition_table()
        .expect("two-bit ships a table");
    println!("seeded bug: gate discipline set to the pre-fix barrier");
    println!("(completions are withheld for inv-acks, but later recalls pass the open gate)\n");
    let mut findings = lint_flow(table, GateSpec::pr9_regression());
    confirm_livelock_findings(&mut findings, budget, jobs);
    findings
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut findings = Vec::new();
    if opts.demo_drop_invalidate {
        findings.extend(demo_drop_invalidate());
    }
    if opts.demo_barrier_livelock {
        findings.extend(demo_barrier_livelock(opts.budget, opts.jobs));
    }
    if !opts.demo_drop_invalidate && !opts.demo_barrier_livelock {
        let gate = GateSpec::shipped();
        for table in twobit_core::shipped_tables() {
            let mut these = lint_table(table);
            these.extend(lint_flow(table, gate));
            println!(
                "lint {:<14} {} rule(s), {} finding(s)",
                table.scheme,
                table.rules.len(),
                these.len()
            );
            findings.extend(these);
        }
        findings = dedup_findings(findings);
        if opts.cross_check {
            println!(
                "cross-check: replaying model-checker edges against the tables \
                 (budget {}, jobs {})",
                opts.budget, opts.jobs
            );
            findings.extend(cross_check(opts.budget, opts.jobs));
        }
    }

    print!("{}", render_human(&findings));

    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, render_json(&findings)) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("wrote {path}");
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
