//! Whole-system liveness analyses over the message-flow graph.
//!
//! The per-table analyses in the crate root check one role — the memory
//! module — in isolation. The liveness bug class PR 9 hit dynamically
//! lives *between* roles: a `PURGE` overtook a barrier-withheld
//! exclusive grant and landed at a cache that was still
//! `awaiting-grant`, a (state, message) pair with no rule to service
//! it. This module assembles the whole system — the lifted memory role,
//! the dist layer's gate machinery, the cache controller, the client
//! edge (see [`twobit_core::flow`] and [`twobit_dist::flow`]) — into a
//! [`FlowSystem`] and runs three analyses over it:
//!
//! * **Unserviced messages** ([`FlowSystem::check_unserviced`]) — every
//!   flow-reachable (state, message-class) arrival either fires a rule
//!   or is deferred; and every blocked wait is *productively* serviced:
//!   the emission that elicits the awaited reply must, at every state
//!   it can arrive in, either produce the reply or be deferred until it
//!   can. The PR 9 livelock is exactly a productivity hole.
//! * **Wait cycles** ([`FlowSystem::check_wait_cycles`]) — no cycle of
//!   blocked states in which each member waits for a message produced
//!   only downstream of another member. The client edge is excluded:
//!   its at-least-once retry loop is the system's progress engine, not
//!   a wait.
//! * **Reorder sensitivity** ([`FlowSystem::check_reorder`]) — every
//!   pair of memory→cache emissions that can reach the same destination
//!   and whose delivery order changes the destination's behavior must
//!   be covered by an ordering guarantee the [`GateSpec`] actually
//!   provides (the inv-ack barrier's held completions, the gated
//!   deferral of later emissions, or FIFO links), and barrier-reliant
//!   pairs must be *declared* on their table rule
//!   (`.guarded_by(OrderGuarantee::AckBarrier)`).
//!
//! The analyses are deliberately conservative in different directions:
//! arrival sets are closed under unsolicited perturbations (an `INV`
//! can convert an upgrade wait into a grant wait, so the stale
//! `MGRANTED` must be serviced at `awaiting-grant` too), while the
//! reorder swap test only compares pairs at states where both arrivals
//! are individually legal. Uncovered reorder pairs feed back into the
//! first two analyses: a recall that can overtake a withheld completion
//! extends the recall's arrival set with the completion's wait states —
//! which is how [`GateSpec::pr9_regression`] produces both the
//! unserviced-liveness finding and the await/awaiting wait cycle.
//!
//! Scope: ordering is analyzed for memory→cache emissions, the
//! direction the gate machinery governs. Cache→memory ordering is
//! absorbed by the memory role's per-block deferral discipline, which
//! the unserviced and wait-cycle analyses model directly.

use std::collections::{BTreeMap, BTreeSet};

use twobit_core::flow::{
    event_trigger, global_state_name, FlowEmit, FlowRole, FlowRule, FlowState, MsgClass,
};
use twobit_core::transitions::{EventKind, OrderGuarantee, TransitionTable};
use twobit_dist::flow::{assemble, GateSpec};
use twobit_types::GlobalState;

use crate::Finding;

/// The completion classes the inv-ack barrier withholds: solicited
/// replies whose early arrival would let a writer proceed before its
/// invalidations are globally visible.
const COMPLETIONS: [MsgClass; 3] = [MsgClass::Grant, MsgClass::UpgradeAck, MsgClass::WtAck];

/// One scheme's whole-system flow graph under a gate discipline.
#[derive(Debug, Clone)]
pub struct FlowSystem {
    /// The scheme the memory role was lifted from.
    pub scheme: String,
    /// The ordering machinery the deployment provides.
    pub gate: GateSpec,
    /// All states of all three roles.
    pub states: Vec<FlowState>,
    /// All rules of all three roles.
    pub rules: Vec<FlowRule>,
    /// Memory event domains by trigger class: the states the dynamic
    /// layer admits the event in (supply events re-homed onto the
    /// blocked await states).
    domains: BTreeMap<MsgClass, BTreeSet<String>>,
    tracks_state: bool,
}

/// Reachable (role, state) pairs and producible message classes, from
/// the three roles' initial states under client and capacity stimuli.
#[derive(Debug, Clone, Default)]
struct Reach {
    states: BTreeSet<(FlowRole, String)>,
    classes: BTreeSet<MsgClass>,
}

impl FlowSystem {
    /// Assembles the flow graph for one scheme's table under `gate`.
    #[must_use]
    pub fn build(table: &TransitionTable, gate: GateSpec) -> FlowSystem {
        let (states, rules) = assemble(table, &gate);
        let mut domains: BTreeMap<MsgClass, BTreeSet<String>> = BTreeMap::new();
        for spec in &table.events {
            let entry = domains.entry(event_trigger(spec.kind)).or_default();
            if spec.kind == EventKind::Supply {
                // Supplies are solicited: they arrive while the module
                // is parked in a blocked await state, never in the
                // protocol state the table nominally declares.
                entry.extend(
                    states
                        .iter()
                        .filter(|s| s.role == FlowRole::Memory && s.awaits == Some(MsgClass::Put))
                        .map(|s| s.name.clone()),
                );
            } else if table.tracks_state {
                entry.extend(spec.domain.iter().map(global_state_name));
            } else {
                entry.insert("steady".to_string());
            }
        }
        FlowSystem {
            scheme: table.scheme.to_string(),
            gate,
            states,
            rules,
            domains,
            tracks_state: table.tracks_state,
        }
    }

    fn state(&self, role: FlowRole, name: &str) -> Option<&FlowState> {
        self.states
            .iter()
            .find(|s| s.role == role && s.name == name)
    }

    fn rules_at(&self, role: FlowRole, trigger: MsgClass, state: &str) -> Vec<&FlowRule> {
        self.rules
            .iter()
            .filter(|r| r.role == role && r.trigger == trigger && r.when.iter().any(|w| w == state))
            .collect()
    }

    /// Fixpoint reachability from the initial states (client `waiting`,
    /// cache `idle-invalid`, memory `Absent`/`steady`) under the two
    /// root stimuli: client requests and capacity pressure.
    fn reach(&self) -> Reach {
        let mut r = Reach::default();
        r.states.insert((
            FlowRole::Client,
            twobit_dist::flow::CLIENT_WAITING.to_string(),
        ));
        r.states
            .insert((FlowRole::Cache, twobit_dist::flow::IDLE_INVALID.to_string()));
        let mem_init = if self.tracks_state {
            global_state_name(GlobalState::Absent)
        } else {
            "steady".to_string()
        };
        r.states.insert((FlowRole::Memory, mem_init));
        r.classes.insert(MsgClass::ClientReq);
        r.classes.insert(MsgClass::Evict);
        loop {
            let mut changed = false;
            for rule in &self.rules {
                if !r.classes.contains(&rule.trigger) {
                    continue;
                }
                if !rule
                    .when
                    .iter()
                    .any(|w| r.states.contains(&(rule.role, w.clone())))
                {
                    continue;
                }
                for n in &rule.next {
                    changed |= r.states.insert((rule.role, n.clone()));
                }
                for e in &rule.emits {
                    changed |= r.classes.insert(e.msg);
                }
            }
            if !changed {
                return r;
            }
        }
    }

    fn finding(&self, analysis: &'static str, rule: Option<&FlowRule>, message: String) -> Finding {
        Finding {
            analysis,
            scheme: self.scheme.clone(),
            rule: rule.map(|r| r.name.clone()),
            provenance: rule.map(|r| r.provenance.clone()),
            message,
            verdict: None,
            evidence: None,
        }
    }

    /// Runs all three analyses, reorder first (its uncovered pairs
    /// extend the arrival sets the other two analyses work from).
    #[must_use]
    pub fn analyze(&self) -> Vec<Finding> {
        let reach = self.reach();
        let (mut findings, overtakes) = self.check_reorder_inner(&reach);
        findings.extend(self.check_unserviced_inner(&reach, &overtakes));
        findings.extend(self.check_wait_cycles_inner(&reach, &overtakes));
        findings
    }

    /// Unserviced-message analysis alone (with reorder feedback).
    #[must_use]
    pub fn check_unserviced(&self) -> Vec<Finding> {
        let reach = self.reach();
        let (_, overtakes) = self.check_reorder_inner(&reach);
        self.check_unserviced_inner(&reach, &overtakes)
    }

    /// Wait-cycle analysis alone (with reorder feedback).
    #[must_use]
    pub fn check_wait_cycles(&self) -> Vec<Finding> {
        let reach = self.reach();
        let (_, overtakes) = self.check_reorder_inner(&reach);
        self.check_wait_cycles_inner(&reach, &overtakes)
    }

    /// Reorder-sensitivity analysis alone.
    #[must_use]
    pub fn check_reorder(&self) -> Vec<Finding> {
        self.check_reorder_inner(&self.reach()).0
    }

    // ------------------------------------------------------------------
    // Arrival sets
    // ------------------------------------------------------------------

    /// States a solicited cache-bound reply of class `m` can find its
    /// destination in: the blocked states awaiting it, closed under
    /// unsolicited perturbations (an `INV`/`PURGE` landing in the wait
    /// window can move the cache before the reply arrives).
    fn solicited_arrivals(&self, m: MsgClass, reach: &Reach) -> BTreeSet<String> {
        let mut set: BTreeSet<String> = self
            .states
            .iter()
            .filter(|s| {
                s.role == FlowRole::Cache
                    && s.awaits == Some(m)
                    && reach.states.contains(&(FlowRole::Cache, s.name.clone()))
            })
            .map(|s| s.name.clone())
            .collect();
        loop {
            let mut grown = set.clone();
            for s in &set {
                for unsolicited in [MsgClass::Inv, MsgClass::Recall] {
                    if !reach.classes.contains(&unsolicited) {
                        continue;
                    }
                    for rule in self.rules_at(FlowRole::Cache, unsolicited, s) {
                        grown.extend(rule.next.iter().cloned());
                    }
                }
            }
            if grown.len() == set.len() {
                return set;
            }
            set = grown;
        }
    }

    // ------------------------------------------------------------------
    // Analysis 1: unserviced messages
    // ------------------------------------------------------------------

    fn check_unserviced_inner(&self, reach: &Reach, overtakes: &BTreeSet<String>) -> Vec<Finding> {
        let mut findings = Vec::new();
        let reachable =
            |role: FlowRole, name: &str| reach.states.contains(&(role, name.to_string()));

        for &m in reach.classes.iter().collect::<Vec<_>>() {
            if m.is_local() {
                continue;
            }
            match m.dest() {
                FlowRole::Client => {
                    // The single client state awaits every response.
                }
                FlowRole::Cache => {
                    let arrivals: BTreeSet<String> = if COMPLETIONS.contains(&m) {
                        let mut a = self.solicited_arrivals(m, reach);
                        if m == MsgClass::Recall {
                            a.extend(overtakes.iter().cloned());
                        }
                        a
                    } else {
                        // Unsolicited traffic (requests, invalidations,
                        // recalls) can find the cache in any reachable
                        // state.
                        reach
                            .states
                            .iter()
                            .filter(|(r, _)| *r == FlowRole::Cache)
                            .map(|(_, n)| n.clone())
                            .collect()
                    };
                    for s in arrivals {
                        if self.rules_at(FlowRole::Cache, m, &s).is_empty() {
                            findings.push(self.finding(
                                "flow-unserviced",
                                None,
                                format!(
                                    "{m} can arrive at cache state '{s}' with no rule to \
                                     service it — the message is dropped on the floor"
                                ),
                            ));
                        }
                    }
                }
                FlowRole::Memory => {
                    let mut arrivals: BTreeSet<String> = self
                        .domains
                        .get(&m)
                        .cloned()
                        .unwrap_or_default()
                        .into_iter()
                        .filter(|s| reachable(FlowRole::Memory, s))
                        .collect();
                    if m == MsgClass::InvAck {
                        // The release message only exists while a gate
                        // is open.
                        arrivals = self
                            .states
                            .iter()
                            .filter(|s| {
                                s.role == FlowRole::Memory && s.awaits == Some(MsgClass::InvAck)
                            })
                            .map(|s| s.name.clone())
                            .collect();
                    }
                    for s in arrivals {
                        if !self.rules_at(FlowRole::Memory, m, &s).is_empty() {
                            continue;
                        }
                        let st = self.state(FlowRole::Memory, &s);
                        if st.is_some_and(|st| st.defers) {
                            continue; // deferred FIFO, serviced later
                        }
                        if st.is_some_and(|st| st.awaits.is_some()) {
                            // A non-deferring blocked state (the PR 9
                            // gate) passes commands straight through to
                            // the underlying machine; the hazard that
                            // creates is the reorder analysis's catch,
                            // not an unserviced arrival.
                            continue;
                        }
                        findings.push(self.finding(
                            "flow-unserviced",
                            None,
                            format!(
                                "{m} can arrive at memory state '{s}' with no rule to \
                                 service it and no deferral"
                            ),
                        ));
                    }
                }
            }
        }

        // Productivity: a blocked memory wait is serviced only if the
        // emission that elicits the awaited reply actually produces it
        // wherever it can arrive.
        for b in self.states.iter().filter(|s| {
            s.role == FlowRole::Memory
                && s.awaits == Some(MsgClass::Put)
                && reachable(FlowRole::Memory, &s.name)
        }) {
            // The emissions of rules that enter this blocked state are
            // what solicit the supply (the recalls).
            let eliciting: BTreeSet<MsgClass> = self
                .rules
                .iter()
                .filter(|r| r.next.iter().any(|n| n == &b.name))
                .flat_map(|r| r.emits.iter().map(|e| e.msg))
                .filter(|m| m.dest() == FlowRole::Cache)
                .collect();
            for e in eliciting {
                let nominal_producers = self
                    .rules
                    .iter()
                    .filter(|r| r.role == FlowRole::Cache && r.trigger == e)
                    .any(|r| r.emits_class(MsgClass::Put) || r.emits_class(MsgClass::EjectDirty));
                if !nominal_producers {
                    findings.push(self.finding(
                        "flow-unserviced",
                        None,
                        format!(
                            "memory wait '{}' is elicited by {e} but no cache rule \
                             answers it with a supply",
                            b.name
                        ),
                    ));
                    continue;
                }
                // Where an uncovered reorder lets the eliciting message
                // overtake a withheld completion, it arrives at the
                // completion's wait state — and must still produce the
                // supply there.
                for s in overtakes {
                    let productive = self.rules_at(FlowRole::Cache, e, s).iter().any(|r| {
                        r.emits_class(MsgClass::Put) || r.emits_class(MsgClass::EjectDirty)
                    });
                    if !productive {
                        findings.push(self.finding(
                            "flow-unserviced",
                            None,
                            format!(
                                "{e} can overtake the withheld completion and arrive at \
                                 cache state '{s}', which supplies nothing — memory wait \
                                 '{}' is never satisfied (the PR 9 livelock)",
                                b.name
                            ),
                        ));
                    }
                }
            }
        }
        findings
    }

    // ------------------------------------------------------------------
    // Analysis 2: wait cycles
    // ------------------------------------------------------------------

    fn check_wait_cycles_inner(&self, reach: &Reach, overtakes: &BTreeSet<String>) -> Vec<Finding> {
        // Nodes: reachable blocked cache and memory states. The client's
        // wait is the at-least-once retry loop — excluded by design.
        let blocked: Vec<&FlowState> = self
            .states
            .iter()
            .filter(|s| {
                s.role != FlowRole::Client
                    && s.awaits.is_some()
                    && reach.states.contains(&(s.role, s.name.clone()))
            })
            .collect();
        type StateKey = (FlowRole, String);
        let mut edges: BTreeMap<StateKey, BTreeSet<StateKey>> = BTreeMap::new();
        let mut reasons: BTreeMap<(StateKey, StateKey), String> = BTreeMap::new();

        for b in &blocked {
            let key = (b.role, b.name.clone());
            let entry = edges.entry(key.clone()).or_default();
            match b.role {
                FlowRole::Memory => {
                    // The memory's wait depends on its eliciting emission
                    // being productively serviced. If an uncovered
                    // reorder delivers it to a *blocked* cache state
                    // that supplies nothing, the wait depends on that
                    // state's own wait resolving first.
                    let eliciting: BTreeSet<MsgClass> = self
                        .rules
                        .iter()
                        .filter(|r| r.next.iter().any(|n| n == &b.name))
                        .flat_map(|r| r.emits.iter().map(|e| e.msg))
                        .filter(|m| m.dest() == FlowRole::Cache)
                        .collect();
                    let await_class = b.awaits.expect("blocked");
                    for e in eliciting {
                        for s in overtakes {
                            let Some(st) = self.state(FlowRole::Cache, s) else {
                                continue;
                            };
                            if st.awaits.is_none() {
                                continue;
                            }
                            let productive = self.rules_at(FlowRole::Cache, e, s).iter().any(|r| {
                                r.emits_class(await_class) || r.emits_class(MsgClass::EjectDirty)
                            });
                            if !productive {
                                entry.insert((FlowRole::Cache, s.clone()));
                                reasons.insert(
                                    (key.clone(), (FlowRole::Cache, s.clone())),
                                    format!("{e} arrives unproductively at '{s}'"),
                                );
                            }
                        }
                    }
                }
                FlowRole::Cache => {
                    // The cache's wait depends on the memory rule that
                    // emits the awaited reply; the request that triggers
                    // it is deferred at every deferring memory wait.
                    let m = b.awaits.expect("blocked");
                    let producers: BTreeSet<MsgClass> = self
                        .rules
                        .iter()
                        .filter(|r| r.role == FlowRole::Memory && r.emits_class(m))
                        .map(|r| r.trigger)
                        .collect();
                    if producers.is_empty() {
                        continue;
                    }
                    for s in self.states.iter().filter(|s| {
                        s.role == FlowRole::Memory
                            && s.defers
                            && reach.states.contains(&(FlowRole::Memory, s.name.clone()))
                    }) {
                        entry.insert((FlowRole::Memory, s.name.clone()));
                        reasons.insert(
                            (key.clone(), (FlowRole::Memory, s.name.clone())),
                            format!("the request producing {m} is deferred at '{}'", s.name),
                        );
                    }
                }
                FlowRole::Client => unreachable!("filtered above"),
            }
        }

        // A node on a cycle reaches itself through at least one edge.
        let mut on_cycle: Vec<(FlowRole, String)> = Vec::new();
        for b in &blocked {
            let start = (b.role, b.name.clone());
            let mut seen: BTreeSet<(FlowRole, String)> = BTreeSet::new();
            let mut stack: Vec<(FlowRole, String)> =
                edges.get(&start).into_iter().flatten().cloned().collect();
            while let Some(n) = stack.pop() {
                if n == start {
                    on_cycle.push(start.clone());
                    break;
                }
                if seen.insert(n.clone()) {
                    stack.extend(edges.get(&n).into_iter().flatten().cloned());
                }
            }
        }
        if on_cycle.is_empty() {
            return Vec::new();
        }
        let members = on_cycle
            .iter()
            .map(|(r, n)| format!("{r}/{n}"))
            .collect::<Vec<_>>()
            .join(" ↔ ");
        let why = reasons
            .iter()
            .filter(|((a, b), _)| on_cycle.contains(a) && on_cycle.contains(b))
            .map(|(_, r)| r.clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
            .join("; ");
        vec![self.finding(
            "flow-wait-cycle",
            None,
            format!(
                "blocked states wait on each other in a cycle: {members} ({why}) — \
                 no member can make progress"
            ),
        )]
    }

    // ------------------------------------------------------------------
    // Analysis 3: reorder sensitivity
    // ------------------------------------------------------------------

    /// Returns the findings plus the set of blocked cache states an
    /// uncovered recall-class reorder can deliver into (the completion
    /// wait states the overtaken message would have released).
    fn check_reorder_inner(&self, reach: &Reach) -> (Vec<Finding>, BTreeSet<String>) {
        let mut findings = Vec::new();
        let mut overtakes: BTreeSet<String> = BTreeSet::new();
        let gated = self
            .states
            .iter()
            .any(|s| s.role == FlowRole::Memory && s.awaits == Some(MsgClass::InvAck));

        let fires = |r: &FlowRule| {
            reach.classes.contains(&r.trigger)
                && r.when
                    .iter()
                    .any(|w| reach.states.contains(&(r.role, w.clone())))
        };

        for r1 in self.rules.iter().filter(|r| r.role == FlowRole::Memory) {
            if !fires(r1) {
                continue;
            }
            let cache_emits = |r: &FlowRule| {
                r.emits
                    .iter()
                    .filter(|e| e.msg.dest() == FlowRole::Cache)
                    .cloned()
                    .collect::<Vec<_>>()
            };
            let e1s = cache_emits(r1);

            // Within-rule pairs, in emission order.
            for (i, e1) in e1s.iter().enumerate() {
                for e2 in e1s.iter().skip(i + 1) {
                    if e1.msg == MsgClass::Inv && COMPLETIONS.contains(&e2.msg) {
                        // The completion must not become visible before
                        // the invalidations: the barrier pair. Requires
                        // both the declaration and the machinery.
                        self.judge_barrier_pair(r1, e2, &mut findings);
                    } else if e1.hint.may_alias(e2.hint, true)
                        && self.swap_sensitive(e1.msg, e2.msg, reach).is_some()
                        && !self.gate.fifo_links
                    {
                        findings.push(self.finding(
                            "flow-reorder",
                            Some(r1),
                            format!(
                                "emissions {} and {} of one firing can reach the same cache \
                                 and their order matters, but links do not preserve it",
                                e1.msg, e2.msg
                            ),
                        ));
                    }
                }
            }

            // Cross-rule pairs: r2 fires in a 1-step successor of r1.
            let opens_gate = gated && r1.emits_class(MsgClass::Inv);
            let successors: Vec<String> = if r1.next.is_empty() {
                r1.when.clone()
            } else {
                r1.next.clone()
            };
            let mut r2s: Vec<&FlowRule> = Vec::new();
            for succ in &successors {
                let st = self.state(FlowRole::Memory, succ);
                let is_gate = st.is_some_and(|s| s.awaits == Some(MsgClass::InvAck));
                if is_gate && st.is_some_and(|s| s.defers) {
                    // Commands are deferred until release; no second
                    // rule fires inside the window.
                    continue;
                }
                if is_gate {
                    // The broken pass-through gate: commands reach the
                    // underlying machine in any of its states.
                    r2s.extend(self.rules.iter().filter(|r| {
                        r.role == FlowRole::Memory && r.trigger != MsgClass::InvAck && fires(r)
                    }));
                } else {
                    r2s.extend(
                        self.rules
                            .iter()
                            .filter(|r| {
                                r.role == FlowRole::Memory
                                    && r.trigger != MsgClass::InvAck
                                    && r.when.iter().any(|w| w == succ)
                            })
                            .filter(|r| fires(r)),
                    );
                }
            }
            r2s.sort_by(|a, b| a.name.cmp(&b.name));
            r2s.dedup_by(|a, b| a.name == b.name);

            for r2 in r2s {
                for e1 in &e1s {
                    for e2 in cache_emits(r2) {
                        if !e1.hint.may_alias(e2.hint, false) {
                            continue;
                        }
                        let Some(witness) = self.swap_sensitive(e1.msg, e2.msg, reach) else {
                            continue;
                        };
                        let covered = if opens_gate && self.gate.withholds(e1.msg) {
                            // e1 is withheld by the open gate; e2 is
                            // emitted inside the window and must be
                            // withheld behind it.
                            self.gate.withholds(e2.msg)
                        } else {
                            self.gate.fifo_links
                        };
                        if covered {
                            continue;
                        }
                        if e2.msg == MsgClass::Recall {
                            // Remember where the overtaking recall can
                            // land: e1's wait states.
                            overtakes.extend(
                                self.states
                                    .iter()
                                    .filter(|s| {
                                        s.role == FlowRole::Cache && s.awaits == Some(e1.msg)
                                    })
                                    .map(|s| s.name.clone()),
                            );
                        }
                        findings.push(self.finding(
                            "flow-reorder",
                            Some(r2),
                            format!(
                                "{} (from rule '{}') and a later {} can reach the same cache \
                                 and swapping them changes its behavior at '{witness}', but \
                                 no provided ordering guarantee covers the pair",
                                e1.msg, r1.name, e2.msg
                            ),
                        ));
                    }
                }
            }
        }
        (findings, overtakes)
    }

    /// The (invalidation, completion) pair of one rule firing: flagged
    /// unless the table rule declares the ack barrier *and* the
    /// deployment provides it.
    fn judge_barrier_pair(&self, r1: &FlowRule, e2: &FlowEmit, findings: &mut Vec<Finding>) {
        if !e2.guarantees.contains(&OrderGuarantee::AckBarrier) {
            findings.push(self.finding(
                "flow-reorder",
                Some(r1),
                format!(
                    "{} completes a rule that also invalidates, but the rule declares no \
                     AckBarrier guarantee — the completion could outrun the invalidations",
                    e2.msg
                ),
            ));
        } else if !self.gate.provides(OrderGuarantee::AckBarrier) {
            findings.push(self.finding(
                "flow-reorder",
                Some(r1),
                format!(
                    "{} relies on the declared AckBarrier, but this deployment does not \
                     hold completions behind invalidation acknowledgments",
                    e2.msg
                ),
            ));
        }
    }

    /// Whether delivering `e1` then `e2` at some common legal start
    /// state differs observably from the swapped order. Returns a
    /// witness start state. Pairs with no state where `e1`'s arrival is
    /// legal cannot co-occur at one destination and are skipped.
    fn swap_sensitive(&self, e1: MsgClass, e2: MsgClass, reach: &Reach) -> Option<String> {
        let starts: BTreeSet<String> = if COMPLETIONS.contains(&e1) {
            self.states
                .iter()
                .filter(|s| s.role == FlowRole::Cache && s.awaits == Some(e1))
                .map(|s| s.name.clone())
                .collect()
        } else {
            reach
                .states
                .iter()
                .filter(|(r, _)| *r == FlowRole::Cache)
                .map(|(_, n)| n.clone())
                .collect()
        };
        starts
            .into_iter()
            .find(|s| self.deliver_seq(s, &[e1, e2]) != self.deliver_seq(s, &[e2, e1]))
    }

    /// All (final state, sorted emissions) outcomes of delivering the
    /// classes of `msgs`, in order, starting at cache state `start`. An
    /// arrival with no rule is a silent drop (state unchanged); the
    /// unserviced analysis owns flagging those.
    fn deliver_seq(&self, start: &str, msgs: &[MsgClass]) -> BTreeSet<(String, Vec<MsgClass>)> {
        let mut outcomes: BTreeSet<(String, Vec<MsgClass>)> =
            BTreeSet::from([(start.to_string(), Vec::new())]);
        for &m in msgs {
            let mut next = BTreeSet::new();
            for (s, emitted) in &outcomes {
                let rules = self.rules_at(FlowRole::Cache, m, s);
                if rules.is_empty() {
                    next.insert((s.clone(), emitted.clone()));
                    continue;
                }
                for r in rules {
                    let succs: Vec<String> = if r.next.is_empty() {
                        vec![s.clone()]
                    } else {
                        r.next.clone()
                    };
                    for n in succs {
                        let mut em = emitted.clone();
                        em.extend(r.emits.iter().map(|e| e.msg));
                        em.sort();
                        next.insert((n, em));
                    }
                }
            }
            outcomes = next;
        }
        outcomes
    }
}

/// Runs the three flow analyses on one scheme's table under `gate`.
#[must_use]
pub fn lint_flow(table: &TransitionTable, gate: GateSpec) -> Vec<Finding> {
    FlowSystem::build(table, gate).analyze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_core::shipped_tables;

    fn table(scheme: &str) -> &'static TransitionTable {
        shipped_tables()
            .iter()
            .find(|t| t.scheme == scheme)
            .unwrap_or_else(|| panic!("no table for {scheme}"))
    }

    #[test]
    fn shipped_schemes_are_clean_under_the_shipped_gate() {
        for t in shipped_tables() {
            let findings = lint_flow(t, GateSpec::shipped());
            assert!(
                findings.is_empty(),
                "{}: {}",
                t.scheme,
                findings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }

    #[test]
    fn reachability_covers_all_three_roles() {
        let sys = FlowSystem::build(table("two-bit"), GateSpec::shipped());
        let r = sys.reach();
        for (role, name) in [
            (FlowRole::Memory, "PresentM"),
            (FlowRole::Memory, twobit_core::flow::AWAIT_READ),
            (FlowRole::Memory, twobit_core::flow::GATED),
            (FlowRole::Cache, twobit_dist::flow::AWAITING_UPGRADE),
            (FlowRole::Cache, twobit_dist::flow::IDLE_OWNER),
            (FlowRole::Client, twobit_dist::flow::CLIENT_WAITING),
        ] {
            assert!(
                r.states.contains(&(role, name.to_string())),
                "{role}/{name} should be reachable"
            );
        }
        assert!(r.classes.contains(&MsgClass::Recall));
        assert!(r.classes.contains(&MsgClass::InvAck));
    }

    /// Broken fixture for the unserviced analysis: drop the stale-reply
    /// rule and the perturbed `MGRANTED` arrival has nowhere to go.
    #[test]
    fn unserviced_fires_when_the_stale_reply_rule_is_removed() {
        let mut sys = FlowSystem::build(table("two-bit"), GateSpec::shipped());
        sys.rules.retain(|r| r.name != "cache/upgrade-stale-reply");
        let findings = sys.check_unserviced();
        assert!(
            findings.iter().any(|f| {
                f.analysis == "flow-unserviced"
                    && f.message.contains("upgrade-ack")
                    && f.message.contains("awaiting-grant")
            }),
            "expected the stale MGRANTED arrival to be flagged: {findings:?}"
        );
    }

    /// Broken fixture for the wait-cycle analysis: the PR 9 gate lets
    /// recalls pass the withheld grant, so the memory's supply wait and
    /// the cache's grant wait deadlock on each other.
    #[test]
    fn pr9_gate_produces_the_wait_cycle() {
        let sys = FlowSystem::build(table("two-bit"), GateSpec::pr9_regression());
        let findings = sys.check_wait_cycles();
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.analysis, "flow-wait-cycle");
        assert!(f.message.contains(twobit_core::flow::AWAIT_READ));
        assert!(f.message.contains(twobit_dist::flow::AWAITING_GRANT));
    }

    /// The PR 9 livelock class end to end: the recall overtakes the
    /// withheld grant and lands at `awaiting-grant`, which supplies
    /// nothing.
    #[test]
    fn pr9_gate_produces_the_unserviced_liveness_finding() {
        let findings = lint_flow(table("two-bit"), GateSpec::pr9_regression());
        assert!(
            findings.iter().any(|f| {
                f.analysis == "flow-unserviced"
                    && f.message.contains("overtake")
                    && f.message.contains("awaiting-grant")
            }),
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.analysis == "flow-wait-cycle"));
        assert!(findings.iter().any(|f| f.analysis == "flow-reorder"));
    }

    /// Broken fixture for the reorder analysis: links that reorder
    /// freely break the grant-then-invalidate ordering the node code
    /// relies on, even with the gate intact.
    #[test]
    fn unordered_links_flag_the_grant_inv_pair() {
        let sys = FlowSystem::build(table("two-bit"), GateSpec::unordered_links());
        let findings = sys.check_reorder();
        assert!(
            findings.iter().any(|f| {
                f.analysis == "flow-reorder"
                    && f.message.contains("grant")
                    && f.message.contains("inv")
            }),
            "{findings:?}"
        );
    }

    /// Stripping the declared barrier from the table rule is flagged as
    /// a missing annotation even under the shipped gate.
    #[test]
    fn undeclared_barrier_is_flagged() {
        let mut t = table("two-bit").clone();
        t.rule_mut("write-miss-shared")
            .expect("rule exists")
            .guarantees
            .clear();
        let sys = FlowSystem::build(&t, GateSpec::shipped());
        let findings = sys.check_reorder();
        assert!(
            findings.iter().any(|f| f.analysis == "flow-reorder"
                && f.rule.as_deref() == Some("mem/write-miss-shared")
                && f.message.contains("declares no AckBarrier")),
            "{findings:?}"
        );
    }

    /// The stale-reply rule is what makes the (grant, upgrade-ack) pair
    /// order-insensitive — the swap test agrees.
    #[test]
    fn swap_test_is_quiet_for_the_stale_reply_pair() {
        let sys = FlowSystem::build(table("two-bit"), GateSpec::shipped());
        let reach = sys.reach();
        assert!(sys
            .swap_sensitive(MsgClass::Grant, MsgClass::UpgradeAck, &reach)
            .is_none());
        assert!(sys
            .swap_sensitive(MsgClass::Grant, MsgClass::Recall, &reach)
            .is_some());
    }
}
