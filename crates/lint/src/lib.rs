//! Static analyses over the protocols' declarative transition tables
//! (see `twobit_core::transitions`), plus a model-checker differential
//! cross-check.
//!
//! Five analyses run per table:
//!
//! * **Exhaustiveness** — every `(event, state, condition-assignment)`
//!   point in an event's declared domain is covered by at least one
//!   rule; a hole is exactly a missing `match` arm in the executable
//!   protocol.
//! * **Determinism** — no point is covered by two rules; overlapping
//!   guards make the table ambiguous about what the implementation does.
//! * **Dead rules** — every rule is enabled somewhere: its event is
//!   declared, its source states intersect the event's domain, and its
//!   guard is satisfiable over the event's condition variables.
//! * **Invariant preservation** — per-rule symbolic checks of the
//!   directory-state discipline: no transition into `PresentM` from a
//!   clean shared state without an invalidation (the paper's single
//!   exception: a fresh `MREQUEST` under `Present1`, section 3.2.4 case
//!   1), awaiting rules recall and do nothing else, supplies and dirty
//!   ejects write memory, denials don't move the state.
//! * **Broadcast necessity** — the two-bit scheme's defining economy:
//!   commands reaching non-initiator caches (invalidates, recalls)
//!   appear only on write-sharing transitions; any other occurrence is
//!   gratuitous traffic the table must justify.
//!
//! Three further analyses run over the **whole-system message-flow
//! graph** (all three roles: client, cache, memory, assembled per
//! scheme in [`flow_graph`]): unserviced-message detection, wait-cycle
//! detection, and reorder sensitivity. Candidate liveness findings can
//! be dynamically confirmed by steering the model checker toward the
//! implicated states ([`confirm`]).
//!
//! Each [`Finding`] carries the offending rule's provenance (file:line
//! of the table entry). [`lint_table`] runs everything on one table;
//! [`lint_shipped`] adds the flow analyses and deduplicates identical
//! findings across schemes; [`cross_check`] wraps the bounded model
//! checker's protocols in reconciling decorators and differentially
//! replays every explored DAG edge against the tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confirm;
pub mod flow_graph;

use twobit_core::transitions::{
    ActionKind, Cond, EventKind, EventSpec, Next, Rule, StateSet, TransitionTable,
};
use twobit_core::ModelChecker;
use twobit_types::{CacheOrg, GlobalState, MemRef, ProtocolKind, SystemConfig, WordAddr};

/// One verdict from an analysis: which check, which scheme, which rule
/// (with file:line provenance), and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The analysis that produced the finding.
    pub analysis: &'static str,
    /// The scheme whose table is at fault.
    pub scheme: String,
    /// The offending rule's name, when the finding is about one rule.
    pub rule: Option<String>,
    /// `file:line` of the offending table entry, when rule-specific.
    pub provenance: Option<String>,
    /// Human-readable description of the defect.
    pub message: String,
    /// Dynamic-confirmation verdict, when the model checker was asked:
    /// `"CONFIRMED"` (the implicated window was reached; `evidence`
    /// holds the replayable timeline) or `"PLAUSIBLE"` (the search
    /// budget ran out before reaching it).
    pub verdict: Option<&'static str>,
    /// The confirmation's evidence: a replayed observation timeline of
    /// the action path that reaches the implicated window.
    pub evidence: Option<String>,
}

impl Finding {
    fn of_table(analysis: &'static str, table: &TransitionTable, message: String) -> Finding {
        Finding {
            analysis,
            scheme: table.scheme.to_string(),
            rule: None,
            provenance: None,
            message,
            verdict: None,
            evidence: None,
        }
    }

    fn of_rule(
        analysis: &'static str,
        table: &TransitionTable,
        rule: &Rule,
        message: String,
    ) -> Finding {
        Finding {
            analysis,
            scheme: table.scheme.to_string(),
            rule: Some(rule.name.to_string()),
            provenance: Some(rule.provenance()),
            message,
            verdict: None,
            evidence: None,
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.analysis, self.scheme)?;
        if let Some(rule) = &self.rule {
            write!(f, " rule '{rule}'")?;
        }
        if let Some(prov) = &self.provenance {
            write!(f, " ({prov})")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(v) = self.verdict {
            write!(f, " [{v}]")?;
        }
        Ok(())
    }
}

/// Merges findings that are identical except for the scheme: analyses
/// over shared machinery (the dist-layer flow rules, the stateless
/// comparators' common shapes) repeat verbatim across tables, and one
/// line naming every affected scheme reads better than six copies. The
/// merged finding keeps the first scheme's position and accumulates the
/// others into its `scheme` field, comma-separated.
#[must_use]
pub fn dedup_findings(findings: Vec<Finding>) -> Vec<Finding> {
    let mut out: Vec<Finding> = Vec::new();
    for f in findings {
        if let Some(prev) = out.iter_mut().find(|p| {
            p.analysis == f.analysis
                && p.rule == f.rule
                && p.provenance == f.provenance
                && p.message == f.message
        }) {
            if !prev.scheme.split(", ").any(|s| s == f.scheme) {
                prev.scheme.push_str(", ");
                prev.scheme.push_str(&f.scheme);
            }
            if prev.verdict.is_none() {
                prev.verdict = f.verdict;
                prev.evidence = f.evidence;
            }
            continue;
        }
        out.push(f);
    }
    out
}

/// All boolean assignments over `conds`, as `(cond, value)` vectors.
/// Three condition variables at most, so at most eight assignments.
fn assignments(conds: &[Cond]) -> Vec<Vec<(Cond, bool)>> {
    let mut out = vec![Vec::new()];
    for &cond in conds {
        out = out
            .into_iter()
            .flat_map(|base| {
                [false, true].into_iter().map(move |v| {
                    let mut next = base.clone();
                    next.push((cond, v));
                    next
                })
            })
            .collect();
    }
    out
}

/// Whether `rule` is enabled at `(state, assignment)` — the guard
/// semantics shared by every analysis. A requirement naming a condition
/// outside the assignment (an undeclared variable) never holds.
fn enabled(rule: &Rule, event: EventKind, state: GlobalState, assignment: &[(Cond, bool)]) -> bool {
    rule.event == event
        && rule.when.contains(state)
        && rule
            .requires
            .iter()
            .all(|&(cond, value)| assignment.iter().any(|&(c, v)| c == cond && v == value))
}

fn describe_point(event: EventKind, state: GlobalState, assignment: &[(Cond, bool)]) -> String {
    if assignment.is_empty() {
        format!("({event}, {state})")
    } else {
        let conds = assignment
            .iter()
            .map(|(c, v)| format!("{c}={v}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!("({event}, {state}, {conds})")
    }
}

fn domain_points(spec: &EventSpec) -> Vec<(GlobalState, Vec<(Cond, bool)>)> {
    spec.domain
        .iter()
        .flat_map(|state| {
            assignments(&spec.conds)
                .into_iter()
                .map(move |a| (state, a))
        })
        .collect()
}

/// Exhaustiveness: every point of every event's domain has at least one
/// enabled rule — the static form of "no missing `match` arm".
#[must_use]
pub fn check_exhaustiveness(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for spec in &table.events {
        for (state, assignment) in domain_points(spec) {
            let hits = table
                .rules
                .iter()
                .filter(|r| enabled(r, spec.kind, state, &assignment))
                .count();
            if hits == 0 {
                findings.push(Finding::of_table(
                    "exhaustiveness",
                    table,
                    format!(
                        "no rule enabled for {} — the implementation's behavior here is undeclared",
                        describe_point(spec.kind, state, &assignment)
                    ),
                ));
            }
        }
    }
    findings
}

/// Determinism: no point of any event's domain has two enabled rules —
/// overlapping guards leave the table ambiguous.
#[must_use]
pub fn check_determinism(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for spec in &table.events {
        for (state, assignment) in domain_points(spec) {
            let hits: Vec<&Rule> = table
                .rules
                .iter()
                .filter(|r| enabled(r, spec.kind, state, &assignment))
                .collect();
            if hits.len() > 1 {
                let names = hits
                    .iter()
                    .map(|r| format!("'{}' ({})", r.name, r.provenance()))
                    .collect::<Vec<_>>()
                    .join(", ");
                findings.push(Finding::of_rule(
                    "determinism",
                    table,
                    hits[1],
                    format!(
                        "guards overlap at {}: {names} are all enabled",
                        describe_point(spec.kind, state, &assignment)
                    ),
                ));
            }
        }
    }
    findings
}

/// Dead rules: a rule that can never fire — undeclared event, source
/// states outside the event's domain, a guard over undeclared condition
/// variables, or a self-contradictory guard.
#[must_use]
pub fn check_dead_rules(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in &table.rules {
        let Some(spec) = table.spec(rule.event) else {
            findings.push(Finding::of_rule(
                "dead-rule",
                table,
                rule,
                format!("event {} is not declared for this scheme", rule.event),
            ));
            continue;
        };
        if rule.when.intersect(spec.domain).is_empty() {
            findings.push(Finding::of_rule(
                "dead-rule",
                table,
                rule,
                format!(
                    "source states {} never intersect the event domain {}",
                    rule.when, spec.domain
                ),
            ));
            continue;
        }
        if let Some(&(cond, _)) = rule.requires.iter().find(|(c, _)| !spec.conds.contains(c)) {
            findings.push(Finding::of_rule(
                "dead-rule",
                table,
                rule,
                format!(
                    "guard tests '{cond}', which {} does not declare",
                    rule.event
                ),
            ));
            continue;
        }
        let contradictory = rule
            .requires
            .iter()
            .any(|&(c, v)| rule.requires.iter().any(|&(c2, v2)| c2 == c && v2 != v));
        if contradictory {
            findings.push(Finding::of_rule(
                "dead-rule",
                table,
                rule,
                "guard requires a condition both true and false".to_string(),
            ));
            continue;
        }
        // Belt and braces: enumerate — a rule passing the structural
        // checks must be enabled at some point of the domain.
        let reachable = domain_points(spec)
            .iter()
            .any(|(state, assignment)| enabled(rule, spec.kind, *state, assignment));
        if !reachable {
            findings.push(Finding::of_rule(
                "dead-rule",
                table,
                rule,
                "rule is enabled at no point of its event's domain".to_string(),
            ));
        }
    }
    findings
}

fn has_invalidate(rule: &Rule) -> bool {
    rule.actions
        .iter()
        .any(|a| matches!(a, ActionKind::Invalidate { .. }))
}

fn has_recall(rule: &Rule) -> bool {
    rule.actions
        .iter()
        .any(|a| matches!(a, ActionKind::Recall { .. }))
}

fn has_write_memory(rule: &Rule) -> bool {
    rule.actions.contains(&ActionKind::WriteMemory)
}

/// The paper's one sanctioned invalidation-free path into `PresentM`: a
/// fresh `MREQUEST` under `Present1` — the sole copy *is* the
/// requester's, so there is nothing to invalidate ("this justifies
/// keeping the encoding of Present1", section 3.2.4 case 1).
fn present1_upgrade_exception(rule: &Rule) -> bool {
    rule.event == EventKind::Modify
        && rule.when == StateSet::only(GlobalState::Present1)
        && rule.requires.contains(&(Cond::Fresh, true))
}

/// Invariant preservation, symbolically per rule.
#[must_use]
pub fn check_invariants(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in &table.rules {
        let next_set = match rule.next {
            Next::Same => None,
            Next::In(s) => Some(s),
        };
        // inv-writer-exclusivity: entering PresentM from a clean shared
        // state must invalidate the other (potential) copies.
        if table.tracks_state {
            let enters_modified = next_set.is_some_and(|s| s.contains(GlobalState::PresentM));
            let from_shared = !rule.when.intersect(StateSet::SHARED).is_empty();
            if enters_modified
                && from_shared
                && !has_invalidate(rule)
                && !present1_upgrade_exception(rule)
            {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    format!(
                        "inv-writer-exclusivity: moves {} into PresentM with no invalidate \
                         action — stale clean copies would survive the write",
                        rule.when
                    ),
                ));
            }
        }
        // inv-await-discipline: a rule that leaves the transaction
        // waiting must recall data and do nothing else.
        if !rule.completes {
            if !has_recall(rule) {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    "inv-await-discipline: awaits a supply but sends no recall — \
                     the wait can never be satisfied"
                        .to_string(),
                ));
            }
            let premature = rule.actions.iter().any(|a| {
                matches!(
                    a,
                    ActionKind::Grant { .. }
                        | ActionKind::ModifyGrant { .. }
                        | ActionKind::WriteMemory
                )
            });
            if premature {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    "inv-await-discipline: grants or writes memory before the recalled \
                     data has arrived"
                        .to_string(),
                ));
            }
            if rule.next != Next::Same {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    "inv-await-discipline: changes the global state while the \
                     transaction is still pending"
                        .to_string(),
                ));
            }
        } else if has_recall(rule) {
            // inv-complete-no-recall: a recall with nobody waiting on the
            // answer is a protocol that drops data on the floor.
            findings.push(Finding::of_rule(
                "invariant",
                table,
                rule,
                "inv-complete-no-recall: sends a recall yet completes the transaction".to_string(),
            ));
        }
        // inv-supply-writes-memory: supplied (possibly dirty) data must
        // land in memory before anything is granted from it.
        if rule.event == EventKind::Supply && !has_write_memory(rule) {
            findings.push(Finding::of_rule(
                "invariant",
                table,
                rule,
                "inv-supply-writes-memory: consumes supplied data without writing it back"
                    .to_string(),
            ));
        }
        // inv-dirty-eject-writes-memory: a dirty eject's data must land,
        // and (for stateful schemes) the block cannot stay PresentM with
        // its sole dirty copy gone.
        if rule.event == EventKind::EjectDirty {
            if !has_write_memory(rule) {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    "inv-dirty-eject-writes-memory: discards the ejected dirty data".to_string(),
                ));
            }
            if table.tracks_state && next_set.is_none_or(|s| s.contains(GlobalState::PresentM)) {
                findings.push(Finding::of_rule(
                    "invariant",
                    table,
                    rule,
                    "inv-dirty-eject-writes-memory: block may remain PresentM after its \
                     dirty copy left"
                        .to_string(),
                ));
            }
        }
        // inv-deny-stutters: a denied MREQUEST must not move the state.
        let denies = rule
            .actions
            .contains(&ActionKind::ModifyGrant { granted: false });
        if rule.event == EventKind::Modify && denies && rule.next != Next::Same {
            findings.push(Finding::of_rule(
                "invariant",
                table,
                rule,
                "inv-deny-stutters: denies the upgrade yet changes the global state".to_string(),
            ));
        }
    }
    findings
}

/// Broadcast necessity: non-initiator commands (invalidates, recalls)
/// fire only on write-sharing transitions — the defining property of
/// the two-bit scheme's economy (and, for the stateless comparators,
/// of their write-through contract).
#[must_use]
pub fn check_broadcast_necessity(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = Vec::new();
    let non_modified = StateSet::of(&[
        GlobalState::Absent,
        GlobalState::Present1,
        GlobalState::PresentStar,
    ]);
    for rule in &table.rules {
        if has_invalidate(rule) {
            let next_set = match rule.next {
                Next::Same => None,
                Next::In(s) => Some(s),
            };
            let write_sharing = table.tracks_state
                && next_set.is_some_and(|s| s.contains(GlobalState::PresentM))
                && !rule.when.intersect(StateSet::SHARED).is_empty();
            let write_through_store = !table.tracks_state && rule.event == EventKind::WriteThrough;
            if !write_sharing && !write_through_store {
                findings.push(Finding::of_rule(
                    "broadcast-necessity",
                    table,
                    rule,
                    "invalidates non-initiator caches on a transition that creates no \
                     exclusive writer"
                        .to_string(),
                ));
            }
        }
        if has_recall(rule) {
            let recalls_owner = !rule.completes && rule.when.intersect(non_modified).is_empty();
            if !recalls_owner {
                findings.push(Finding::of_rule(
                    "broadcast-necessity",
                    table,
                    rule,
                    "recalls data outside a pending-transaction-on-PresentM transition".to_string(),
                ));
            }
        }
    }
    findings
}

/// Runs all five analyses on one table, most fundamental first.
#[must_use]
pub fn lint_table(table: &TransitionTable) -> Vec<Finding> {
    let mut findings = check_exhaustiveness(table);
    findings.extend(check_determinism(table));
    findings.extend(check_dead_rules(table));
    findings.extend(check_invariants(table));
    findings.extend(check_broadcast_necessity(table));
    findings
}

/// Lints every shipped scheme's table — the five per-table analyses
/// plus the three whole-system flow analyses under the shipped gate
/// discipline — and deduplicates identical findings across schemes.
#[must_use]
pub fn lint_shipped() -> Vec<Finding> {
    let gate = twobit_dist::flow::GateSpec::shipped();
    dedup_findings(
        twobit_core::shipped_tables()
            .iter()
            .flat_map(|t| {
                let mut findings = lint_table(t);
                findings.extend(flow_graph::lint_flow(t, gate));
                findings
            })
            .collect(),
    )
}

/// The model-checked race scenarios the cross-check replays — the same
/// trio `verify_protocols` uses for its differential smoke test.
///
/// The static software scheme is special: hardware maintains no
/// coherence for private blocks (races on them are a *software*
/// contract violation, which the checker rightly reports), so its
/// scenarios race only on public blocks — numbers at or above the
/// default `static_shared_from` threshold of 2^32 — which the agents
/// handle with `DIRECTREAD`/`WRITETHRU`, the regime the null table
/// actually describes.
fn cross_check_scenarios() -> Vec<(&'static str, SystemConfig, Vec<Vec<MemRef>>)> {
    /// First public block number under the static scheme's default
    /// threshold (`twobit_core::DEFAULT_STATIC_SHARED_FROM`).
    const PUBLIC: u64 = 1 << 32;
    let rd = |b: u64| MemRef::read(WordAddr::new(b, 0));
    let wr = |b: u64| MemRef::write(WordAddr::new(b, 0));
    let mut scenarios = Vec::new();
    for kind in [
        ProtocolKind::TwoBit,
        ProtocolKind::TwoBitTlb { entries: 2 },
        ProtocolKind::FullMap,
        ProtocolKind::FullMapLocal,
        ProtocolKind::ClassicalWriteThrough,
    ] {
        scenarios.push((
            "3.2.5 write race",
            SystemConfig::with_defaults(2).with_protocol(kind),
            vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]],
        ));
        let mut conflict = SystemConfig::with_defaults(2).with_protocol(kind);
        conflict.cache = CacheOrg::new(2, 1, 4).expect("valid 2-set direct-mapped cache");
        scenarios.push((
            "replacement/recall race",
            conflict,
            vec![vec![wr(1), rd(9)], vec![rd(1)]],
        ));
        scenarios.push((
            "upgrade + third reader",
            SystemConfig::with_defaults(3).with_protocol(kind),
            vec![vec![rd(1), wr(1)], vec![wr(1)], vec![rd(1)]],
        ));
    }
    let static_sw = ProtocolKind::StaticSoftware;
    scenarios.push((
        "public-block write race",
        SystemConfig::with_defaults(2).with_protocol(static_sw),
        vec![vec![rd(PUBLIC), wr(PUBLIC)], vec![rd(PUBLIC), wr(PUBLIC)]],
    ));
    let mut conflict = SystemConfig::with_defaults(2).with_protocol(static_sw);
    conflict.cache = CacheOrg::new(2, 1, 4).expect("valid 2-set direct-mapped cache");
    scenarios.push((
        "private replacement + public race",
        conflict,
        vec![vec![wr(1), rd(9), wr(PUBLIC)], vec![rd(PUBLIC)]],
    ));
    scenarios.push((
        "public upgrade + third reader",
        SystemConfig::with_defaults(3).with_protocol(static_sw),
        vec![
            vec![rd(PUBLIC), wr(PUBLIC)],
            vec![wr(PUBLIC)],
            vec![rd(PUBLIC)],
        ],
    ));
    scenarios
}

/// Differential cross-check: explores each race scenario under each of
/// the six schemes with every directory decision reconciled against the
/// scheme's table. Any edge the table cannot explain — and any protocol
/// violation the checker itself finds — becomes a finding.
#[must_use]
pub fn cross_check(budget: u64, jobs: usize) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (label, config, script) in cross_check_scenarios() {
        let scheme = format!("{}", config.protocol);
        let mut mc = match ModelChecker::new(config, script) {
            Ok(mc) => mc,
            Err(e) => {
                findings.push(Finding {
                    analysis: "cross-check",
                    scheme,
                    rule: None,
                    provenance: None,
                    message: format!("{label}: checker rejected the scenario: {e}"),
                    verdict: None,
                    evidence: None,
                });
                continue;
            }
        };
        let sink = mc.reconcile_tables();
        match mc.explore_dedup(budget, jobs) {
            Ok(_) => {}
            Err(cex) => {
                findings.push(Finding {
                    analysis: "cross-check",
                    scheme: scheme.clone(),
                    rule: None,
                    provenance: None,
                    message: format!(
                        "{label}: model checker found a protocol violation: {}",
                        cex.error
                    ),
                    verdict: None,
                    evidence: None,
                });
            }
        }
        for violation in sink.take() {
            findings.push(Finding {
                analysis: "cross-check",
                scheme: scheme.clone(),
                rule: None,
                provenance: None,
                message: format!("{label}: {violation}"),
                verdict: None,
                evidence: None,
            });
        }
    }
    findings
}

/// Renders findings for terminals: one line per finding (confirmation
/// evidence indented beneath it) plus a summary.
#[must_use]
pub fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
        if let Some(evidence) = &f.evidence {
            for line in evidence.lines() {
                out.push_str("    ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    if findings.is_empty() {
        out.push_str("no findings\n");
    } else {
        out.push_str(&format!("{} finding(s)\n", findings.len()));
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON document (hand-rolled; the workspace
/// vendors no JSON serializer). Schema `twobit-lint/v2`:
/// `{"schema": "twobit-lint/v2", "findings": [{"analysis", "scheme",
/// "rule", "provenance", "message", "verdict", "evidence"}], "count"}`
/// — v2 adds the top-level `schema` tag and the per-finding dynamic
/// confirmation fields (`verdict`: `"CONFIRMED"`/`"PLAUSIBLE"`/null,
/// `evidence`: the replayed timeline or null).
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"schema\": \"twobit-lint/v2\",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"analysis\": \"{}\", ", json_escape(f.analysis)));
        out.push_str(&format!("\"scheme\": \"{}\", ", json_escape(&f.scheme)));
        match &f.rule {
            Some(rule) => out.push_str(&format!("\"rule\": \"{}\", ", json_escape(rule))),
            None => out.push_str("\"rule\": null, "),
        }
        match &f.provenance {
            Some(p) => out.push_str(&format!("\"provenance\": \"{}\", ", json_escape(p))),
            None => out.push_str("\"provenance\": null, "),
        }
        out.push_str(&format!("\"message\": \"{}\", ", json_escape(&f.message)));
        match f.verdict {
            Some(v) => out.push_str(&format!("\"verdict\": \"{}\", ", json_escape(v))),
            None => out.push_str("\"verdict\": null, "),
        }
        match &f.evidence {
            Some(e) => out.push_str(&format!("\"evidence\": \"{}\"}}", json_escape(e))),
            None => out.push_str("\"evidence\": null}"),
        }
    }
    if findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str(&format!("  \"count\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignments_enumerate_the_hypercube() {
        assert_eq!(assignments(&[]).len(), 1);
        assert_eq!(assignments(&[Cond::Fresh]).len(), 2);
        assert_eq!(assignments(&[Cond::WaitWrite, Cond::Retains]).len(), 4);
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_document_shape() {
        let doc = render_json(&[]);
        assert!(doc.contains("\"schema\": \"twobit-lint/v2\""));
        assert!(doc.contains("\"findings\": []"));
        assert!(doc.contains("\"count\": 0"));
    }

    #[test]
    fn json_findings_carry_the_v2_fields() {
        let mut f = Finding::of_table(
            "flow-unserviced",
            twobit_core::shipped_tables().first().unwrap(),
            "m".to_string(),
        );
        f.verdict = Some("CONFIRMED");
        f.evidence = Some("timeline".to_string());
        let doc = render_json(&[f]);
        assert!(doc.contains("\"verdict\": \"CONFIRMED\""));
        assert!(doc.contains("\"evidence\": \"timeline\""));
    }

    #[test]
    fn dedup_merges_identical_findings_across_schemes() {
        let tables = twobit_core::shipped_tables();
        let a = Finding::of_table("flow-unserviced", tables[0], "same".to_string());
        let b = Finding::of_table("flow-unserviced", tables[1], "same".to_string());
        let c = Finding::of_table("flow-unserviced", tables[0], "different".to_string());
        let out = dedup_findings(vec![a, b, c]);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].scheme,
            format!("{}, {}", tables[0].scheme, tables[1].scheme)
        );
    }
}
