//! One deliberately broken fixture table per analysis — each asserted
//! flagged by exactly the analysis it targets — plus a golden run
//! asserting every shipped scheme lints clean and a small differential
//! cross-check against the model checker.

use twobit_core::rule;
use twobit_core::transitions::{
    ActionKind, Cond, Delivery, EventKind, EventSpec, StateSet, TransitionTable,
};
use twobit_core::DirectoryProtocol;
use twobit_lint::{
    check_broadcast_necessity, check_dead_rules, check_determinism, check_exhaustiveness,
    check_invariants, cross_check, lint_table,
};
use twobit_types::GlobalState;

use GlobalState::{Absent, Present1, PresentM, PresentStar};

/// A fixture with a hole: read-miss is declared over all four states
/// but no rule handles `PresentM` — the missing `match` arm.
#[test]
fn exhaustiveness_flags_a_missing_arm() {
    let table = TransitionTable {
        scheme: "fixture-missing-arm",
        tracks_state: true,
        events: vec![EventSpec::new(EventKind::ReadMiss, StateSet::ALL, &[])],
        rules: vec![
            rule!(
                "read-miss-absent",
                EventKind::ReadMiss,
                StateSet::only(Absent)
            )
            .action(ActionKind::Grant { exclusive: false })
            .to(StateSet::only(Present1)),
            rule!("read-miss-shared", EventKind::ReadMiss, StateSet::SHARED)
                .action(ActionKind::Grant { exclusive: false })
                .to(StateSet::only(PresentStar)),
            // No rule for PresentM.
        ],
    };
    let findings = check_exhaustiveness(&table);
    assert_eq!(findings.len(), 1, "exactly the PresentM hole: {findings:?}");
    assert!(findings[0].message.contains("PresentM"), "{}", findings[0]);
}

/// A fixture with overlapping guards: two rules both enabled for a
/// write miss on `Present*`.
#[test]
fn determinism_flags_overlapping_guards() {
    let table = TransitionTable {
        scheme: "fixture-overlap",
        tracks_state: true,
        events: vec![EventSpec::new(EventKind::WriteMiss, StateSet::SHARED, &[])],
        rules: vec![
            rule!("write-miss-shared", EventKind::WriteMiss, StateSet::SHARED)
                .action(ActionKind::Invalidate {
                    delivery: Delivery::Broadcast,
                })
                .action(ActionKind::Grant { exclusive: true })
                .to(StateSet::only(PresentM)),
            rule!(
                "write-miss-pstar",
                EventKind::WriteMiss,
                StateSet::only(PresentStar)
            )
            .action(ActionKind::Invalidate {
                delivery: Delivery::Broadcast,
            })
            .action(ActionKind::Grant { exclusive: true })
            .to(StateSet::only(PresentM)),
        ],
    };
    let findings = check_determinism(&table);
    assert!(!findings.is_empty(), "the Present* overlap must be flagged");
    assert!(
        findings
            .iter()
            .all(|f| f.message.contains("write-miss-shared")
                && f.message.contains("write-miss-pstar")),
        "{findings:?}"
    );
    // The overlap is only at Present*; Present1 has a single rule.
    assert_eq!(findings.len(), 1, "{findings:?}");
}

/// A fixture with two dead rules: one whose source states fall outside
/// its event's domain, one guarding on a condition variable the event
/// does not declare.
#[test]
fn dead_rules_are_flagged_with_provenance() {
    let table = TransitionTable {
        scheme: "fixture-dead",
        tracks_state: true,
        events: vec![
            EventSpec::new(EventKind::ReadMiss, StateSet::SHARED, &[]),
            EventSpec::new(EventKind::Modify, StateSet::ALL, &[]),
        ],
        rules: vec![
            rule!("read-miss-live", EventKind::ReadMiss, StateSet::SHARED)
                .action(ActionKind::Grant { exclusive: false })
                .to(StateSet::only(PresentStar)),
            rule!(
                "read-miss-outside-domain",
                EventKind::ReadMiss,
                StateSet::only(PresentM)
            )
            .action(ActionKind::Grant { exclusive: false }),
            rule!("modify-undeclared-cond", EventKind::Modify, StateSet::ALL)
                .requires(Cond::Fresh, true)
                .action(ActionKind::ModifyGrant { granted: true })
                .to(StateSet::only(PresentM)),
        ],
    };
    let findings = check_dead_rules(&table);
    assert_eq!(findings.len(), 2, "{findings:?}");
    let flagged: Vec<&str> = findings.iter().filter_map(|f| f.rule.as_deref()).collect();
    assert!(
        flagged.contains(&"read-miss-outside-domain"),
        "{findings:?}"
    );
    assert!(flagged.contains(&"modify-undeclared-cond"), "{findings:?}");
    assert!(
        findings.iter().all(|f| f
            .provenance
            .as_deref()
            .is_some_and(|p| p.contains("fixtures.rs"))),
        "dead-rule findings must carry file:line provenance: {findings:?}"
    );
}

/// The classic seeded directory bug: the write-hit upgrade on
/// `Present*` loses its invalidate. The writer-exclusivity invariant
/// must flag it — a stale clean copy would survive the write.
#[test]
fn invariant_flags_the_dropped_invalidate() {
    let mut table = twobit_core::TwoBitDirectory::new()
        .transition_table()
        .expect("two-bit ships a table")
        .clone();
    assert!(
        check_invariants(&table).is_empty(),
        "the unmodified table is clean"
    );
    table
        .rule_mut("modify-fresh-shared")
        .expect("two-bit declares the shared-upgrade rule")
        .actions
        .retain(|a| !matches!(a, ActionKind::Invalidate { .. }));
    let findings = check_invariants(&table);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("inv-writer-exclusivity"),
        "{}",
        findings[0]
    );
    assert_eq!(findings[0].rule.as_deref(), Some("modify-fresh-shared"));
    assert!(
        findings[0]
            .provenance
            .as_deref()
            .is_some_and(|p| p.contains("two_bit.rs")),
        "{findings:?}"
    );
}

/// The `Present1` upgrade is the paper's sanctioned invalidation-free
/// path into `PresentM` — dropping *that* rule's (nonexistent)
/// invalidate must not be flagged, which the golden test covers; here
/// we assert the exception is load-bearing by widening the rule.
#[test]
fn invariant_exception_is_limited_to_present1() {
    let mut table = twobit_core::TwoBitDirectory::new()
        .transition_table()
        .expect("two-bit ships a table")
        .clone();
    // Widen the invalidation-free Present1 upgrade to also claim
    // Present*: now it is an unsanctioned path and must be flagged.
    table
        .rule_mut("modify-fresh-present1")
        .expect("two-bit declares the sole-copy upgrade rule")
        .when = StateSet::SHARED;
    let findings = check_invariants(&table);
    assert!(
        findings
            .iter()
            .any(|f| f.rule.as_deref() == Some("modify-fresh-present1")
                && f.message.contains("inv-writer-exclusivity")),
        "{findings:?}"
    );
}

/// A fixture that invalidates on a pure read miss — gratuitous
/// non-initiator traffic the broadcast-necessity analysis must reject.
#[test]
fn broadcast_necessity_flags_gratuitous_commands() {
    let table = TransitionTable {
        scheme: "fixture-chatty",
        tracks_state: true,
        events: vec![
            EventSpec::new(EventKind::ReadMiss, StateSet::ALL, &[]),
            EventSpec::new(EventKind::EjectClean, StateSet::ALL, &[]),
        ],
        rules: vec![
            rule!(
                "read-miss-paranoid",
                EventKind::ReadMiss,
                StateSet::of(&[Absent])
            )
            .action(ActionKind::Invalidate {
                delivery: Delivery::Broadcast,
            })
            .action(ActionKind::Grant { exclusive: false })
            .to(StateSet::only(Present1)),
            rule!(
                "eject-clean-recall",
                EventKind::EjectClean,
                StateSet::only(Present1)
            )
            .action(ActionKind::Recall {
                delivery: Delivery::Broadcast,
            })
            .awaits(),
        ],
    };
    let findings = check_broadcast_necessity(&table);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings
            .iter()
            .any(|f| f.rule.as_deref() == Some("read-miss-paranoid")
                && f.message.contains("no exclusive writer")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.rule.as_deref() == Some("eject-clean-recall")),
        "{findings:?}"
    );
}

/// Golden run: every shipped scheme's table passes every analysis.
#[test]
fn shipped_tables_lint_clean() {
    for table in twobit_core::shipped_tables() {
        let findings = lint_table(table);
        assert!(
            findings.is_empty(),
            "{} must lint clean:\n{}",
            table.scheme,
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Golden run for the whole pipeline the binary executes by default:
/// five per-table analyses plus the three flow analyses under the
/// shipped gate, deduplicated — still zero findings.
#[test]
fn lint_shipped_including_flow_analyses_is_clean() {
    let findings = twobit_lint::lint_shipped();
    assert!(
        findings.is_empty(),
        "lint_shipped findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The `--demo-barrier-livelock` path end to end: the pre-fix gate
/// discipline produces the PR 9 unserviced-liveness finding statically,
/// and the guided model-checker search confirms the implicated race
/// window with a replayable timeline.
#[test]
fn demo_barrier_livelock_is_flagged_and_confirmed() {
    let table = twobit_core::shipped_tables()
        .into_iter()
        .find(|t| t.scheme == "two-bit")
        .expect("two-bit ships");
    let mut findings =
        twobit_lint::flow_graph::lint_flow(table, twobit_dist::flow::GateSpec::pr9_regression());
    twobit_lint::confirm::confirm_livelock_findings(&mut findings, 500_000, 2);
    let livelock = findings
        .iter()
        .find(|f| f.analysis == "flow-unserviced" && f.message.contains("overtake"))
        .expect("the PR 9 livelock class must be flagged");
    assert_eq!(livelock.verdict, Some("CONFIRMED"), "{livelock}");
    let evidence = livelock.evidence.as_deref().expect("evidence attached");
    assert!(
        evidence.contains("timeline for blk:"),
        "evidence must carry the replayed obs timeline:\n{evidence}"
    );
    assert!(findings.iter().any(|f| f.analysis == "flow-wait-cycle"));
}

/// Differential smoke: the model checker's explored edges are all
/// explained by the tables. Small budget here; CI runs the binary's
/// full `--cross-check` over all six schemes with a larger one.
#[test]
fn cross_check_smoke() {
    let findings = cross_check(30_000, 2);
    assert!(
        findings.is_empty(),
        "cross-check findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
