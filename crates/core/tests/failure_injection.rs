//! Failure injection: feed the components impossible protocol events and
//! fabricated inconsistent states, and verify the error paths and
//! invariant checkers actually fire. A checker that cannot detect a
//! planted fault proves nothing when it stays quiet on real runs.

use twobit_core::{
    invariants, AgentPolicy, CacheAgent, Controller, FunctionalSystem, TwoBitDirectory,
};
use twobit_types::{
    AccessKind, AddressMap, BlockAddr, CacheId, CacheOrg, CacheToMemory, ControllerConcurrency,
    MemRef, MemoryToCache, ModuleId, ProtocolError, ProtocolKind, SystemConfig, Version, WordAddr,
};

fn agent(id: usize) -> CacheAgent {
    CacheAgent::new(
        CacheId::new(id),
        CacheOrg::new(4, 2, 4).unwrap(),
        AgentPolicy::WriteBack {
            use_exclusive: false,
        },
        false,
    )
}

fn controller() -> Controller {
    Controller::new(
        ModuleId::new(0),
        Box::new(TwoBitDirectory::new()),
        2,
        ControllerConcurrency::PerBlock,
    )
}

fn blk(n: u64) -> BlockAddr {
    BlockAddr::new(n)
}

fn cid(n: usize) -> CacheId {
    CacheId::new(n)
}

#[test]
fn unsolicited_data_grant_is_rejected() {
    let mut a = agent(0);
    let err = a
        .on_network(MemoryToCache::GetData {
            k: cid(0),
            a: blk(1),
            version: Version::new(1),
            exclusive: false,
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
}

#[test]
fn grant_for_wrong_block_is_rejected() {
    let mut a = agent(0);
    a.start(MemRef::read(WordAddr::new(1, 0)), Version::initial());
    let err = a
        .on_network(MemoryToCache::GetData {
            k: cid(0),
            a: blk(99), // not the block we asked for
            version: Version::new(1),
            exclusive: false,
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
}

#[test]
fn data_grant_answering_an_mrequest_is_rejected() {
    let mut a = agent(0);
    // Get a clean copy, then MREQUEST.
    a.start(MemRef::read(WordAddr::new(1, 0)), Version::initial());
    a.on_network(MemoryToCache::GetData {
        k: cid(0),
        a: blk(1),
        version: Version::initial(),
        exclusive: false,
    })
    .unwrap();
    a.start(MemRef::write(WordAddr::new(1, 0)), Version::new(1));
    // A data grant is the wrong reply to a permission request.
    let err = a
        .on_network(MemoryToCache::GetData {
            k: cid(0),
            a: blk(1),
            version: Version::initial(),
            exclusive: true,
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
}

#[test]
fn unsolicited_writeback_data_is_rejected_by_controller() {
    let mut c = controller();
    let err = c
        .submit(CacheToMemory::PutData {
            from: cid(0),
            a: blk(1),
            version: Version::new(1),
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
}

#[test]
fn double_supply_for_one_query_is_rejected() {
    let mut c = controller();
    c.submit(CacheToMemory::Request {
        k: cid(0),
        a: blk(1),
        rw: AccessKind::Write,
    })
    .unwrap();
    c.submit(CacheToMemory::Request {
        k: cid(1),
        a: blk(1),
        rw: AccessKind::Read,
    })
    .unwrap();
    // First supply resolves the BROADQUERY.
    c.submit(CacheToMemory::PutData {
        from: cid(0),
        a: blk(1),
        version: Version::new(2),
    })
    .unwrap();
    // A second, fabricated supply has no transaction to satisfy.
    let err = c
        .submit(CacheToMemory::PutData {
            from: cid(0),
            a: blk(1),
            version: Version::new(3),
        })
        .unwrap_err();
    assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
}

#[test]
fn planted_directory_overclaim_is_detected() {
    // The directory believes Absent while a cache secretly holds a copy.
    let mut c = controller();
    // Give C0 a copy through the legitimate path…
    c.submit(CacheToMemory::Request {
        k: cid(0),
        a: blk(1),
        rw: AccessKind::Read,
    })
    .unwrap();
    let mut a0 = agent(0);
    a0.start(MemRef::read(WordAddr::new(1, 0)), Version::initial());
    a0.on_network(MemoryToCache::GetData {
        k: cid(0),
        a: blk(1),
        version: Version::initial(),
        exclusive: false,
    })
    .unwrap();
    // …then plant a clean eject notice the cache never sent, resetting
    // the directory to Absent while the copy survives.
    c.submit(CacheToMemory::Eject {
        k: cid(0),
        olda: blk(1),
        wb: twobit_types::WritebackKind::Clean,
    })
    .unwrap();
    let err =
        invariants::check_system(&[a0, agent(1)], &[c], AddressMap::interleaved(1)).unwrap_err();
    assert!(matches!(err, ProtocolError::DirectoryInconsistent { .. }));
}

#[test]
fn fabricated_second_dirty_owner_is_detected() {
    let mut a0 = agent(0);
    let mut a1 = agent(1);
    for (agent, id) in [(&mut a0, 0usize), (&mut a1, 1)] {
        agent.start(
            MemRef::write(WordAddr::new(3, 0)),
            Version::new(1 + id as u64),
        );
        agent
            .on_network(MemoryToCache::GetData {
                k: cid(id),
                a: blk(3),
                version: Version::initial(),
                exclusive: true,
            })
            .unwrap();
    }
    let err = invariants::check_system(&[a0, a1], &[controller()], AddressMap::interleaved(1))
        .unwrap_err();
    assert!(matches!(err, ProtocolError::DuplicateOwner { .. }));
}

#[test]
fn oracle_detects_planted_stale_read() {
    let config = SystemConfig::with_defaults(2).with_protocol(ProtocolKind::TwoBit);
    let mut system = FunctionalSystem::new(config).unwrap();
    // Legitimate traffic first.
    system
        .do_ref(cid(0), MemRef::write(WordAddr::new(5, 0)))
        .unwrap();
    // A fabricated stale observation is rejected by the oracle directly.
    let err = system
        .oracle()
        .check_read(cid(1), blk(5), Version::initial())
        .unwrap_err();
    assert!(matches!(err, ProtocolError::StaleRead { .. }));
}

#[test]
fn migration_breaks_the_static_scheme_as_the_paper_warns() {
    // Section 2.2: "this software solution is not sufficient by itself if
    // we allow process migration." Under a migrating workload whose
    // blocks are tagged private, the static scheme really does go
    // incoherent — the oracle catches the stale read — while the two-bit
    // scheme handles the same workload fine.
    use twobit_workload::scenarios::ProcessMigration;
    use twobit_workload::Workload;

    let n = 2;
    let run = |protocol: ProtocolKind| -> Result<(), ProtocolError> {
        let config = SystemConfig::with_defaults(n).with_protocol(protocol);
        let mut system = FunctionalSystem::new(config).unwrap();
        let mut workload = ProcessMigration::new(n, 8, 20, 3).unwrap();
        for _ in 0..600 {
            for k in CacheId::all(n) {
                let op = workload.next_ref(k);
                system.do_ref(k, op)?;
            }
        }
        Ok(())
    };

    run(ProtocolKind::TwoBit).expect("directory schemes survive migration");
    let err = run(ProtocolKind::StaticSoftware)
        .expect_err("the static scheme must go incoherent under migration");
    assert!(matches!(err, ProtocolError::StaleRead { .. }), "got {err}");
}
