//! Property-based protocol validation: arbitrary reference interleavings
//! must stay coherent, keep every invariant, and agree across protocols.

use proptest::prelude::*;
use twobit_core::FunctionalSystem;
use twobit_types::{
    AddressMap, CacheId, CacheOrg, ControllerConcurrency, MemRef, ProtocolKind, SystemConfig,
    WordAddr,
};

/// A compact encodable reference: (cache, block, is_write).
#[derive(Debug, Clone, Copy)]
struct Step {
    cache: usize,
    block: u64,
    write: bool,
}

fn steps(n_caches: usize, blocks: u64, len: usize) -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        (0..n_caches, 0..blocks, any::<bool>()).prop_map(|(cache, block, write)| Step {
            cache,
            block,
            write,
        }),
        1..len,
    )
}

fn config(n: usize, protocol: ProtocolKind, tiny_cache: bool) -> SystemConfig {
    let mut cfg = SystemConfig::with_defaults(n).with_protocol(protocol);
    if tiny_cache {
        // 4 blocks total: heavy conflict-eviction pressure.
        cfg.cache = CacheOrg::new(2, 2, 4).unwrap();
    }
    cfg
}

fn run_steps(cfg: SystemConfig, steps: &[Step]) -> FunctionalSystem {
    let mut sys = FunctionalSystem::new(cfg).unwrap();
    sys.set_check_invariants(true);
    for s in steps {
        let op = if s.write {
            MemRef::write(WordAddr::new(s.block, 0))
        } else {
            MemRef::read(WordAddr::new(s.block, 0))
        };
        // do_ref internally validates coherence via the oracle and checks
        // all invariants; any violation unwraps here.
        sys.do_ref(CacheId::new(s.cache), op).unwrap();
    }
    sys
}

const ALL_DIRECTORY: [ProtocolKind; 4] = [
    ProtocolKind::TwoBit,
    ProtocolKind::TwoBitTlb { entries: 2 },
    ProtocolKind::FullMap,
    ProtocolKind::FullMapLocal,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every directory protocol stays coherent under arbitrary
    /// interleavings with heavy sharing (few blocks, many caches).
    #[test]
    fn directory_protocols_stay_coherent(
        steps in steps(4, 6, 120),
        proto_idx in 0usize..4,
    ) {
        run_steps(config(4, ALL_DIRECTORY[proto_idx], false), &steps);
    }

    /// Same, under brutal eviction pressure (4-block caches): the
    /// replacement protocol of section 3.2.1 interacting with every
    /// other transition.
    #[test]
    fn coherent_under_eviction_pressure(
        steps in steps(3, 16, 150),
        proto_idx in 0usize..4,
    ) {
        run_steps(config(3, ALL_DIRECTORY[proto_idx], true), &steps);
    }

    /// The classical write-through scheme stays coherent too.
    #[test]
    fn classical_stays_coherent(steps in steps(4, 8, 100)) {
        let mut cfg = config(4, ProtocolKind::ClassicalWriteThrough, false);
        cfg.address_map = AddressMap::interleaved(1);
        run_steps(cfg, &steps);
    }

    /// All protocols observe the *same* values for the same serial
    /// reference stream: protocol choice affects cost, never semantics.
    #[test]
    fn protocols_are_observationally_equivalent(steps in steps(4, 6, 80)) {
        let mut observations: Option<Vec<u64>> = None;
        for protocol in ALL_DIRECTORY {
            let mut sys = FunctionalSystem::new(config(4, protocol, false)).unwrap();
            let mut obs = Vec::with_capacity(steps.len());
            for s in &steps {
                let op = if s.write {
                    MemRef::write(WordAddr::new(s.block, 0))
                } else {
                    MemRef::read(WordAddr::new(s.block, 0))
                };
                let c = sys.do_ref(CacheId::new(s.cache), op).unwrap();
                obs.push(c.observed.raw());
            }
            match &observations {
                None => observations = Some(obs),
                Some(reference) => prop_assert_eq!(
                    reference,
                    &obs,
                    "{} diverges from the reference semantics",
                    protocol
                ),
            }
        }
    }

    /// The full map never sends more deliveries than the two-bit scheme
    /// on the same trace — the inequality behind Table 4-1 (two-bit extra
    /// overhead is nonnegative).
    #[test]
    fn two_bit_never_beats_full_map_on_commands(steps in steps(4, 6, 100)) {
        let two_bit = run_steps(config(4, ProtocolKind::TwoBit, false), &steps);
        let full_map = run_steps(config(4, ProtocolKind::FullMap, false), &steps);
        let received = |sys: &FunctionalSystem| -> u64 {
            sys.stats().caches.iter().map(|c| c.commands_received.get()).sum()
        };
        prop_assert!(
            received(&two_bit) >= received(&full_map),
            "two-bit {} < full-map {}",
            received(&two_bit),
            received(&full_map)
        );
    }

    /// The translation buffer only ever removes deliveries relative to
    /// plain two-bit, and a large buffer removes (almost) all useless
    /// ones.
    #[test]
    fn tlb_is_a_pure_improvement(steps in steps(4, 6, 100)) {
        let plain = run_steps(config(4, ProtocolKind::TwoBit, false), &steps);
        let tlb = run_steps(config(4, ProtocolKind::TwoBitTlb { entries: 1024 }, false), &steps);
        let useless = |sys: &FunctionalSystem| -> u64 {
            sys.stats().caches.iter().map(|c| c.useless_commands.get()).sum()
        };
        prop_assert!(useless(&tlb) <= useless(&plain));
    }

    /// Single-command controller concurrency is semantically identical to
    /// per-block (section 3.2.5 calls it merely slower).
    #[test]
    fn concurrency_modes_agree(steps in steps(3, 5, 80)) {
        let mut per_block_cfg = config(3, ProtocolKind::TwoBit, false);
        per_block_cfg.concurrency = ControllerConcurrency::PerBlock;
        let mut single_cfg = config(3, ProtocolKind::TwoBit, false);
        single_cfg.concurrency = ControllerConcurrency::SingleCommand;

        let a = run_steps(per_block_cfg, &steps);
        let b = run_steps(single_cfg, &steps);
        // Functional execution serializes anyway: identical stats.
        let received = |sys: &FunctionalSystem| -> u64 {
            sys.stats().caches.iter().map(|c| c.commands_received.get()).sum()
        };
        prop_assert_eq!(received(&a), received(&b));
    }

    /// Full-map+local never pays more MREQUESTs than plain full-map, and
    /// pays none when blocks are unshared.
    #[test]
    fn local_state_saves_mrequests(steps in steps(4, 8, 100)) {
        let plain = run_steps(config(4, ProtocolKind::FullMap, false), &steps);
        let local = run_steps(config(4, ProtocolKind::FullMapLocal, false), &steps);
        let mreqs = |sys: &FunctionalSystem| -> u64 {
            sys.stats().controllers.iter().map(|c| c.mrequests.get()).sum()
        };
        prop_assert!(mreqs(&local) <= mreqs(&plain));
    }
}

/// Deterministic regression: a dense multi-writer hot-block storm across
/// every protocol (the pattern that historically breaks directory
/// protocols' PresentM transitions).
#[test]
fn hot_block_storm_all_protocols() {
    for protocol in ALL_DIRECTORY {
        let mut sys = FunctionalSystem::new(config(8, protocol, true)).unwrap();
        sys.set_check_invariants(true);
        for round in 0..50u64 {
            let writer = CacheId::new((round % 8) as usize);
            sys.do_ref(writer, MemRef::write(WordAddr::new(0, 0)))
                .unwrap();
            for reader in 0..8usize {
                let c = sys
                    .do_ref(CacheId::new(reader), MemRef::read(WordAddr::new(0, 0)))
                    .unwrap();
                assert_eq!(c.observed.raw(), round + 1, "{protocol} round {round}");
            }
        }
    }
}

/// Deterministic regression: migratory sharing (each cache writes then the
/// next reads+writes) with a one-block-per-set cache, maximizing the
/// dirty-eject / recall races.
#[test]
fn migratory_sharing_with_tiny_caches() {
    for protocol in ALL_DIRECTORY {
        let mut cfg = config(4, protocol, false);
        cfg.cache = CacheOrg::new(1, 1, 4).unwrap(); // one line total!
        let mut sys = FunctionalSystem::new(cfg).unwrap();
        sys.set_check_invariants(true);
        for round in 0..40u64 {
            let k = CacheId::new((round % 4) as usize);
            sys.do_ref(k, MemRef::read(WordAddr::new(round % 3, 0)))
                .unwrap();
            sys.do_ref(k, MemRef::write(WordAddr::new(round % 3, 0)))
                .unwrap();
        }
    }
}
