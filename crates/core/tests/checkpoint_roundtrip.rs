//! Checkpoint/restore round-trips across all six directory schemes.
//!
//! The distributed runner (`twobit-dist`) crash-restarts nodes from these
//! documents, so the contract tested here is strict: for every scheme,
//! serializing an agent or controller to its JSON checkpoint, parsing the
//! *textual* form back (the document crosses a process boundary as text),
//! and restoring into a freshly constructed instance must reproduce the
//! exact state — same fingerprint, same statistics, and identical future
//! behavior.

use twobit_core::{build_policy_for, build_protocol_for, CacheAgent, Controller, FunctionalSystem};
use twobit_obs::json::parse;
use twobit_types::{
    AccessKind, CacheId, CacheToMemory, Fingerprint, Fingerprinter, MemRef, ProtocolKind,
    SystemConfig, Version, WordAddr,
};

const ALL_SCHEMES: [ProtocolKind; 6] = [
    ProtocolKind::TwoBit,
    ProtocolKind::TwoBitTlb { entries: 2 },
    ProtocolKind::FullMap,
    ProtocolKind::FullMapLocal,
    ProtocolKind::ClassicalWriteThrough,
    ProtocolKind::StaticSoftware,
];

/// First public block for the static software scheme's workload
/// contract: blocks below are private (touched by one cache only),
/// blocks at or above are public (never cached).
const SHARED_FROM: u64 = 16;

/// A small sharing-heavy workload: every cache touches a mix of common
/// and private blocks, with enough writes to exercise every directory
/// state and enough distinct blocks to force evictions. With
/// `static_split` the mix honors the static scheme's contract instead:
/// per-cache-disjoint private blocks plus public blocks at
/// [`SHARED_FROM`] and up.
fn drive(sys: &mut FunctionalSystem, refs: usize, static_split: bool) {
    let caches = sys.config().caches;
    let mut x = 0x1234_5678_9abc_def0_u64;
    for i in 0..refs {
        // splitmix64 — deterministic, no external RNG dependency.
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let k = CacheId::new(i % caches);
        let block = if static_split {
            if z & 1 == 0 {
                (k.index() as u64) * 4 + z % 4 // private to cache k
            } else {
                SHARED_FROM + z % 8 // public, uncached
            }
        } else {
            z % 24
        };
        let op = if z & 0x100 != 0 {
            MemRef::write(WordAddr::new(block, 0))
        } else {
            MemRef::read(WordAddr::new(block, 0))
        };
        sys.do_ref(k, op).unwrap();
    }
}

fn fingerprint_agent(a: &CacheAgent) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    a.fingerprint(&mut fp);
    fp.finish()
}

fn fingerprint_controller(c: &Controller) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    c.fingerprint(&mut fp);
    fp.finish()
}

fn config_for(protocol: ProtocolKind) -> SystemConfig {
    let mut cfg = SystemConfig::with_defaults(3).with_protocol(protocol);
    cfg.bias_entries = 2; // exercise the BIAS filter in checkpoints
    cfg
}

#[test]
fn agents_and_controllers_roundtrip_across_all_schemes() {
    for protocol in ALL_SCHEMES {
        let cfg = config_for(protocol);
        let is_static = protocol == ProtocolKind::StaticSoftware;
        let mut sys = FunctionalSystem::with_static_threshold(cfg, SHARED_FROM).unwrap();
        drive(&mut sys, 200, is_static);

        for agent in sys.agents() {
            let doc = parse(&agent.save_state().to_json()).unwrap();
            let mut fresh = CacheAgent::new(
                agent.id(),
                cfg.cache,
                build_policy_for(protocol, SHARED_FROM),
                cfg.duplicate_directory,
            );
            fresh.set_bias_entries(cfg.bias_entries);
            fresh.restore_state(&doc).unwrap();
            assert_eq!(
                fingerprint_agent(&fresh),
                fingerprint_agent(agent),
                "{protocol:?}: agent {} fingerprint diverged after restore",
                agent.id()
            );
            assert_eq!(fresh.stats(), agent.stats(), "{protocol:?}: stats diverged");
        }

        for ctrl in sys.controllers() {
            let doc = parse(&ctrl.save_state().to_json()).unwrap();
            let mut fresh = Controller::new(
                ctrl.module(),
                build_protocol_for(&cfg),
                cfg.caches,
                cfg.concurrency,
            );
            fresh.restore_state(&doc).unwrap();
            assert_eq!(
                fingerprint_controller(&fresh),
                fingerprint_controller(ctrl),
                "{protocol:?}: controller {} fingerprint diverged after restore",
                ctrl.module()
            );
            assert_eq!(fresh.stats(), ctrl.stats(), "{protocol:?}: stats diverged");
        }
    }
}

/// Mid-transaction state survives: stall an agent on a write miss, leave
/// the controller awaiting the matching transaction, checkpoint both,
/// restore, and complete the transaction on the restored pair.
#[test]
fn mid_transaction_checkpoint_resumes_correctly() {
    let cfg = config_for(ProtocolKind::TwoBit);
    let policy = build_policy_for(
        ProtocolKind::TwoBit,
        twobit_core::DEFAULT_STATIC_SHARED_FROM,
    );

    // Cache 0 holds block 5 dirty; cache 1 then write-misses on it. The
    // controller must query cache 0 and is left awaiting the supply.
    let mut a0 = CacheAgent::new(CacheId::new(0), cfg.cache, policy, false);
    let mut a1 = CacheAgent::new(CacheId::new(1), cfg.cache, policy, false);
    let mut ctrl = Controller::new(
        twobit_types::ModuleId::new(0),
        build_protocol_for(&cfg),
        2,
        cfg.concurrency,
    );

    let w0 = MemRef::write(WordAddr::new(5, 0));
    let out = a0.start(w0, Version::new(1));
    for cmd in out.sends {
        for emit in ctrl.submit(cmd).unwrap() {
            if let twobit_core::CtrlEmit::Unicast { to, cmd, .. } = emit {
                assert_eq!(to, CacheId::new(0));
                a0.on_network(cmd).unwrap();
            }
        }
    }
    assert!(!a0.is_stalled());

    let w1 = MemRef::write(WordAddr::new(5, 0));
    let out = a1.start(w1, Version::new(2));
    let mut queries = Vec::new();
    for cmd in out.sends {
        for emit in ctrl.submit(cmd).unwrap() {
            match emit {
                twobit_core::CtrlEmit::Unicast { cmd, .. } => queries.push(cmd),
                twobit_core::CtrlEmit::Broadcast { cmd, exclude, .. } => {
                    assert_ne!(exclude, CacheId::new(0));
                    queries.push(cmd);
                }
            }
        }
    }
    assert!(a1.is_stalled(), "write miss should stall cache 1");
    assert!(ctrl.busy(), "controller should be awaiting the supply");

    // Checkpoint everything mid-transaction, through the textual form.
    let ctrl_doc = parse(&ctrl.save_state().to_json()).unwrap();
    let a0_doc = parse(&a0.save_state().to_json()).unwrap();
    let a1_doc = parse(&a1.save_state().to_json()).unwrap();

    let mut ctrl2 = Controller::new(
        twobit_types::ModuleId::new(0),
        build_protocol_for(&cfg),
        2,
        cfg.concurrency,
    );
    ctrl2.restore_state(&ctrl_doc).unwrap();
    let mut a0r = CacheAgent::new(CacheId::new(0), cfg.cache, policy, false);
    a0r.restore_state(&a0_doc).unwrap();
    let mut a1r = CacheAgent::new(CacheId::new(1), cfg.cache, policy, false);
    a1r.restore_state(&a1_doc).unwrap();
    assert_eq!(
        fingerprint_controller(&ctrl2),
        fingerprint_controller(&ctrl)
    );
    assert_eq!(fingerprint_agent(&a0r), fingerprint_agent(&a0));
    assert_eq!(fingerprint_agent(&a1r), fingerprint_agent(&a1));
    assert!(a1r.is_stalled());

    // Complete the transaction on the restored trio: deliver the held
    // query to cache 0, route its supply to the controller, and deliver
    // the resulting grant to cache 1.
    let mut to_ctrl = Vec::new();
    for cmd in queries {
        let out = a0r.on_network(cmd).unwrap();
        to_ctrl.extend(out.sends);
    }
    assert!(
        to_ctrl
            .iter()
            .any(|c| matches!(c, CacheToMemory::PutData { .. })),
        "dirty owner must supply the block"
    );
    let mut grants = Vec::new();
    for cmd in to_ctrl {
        for emit in ctrl2.submit(cmd).unwrap() {
            if let twobit_core::CtrlEmit::Unicast { to, cmd, .. } = emit {
                assert_eq!(to, CacheId::new(1));
                grants.push(cmd);
            }
        }
    }
    let mut completion = None;
    for cmd in grants {
        let out = a1r.on_network(cmd).unwrap();
        if let Some(c) = out.completed {
            completion = Some(c);
        }
    }
    let c = completion.expect("write must retire on the restored agent");
    assert_eq!(c.observed, Version::new(2));
    assert_eq!(c.op.kind, AccessKind::Write);
    assert!(!ctrl2.busy());
}

/// Restore rejects checkpoints for the wrong identity or scheme instead
/// of silently corrupting state.
#[test]
fn restore_rejects_mismatched_checkpoints() {
    let cfg = config_for(ProtocolKind::TwoBit);
    let policy = build_policy_for(
        ProtocolKind::TwoBit,
        twobit_core::DEFAULT_STATIC_SHARED_FROM,
    );
    let a0 = CacheAgent::new(CacheId::new(0), cfg.cache, policy, false);
    let doc = parse(&a0.save_state().to_json()).unwrap();
    let mut a1 = CacheAgent::new(CacheId::new(1), cfg.cache, policy, false);
    assert!(a1.restore_state(&doc).is_err(), "wrong cache id must fail");

    let ctrl = Controller::new(
        twobit_types::ModuleId::new(0),
        build_protocol_for(&cfg),
        2,
        cfg.concurrency,
    );
    let doc = parse(&ctrl.save_state().to_json()).unwrap();
    let full_map_cfg = cfg.with_protocol(ProtocolKind::FullMap);
    let mut other = Controller::new(
        twobit_types::ModuleId::new(0),
        build_protocol_for(&full_map_cfg),
        2,
        full_map_cfg.concurrency,
    );
    assert!(other.restore_state(&doc).is_err(), "wrong scheme must fail");
}
