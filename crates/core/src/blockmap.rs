//! A paged map keyed by [`BlockAddr`], tuned for the directory hot path.
//!
//! Directory state (`states`, `waiting`), the memory image, and the
//! controller's transaction bookkeeping are all keyed by block address,
//! and the access pattern is dominated by short runs over a small working
//! set: the same handful of contended blocks probed on every command.
//! [`BlockMap`] exploits that by storing entries in 64-slot **pages**
//! (block number's low 6 bits index the slot) held in one arena `Vec`,
//! with a `HashMap` only from page number to arena position and a
//! one-entry hint remembering the last page touched. A repeat probe of a
//! recently-used region is then a compare plus two array indexes — no
//! hashing, no per-entry allocation — while memory stays proportional to
//! the touched address-space footprint, not its span.
//!
//! Iteration ([`BlockMap::iter`]) visits entries in ascending block
//! order, which lets fingerprinting feed entries straight into the hasher
//! without collecting and sorting first.

use std::cell::Cell;
use std::collections::HashMap;
use twobit_types::BlockAddr;

const PAGE_BITS: u32 = 6;
const PAGE_LEN: usize = 1 << PAGE_BITS;
/// Sentinel page number for the empty hint; unreachable, since real page
/// numbers are block numbers shifted right by [`PAGE_BITS`].
const NO_PAGE: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Page<T> {
    no: u64,
    occupied: u32,
    slots: [Option<T>; PAGE_LEN],
}

impl<T> Page<T> {
    fn new(no: u64) -> Self {
        Page {
            no,
            occupied: 0,
            slots: std::array::from_fn(|_| None),
        }
    }
}

/// A map from [`BlockAddr`] to `T` backed by a paged arena (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct BlockMap<T> {
    /// Page number → position in `pages`. Pages are never removed, so
    /// positions are stable and the `hint` below can never dangle.
    index: HashMap<u64, u32>,
    pages: Vec<Page<T>>,
    /// `(page number, arena position)` of the last page touched; a `Cell`
    /// so read-only probes can refresh it.
    hint: Cell<(u64, u32)>,
    len: usize,
}

impl<T> Default for BlockMap<T> {
    fn default() -> Self {
        BlockMap {
            index: HashMap::new(),
            pages: Vec::new(),
            hint: Cell::new((NO_PAGE, 0)),
            len: 0,
        }
    }
}

fn split(a: BlockAddr) -> (u64, usize) {
    let n = a.number();
    (n >> PAGE_BITS, (n & (PAGE_LEN as u64 - 1)) as usize)
}

impl<T> BlockMap<T> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        BlockMap::default()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries (empty pages may remain
    /// allocated for reuse; they do not count).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn page_pos(&self, pno: u64) -> Option<u32> {
        let (hno, hpos) = self.hint.get();
        if hno == pno {
            return Some(hpos);
        }
        let pos = *self.index.get(&pno)?;
        self.hint.set((pno, pos));
        Some(pos)
    }

    /// The entry for block `a`, if present.
    #[must_use]
    pub fn get(&self, a: BlockAddr) -> Option<&T> {
        let (pno, slot) = split(a);
        let pos = self.page_pos(pno)?;
        self.pages[pos as usize].slots[slot].as_ref()
    }

    /// Mutable access to the entry for block `a`, if present.
    pub fn get_mut(&mut self, a: BlockAddr) -> Option<&mut T> {
        let (pno, slot) = split(a);
        let pos = self.page_pos(pno)?;
        self.pages[pos as usize].slots[slot].as_mut()
    }

    /// Whether block `a` has an entry.
    #[must_use]
    pub fn contains_key(&self, a: BlockAddr) -> bool {
        self.get(a).is_some()
    }

    /// Inserts an entry for block `a`, returning the previous one.
    pub fn insert(&mut self, a: BlockAddr, value: T) -> Option<T> {
        let (pno, slot) = split(a);
        let pos = match self.page_pos(pno) {
            Some(pos) => pos as usize,
            None => {
                let pos = u32::try_from(self.pages.len()).expect("fewer than 2^32 pages");
                self.index.insert(pno, pos);
                self.pages.push(Page::new(pno));
                self.hint.set((pno, pos));
                pos as usize
            }
        };
        let old = self.pages[pos].slots[slot].replace(value);
        if old.is_none() {
            self.pages[pos].occupied += 1;
            self.len += 1;
        }
        old
    }

    /// Removes block `a`'s entry, returning it. The page stays allocated
    /// for reuse.
    pub fn remove(&mut self, a: BlockAddr) -> Option<T> {
        let (pno, slot) = split(a);
        let pos = self.page_pos(pno)? as usize;
        let old = self.pages[pos].slots[slot].take();
        if old.is_some() {
            self.pages[pos].occupied -= 1;
            self.len -= 1;
        }
        old
    }

    /// Iterates over entries in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &T)> {
        let mut order: Vec<&Page<T>> = self.pages.iter().filter(|p| p.occupied > 0).collect();
        order.sort_unstable_by_key(|p| p.no);
        order.into_iter().flat_map(|page| {
            page.slots.iter().enumerate().filter_map(move |(s, slot)| {
                slot.as_ref()
                    .map(|v| (BlockAddr::new((page.no << PAGE_BITS) | s as u64), v))
            })
        })
    }
}

impl<T: PartialEq> PartialEq for BlockMap<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().all(|(a, v)| other.get(a) == Some(v))
    }
}

impl<T: Eq> Eq for BlockMap<T> {}

/// A set of block addresses: [`BlockMap`] with unit values.
#[derive(Debug, Clone, Default)]
pub struct BlockSet {
    map: BlockMap<()>,
}

impl BlockSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        BlockSet::default()
    }

    /// Adds `a`; `true` if it was not already present.
    pub fn insert(&mut self, a: BlockAddr) -> bool {
        self.map.insert(a, ()).is_none()
    }

    /// Removes `a`; `true` if it was present.
    pub fn remove(&mut self, a: BlockAddr) -> bool {
        self.map.remove(a).is_some()
    }

    /// Whether `a` is in the set.
    #[must_use]
    pub fn contains(&self, a: BlockAddr) -> bool {
        self.map.contains_key(a)
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over members in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = BlockAddr> + '_ {
        self.map.iter().map(|(a, ())| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = BlockMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(blk(5), "a"), None);
        assert_eq!(m.insert(blk(5), "b"), Some("a"));
        assert_eq!(m.get(blk(5)), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(blk(5)), Some("b"));
        assert_eq!(m.remove(blk(5)), None);
        assert!(m.is_empty());
        assert_eq!(m.get(blk(5)), None);
    }

    #[test]
    fn entries_across_pages() {
        let mut m = BlockMap::new();
        // Same slot index on three different pages, plus neighbors.
        for n in [3u64, 64 + 3, 4096 + 3, 4096 + 4] {
            m.insert(blk(n), n);
        }
        assert_eq!(m.len(), 4);
        for n in [3u64, 64 + 3, 4096 + 3, 4096 + 4] {
            assert_eq!(m.get(blk(n)), Some(&n));
        }
        assert!(!m.contains_key(blk(64 + 4)));
    }

    #[test]
    fn iter_is_in_ascending_block_order() {
        let mut m = BlockMap::new();
        for n in [900u64, 1, 70, 65, 0, 8000] {
            m.insert(blk(n), ());
        }
        let keys: Vec<u64> = m.iter().map(|(a, ())| a.number()).collect();
        assert_eq!(keys, vec![0, 1, 65, 70, 900, 8000]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut m = BlockMap::new();
        m.insert(blk(7), 1u32);
        *m.get_mut(blk(7)).unwrap() += 41;
        assert_eq!(m.get(blk(7)), Some(&42));
        assert!(m.get_mut(blk(8)).is_none());
    }

    #[test]
    fn hint_survives_interleaved_pages() {
        let mut m = BlockMap::new();
        m.insert(blk(0), 0u64);
        m.insert(blk(1000), 1);
        // Alternate pages so the hint is wrong on every probe.
        for _ in 0..10 {
            assert_eq!(m.get(blk(0)), Some(&0));
            assert_eq!(m.get(blk(1000)), Some(&1));
        }
    }

    #[test]
    fn equality_ignores_empty_pages_and_history() {
        let mut a = BlockMap::new();
        a.insert(blk(1), 1u8);
        a.insert(blk(999), 2);
        a.remove(blk(999)); // leaves an empty page behind
        let mut b = BlockMap::new();
        b.insert(blk(1), 1u8);
        assert_eq!(a, b);
        b.insert(blk(2), 3);
        assert_ne!(a, b);
    }

    #[test]
    fn set_semantics() {
        let mut s = BlockSet::new();
        assert!(s.insert(blk(3)));
        assert!(!s.insert(blk(3)), "duplicate insert reports absence");
        assert!(s.contains(blk(3)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(blk(3)));
        assert!(!s.remove(blk(3)));
        assert!(s.is_empty());
    }
}
