//! The memory-module controller (`K_j`): executes a
//! [`DirectoryProtocol`]'s decisions and enforces the synchronization
//! discipline of section 3.2.5.
//!
//! The paper requires the controller to contain: the bit map (inside the
//! protocol object here), "a control unit (finite state automaton) to
//! implement the protocols", "a queue for temporary storing of requests
//! arriving while the current one is being serviced and logic to insert
//! and delete (anywhere) elements in the queue" — the *delete anywhere*
//! power is exactly what the MREQUEST-cancellation scenario of
//! section 3.2.5 needs, and it is implemented here verbatim: when a
//! `BROADINV(a, k)` goes out, queued `MREQUEST(j, a)` from other caches
//! are deleted (cache `j` treats the arriving `BROADINV` as
//! `MGRANTED(j, false)` and retries as a write miss).
//!
//! Two concurrency disciplines are supported
//! ([`ControllerConcurrency`]): whole-controller serialization
//! ("only one command at a time", which the paper calls too stringent)
//! and per-block serialization (the multiprogrammed controller).
//!
//! The controller also resolves the replacement/recall race the paper
//! leaves open: a dirty block's owner may eject it at the same moment the
//! controller queries for it. The write-back is then *in flight* when the
//! `BROADQUERY`/`PURGE` finds no owner; the controller accepts the
//! arriving write-back as the query's answer
//! ([`DirectoryProtocol::eject_satisfies_wait`]).

use crate::blockmap::{BlockMap, BlockSet};
use crate::directory::{DirSend, DirStep, DirectoryProtocol, OpenKind, SendCost};
use crate::memory::MemoryImage;
use std::collections::VecDeque;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_obs::{ActorId, Profiler, SimEvent, Tracer};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheToMemory, ControllerConcurrency, ControllerStats, Counter,
    Fingerprinter, MemoryToCache, ModuleId, ProtocolError, Version, WritebackKind,
};

/// A message the controller wants delivered, with its timing class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlEmit {
    /// To one cache.
    Unicast {
        /// Recipient.
        to: CacheId,
        /// Command.
        cmd: MemoryToCache,
        /// Timing class.
        cost: SendCost,
    },
    /// To every cache except `exclude`.
    Broadcast {
        /// Command.
        cmd: MemoryToCache,
        /// The initiator, skipped by delivery.
        exclude: CacheId,
        /// Timing class.
        cost: SendCost,
    },
}

/// A memory-module controller: protocol FSM + request queue + module
/// storage.
#[derive(Debug)]
pub struct Controller {
    // NOTE: `Clone` is implemented manually below (Box<dyn …> via
    // `clone_box`) so the model checker can branch system states.
    module: ModuleId,
    protocol: Box<dyn DirectoryProtocol>,
    memory: MemoryImage,
    n_caches: usize,
    concurrency: ControllerConcurrency,
    /// Blocks whose transaction awaits a data supply, with the miss kind
    /// (read/write) — needed to tell whether a query responder retains a
    /// clean copy.
    awaiting: BlockMap<AccessKind>,
    /// Dirty ejects announced but whose data has not arrived yet. At most
    /// one in flight per (cache, block), and rarely more than a handful
    /// total, so a linear-scanned `Vec` beats any hashed set here.
    eject_announced: Vec<(CacheId, BlockAddr)>,
    /// Blocks locked by an announced eject (no transaction may start
    /// until the write-back lands).
    eject_locked: BlockSet,
    queue: VecDeque<CacheToMemory>,
    stats: ControllerStats,
}

impl Clone for Controller {
    fn clone(&self) -> Self {
        Controller {
            module: self.module,
            protocol: self.protocol.clone_box(),
            memory: self.memory.clone(),
            n_caches: self.n_caches,
            concurrency: self.concurrency,
            awaiting: self.awaiting.clone(),
            eject_announced: self.eject_announced.clone(),
            eject_locked: self.eject_locked.clone(),
            queue: self.queue.clone(),
            stats: self.stats,
        }
    }
}

impl Controller {
    /// Creates a controller for `module` running `protocol`, serving a
    /// system of `n_caches` caches.
    ///
    /// # Panics
    ///
    /// Panics if `n_caches` is zero.
    #[must_use]
    pub fn new(
        module: ModuleId,
        protocol: Box<dyn DirectoryProtocol>,
        n_caches: usize,
        concurrency: ControllerConcurrency,
    ) -> Self {
        assert!(n_caches > 0, "a controller serves at least one cache");
        Controller {
            module,
            protocol,
            memory: MemoryImage::new(),
            n_caches,
            concurrency,
            awaiting: BlockMap::new(),
            eject_announced: Vec::new(),
            eject_locked: BlockSet::new(),
            queue: VecDeque::new(),
            stats: ControllerStats::default(),
        }
    }

    /// This controller's module identity.
    #[must_use]
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// The module's storage.
    #[must_use]
    pub fn memory(&self) -> &MemoryImage {
        &self.memory
    }

    /// The protocol's decision logic (for invariant checks and reports).
    #[must_use]
    pub fn protocol(&self) -> &dyn DirectoryProtocol {
        self.protocol.as_ref()
    }

    /// Accumulated statistics, including translation-buffer counters when
    /// the protocol has one.
    #[must_use]
    pub fn stats(&self) -> ControllerStats {
        let mut stats = self.stats;
        if let Some((hits, misses)) = self.protocol.tlb_counters() {
            stats.tlb_hits = Counter::from(hits);
            stats.tlb_misses = Counter::from(misses);
        }
        stats
    }

    /// `true` while any transaction awaits data or any request is queued —
    /// the drain-at-end liveness check.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.awaiting.is_empty() || !self.queue.is_empty() || !self.eject_locked.is_empty()
    }

    /// Feeds the controller's complete future-relevant state into `fp`
    /// for the model checker's visited-set: the directory FSM (via
    /// [`DirectoryProtocol::fingerprint`]), the memory image, and the
    /// section 3.2.5 transaction bookkeeping (awaiting set, eject locks,
    /// conflict queue — in queue order, since service order matters).
    /// Unordered sets are sorted first so the encoding is
    /// path-independent; statistics are excluded.
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.module.index());
        self.protocol.fingerprint(fp);
        fp.write_usize(self.memory.len());
        for (a, v) in self.memory.written_blocks() {
            fp.write_u64(a.number());
            fp.write_u64(v.raw());
        }
        // `BlockMap`/`BlockSet` iterate in ascending block order already.
        fp.write_usize(self.awaiting.len());
        for (a, rw) in self.awaiting.iter() {
            fp.write_u64(a.number());
            fp.write_bool(rw.is_write());
        }
        let mut announced: Vec<(usize, u64)> = self
            .eject_announced
            .iter()
            .map(|&(k, a)| (k.index(), a.number()))
            .collect();
        announced.sort_unstable();
        fp.write_usize(announced.len());
        for (k, a) in announced {
            fp.write_usize(k);
            fp.write_u64(a);
        }
        fp.write_usize(self.eject_locked.len());
        for a in self.eject_locked.iter() {
            fp.write_u64(a.number());
        }
        fp.write_usize(self.queue.len());
        for cmd in &self.queue {
            crate::fp::cache_to_memory(cmd, fp);
        }
    }

    /// Serializes the controller's complete state — the directory FSM
    /// (via [`DirectoryProtocol::save_state`], tagged with the scheme
    /// name), the memory image, the section 3.2.5 transaction bookkeeping
    /// (awaiting set, eject locks, conflict queue in service order), and
    /// the statistics — as a checkpoint document for
    /// [`Controller::restore_state`].
    ///
    /// The `eject_announced` list keeps its insertion order: unlike the
    /// fingerprint (which sorts for path-independence), a checkpoint must
    /// reproduce the *exact* state so a restored run replays identically.
    #[must_use]
    pub fn save_state(&self) -> Json {
        obj([
            ("module", num_u64(self.module.index() as u64)),
            ("scheme", Json::Str(self.protocol.name().into())),
            ("protocol", self.protocol.save_state()),
            ("memory", crate::snapshot::memory_image_json(&self.memory)),
            (
                "awaiting",
                Json::Arr(
                    self.awaiting
                        .iter()
                        .map(|(a, rw)| {
                            obj([
                                ("a", crate::snapshot::block_json(a)),
                                ("rw", crate::snapshot::access_kind_json(*rw)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "eject_announced",
                Json::Arr(
                    self.eject_announced
                        .iter()
                        .map(|&(k, a)| {
                            obj([
                                ("k", crate::snapshot::cache_id_json(k)),
                                ("a", crate::snapshot::block_json(a)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "eject_locked",
                Json::Arr(
                    self.eject_locked
                        .iter()
                        .map(crate::snapshot::block_json)
                        .collect(),
                ),
            ),
            (
                "queue",
                Json::Arr(
                    self.queue
                        .iter()
                        .map(|&cmd| crate::snapshot::cache_to_memory_json(cmd))
                        .collect(),
                ),
            ),
            ("stats", crate::snapshot::controller_stats_json(&self.stats)),
        ])
    }

    /// Restores the state captured by [`Controller::save_state`] into
    /// this controller, which must have been constructed for the same
    /// module, scheme, and cache count as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a message if the document is malformed or names a
    /// different module or scheme. On error `self` is left unchanged.
    pub fn restore_state(&mut self, j: &Json) -> Result<(), String> {
        let module = j.req_u64("module")? as usize;
        if module != self.module.index() {
            return Err(format!(
                "checkpoint is for module {module}, this controller is {}",
                self.module.index()
            ));
        }
        let scheme = j.req_str("scheme")?;
        if scheme != self.protocol.name() {
            return Err(format!(
                "checkpoint scheme `{scheme}` does not match running scheme `{}`",
                self.protocol.name()
            ));
        }
        let protocol =
            crate::snapshot::restore_protocol(scheme, crate::snapshot::req(j, "protocol")?)?;
        let memory = crate::snapshot::memory_image_from(crate::snapshot::req(j, "memory")?)?;
        let mut awaiting = BlockMap::new();
        for e in crate::snapshot::req_array(j, "awaiting")? {
            awaiting.insert(
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
                crate::snapshot::access_kind_from(crate::snapshot::req(e, "rw")?)?,
            );
        }
        let mut eject_announced = Vec::new();
        for e in crate::snapshot::req_array(j, "eject_announced")? {
            eject_announced.push((
                crate::snapshot::cache_id_from(crate::snapshot::req(e, "k")?)?,
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
            ));
        }
        let mut eject_locked = BlockSet::new();
        for e in crate::snapshot::req_array(j, "eject_locked")? {
            eject_locked.insert(crate::snapshot::block_from(e)?);
        }
        let mut queue = VecDeque::new();
        for e in crate::snapshot::req_array(j, "queue")? {
            queue.push_back(crate::snapshot::cache_to_memory_from(e)?);
        }
        let stats = crate::snapshot::controller_stats_from(crate::snapshot::req(j, "stats")?)?;
        self.protocol = protocol;
        self.memory = memory;
        self.awaiting = awaiting;
        self.eject_announced = eject_announced;
        self.eject_locked = eject_locked;
        self.queue = queue;
        self.stats = stats;
        Ok(())
    }

    /// Number of queued (conflict-deferred) requests.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Handles one command from a cache, returning the messages to
    /// deliver.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] if the command is impossible in the
    /// current state (e.g. unsolicited block data) — these indicate
    /// protocol bugs or injected faults, never normal operation.
    pub fn submit(&mut self, cmd: CacheToMemory) -> Result<Vec<CtrlEmit>, ProtocolError> {
        self.submit_perf(cmd, &mut Profiler::disabled())
    }

    /// Like [`submit`](Controller::submit), but records span timings into
    /// `perf` for hot-path attribution: `ctrl.queue.enqueue` (conflict
    /// deferral), `ctrl.queue.drain` (the scan-and-reopen loop, its
    /// self-time being the queue scan itself), and `ctrl.protocol.open`
    /// (one per command handed to the directory FSM). The simulator
    /// passes its own profiler here so these spans nest under the event
    /// class being dispatched.
    ///
    /// # Errors
    ///
    /// Exactly as [`submit`](Controller::submit).
    pub fn submit_perf(
        &mut self,
        cmd: CacheToMemory,
        perf: &mut Profiler,
    ) -> Result<Vec<CtrlEmit>, ProtocolError> {
        match cmd {
            CacheToMemory::Request { .. }
            | CacheToMemory::MRequest { .. }
            | CacheToMemory::WriteThrough { .. }
            | CacheToMemory::DirectRead { .. } => {
                let a = cmd.block();
                if self.can_start(a) {
                    let mut emits = self.process_open(cmd, perf);
                    emits.extend(self.drain_queue(perf));
                    Ok(emits)
                } else {
                    self.enqueue(cmd, perf);
                    Ok(Vec::new())
                }
            }
            CacheToMemory::Eject { k, olda, wb } => {
                self.stats.ejects.inc();
                match wb {
                    WritebackKind::Clean => Ok(self.handle_clean_eject(k, olda, perf)),
                    WritebackKind::Dirty => {
                        if !self.eject_announced.contains(&(k, olda)) {
                            self.eject_announced.push((k, olda));
                        }
                        if !self.awaiting.contains_key(olda) {
                            self.eject_locked.insert(olda);
                        }
                        Ok(Vec::new())
                    }
                }
            }
            CacheToMemory::PutData { from, a, version } => self.handle_put(from, a, version, perf),
        }
    }

    /// Like [`submit`](Controller::submit), but when `tracer` is enabled
    /// also records the command's receipt at cycle `now` — including the
    /// global-state transition it caused, which is the directory-side half
    /// of every section 3.2.5 race. The event is recorded even when the
    /// command is a protocol error, so post-mortem ring dumps end on the
    /// offending command.
    ///
    /// # Errors
    ///
    /// Exactly as [`submit`](Controller::submit).
    pub fn submit_traced(
        &mut self,
        cmd: CacheToMemory,
        now: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Vec<CtrlEmit>, ProtocolError> {
        self.submit_observed(cmd, now, tracer, &mut Profiler::disabled())
    }

    /// [`submit_traced`](Controller::submit_traced) plus the span timings
    /// of [`submit_perf`](Controller::submit_perf) — the full-observability
    /// entry point used by the discrete-event simulator.
    ///
    /// # Errors
    ///
    /// Exactly as [`submit`](Controller::submit).
    pub fn submit_observed(
        &mut self,
        cmd: CacheToMemory,
        now: u64,
        tracer: &mut dyn Tracer,
        perf: &mut Profiler,
    ) -> Result<Vec<CtrlEmit>, ProtocolError> {
        if !tracer.enabled() {
            return self.submit_perf(cmd, perf);
        }
        let a = cmd.block();
        let class = cmd.class();
        let text = cmd.to_string();
        let before = self.protocol.global_state(a);
        let result = self.submit_perf(cmd, perf);
        let after = self.protocol.global_state(a);
        let mut ev = SimEvent::new(now, ActorId::Module(self.module), a, text).class(class);
        if before != after {
            ev = ev.global(before, after);
        }
        tracer.record(ev);
        result
    }

    fn can_start(&self, a: BlockAddr) -> bool {
        match self.concurrency {
            ControllerConcurrency::SingleCommand => {
                self.awaiting.is_empty() && self.eject_locked.is_empty() && self.queue.is_empty()
            }
            ControllerConcurrency::PerBlock => {
                !self.awaiting.contains_key(a) && !self.eject_locked.contains(a)
            }
        }
    }

    fn enqueue(&mut self, cmd: CacheToMemory, perf: &mut Profiler) {
        perf.begin("ctrl.queue.enqueue");
        self.stats.conflicts_queued.inc();
        self.queue.push_back(cmd);
        let peak = self.stats.queue_peak.get().max(self.queue.len() as u64);
        self.stats.queue_peak = Counter::from(peak);
        perf.end("ctrl.queue.enqueue");
    }

    fn process_open(&mut self, cmd: CacheToMemory, perf: &mut Profiler) -> Vec<CtrlEmit> {
        perf.begin("ctrl.protocol.open");
        let (k, a, kind) = match cmd {
            CacheToMemory::Request { k, a, rw } => {
                self.stats.requests.inc();
                let kind = match rw {
                    AccessKind::Read => OpenKind::ReadMiss,
                    AccessKind::Write => OpenKind::WriteMiss,
                };
                (k, a, kind)
            }
            CacheToMemory::MRequest { k, a, version } => {
                self.stats.mrequests.inc();
                (k, a, OpenKind::Modify(version))
            }
            CacheToMemory::WriteThrough { k, a, version } => {
                self.stats.requests.inc();
                (k, a, OpenKind::WriteThrough(version))
            }
            CacheToMemory::DirectRead { k, a } => {
                self.stats.requests.inc();
                (k, a, OpenKind::DirectRead)
            }
            other => unreachable!("not an opener: {other}"),
        };
        let step = self.protocol.open(k, a, kind, &self.memory);
        if !step.completes {
            let rw = match kind {
                OpenKind::ReadMiss => AccessKind::Read,
                OpenKind::WriteMiss => AccessKind::Write,
                other => unreachable!("{other:?} transactions never await data"),
            };
            self.awaiting.insert(a, rw);
        }
        let emits = self.apply_step(a, step);
        perf.end("ctrl.protocol.open");
        emits
    }

    fn handle_clean_eject(
        &mut self,
        k: CacheId,
        olda: BlockAddr,
        perf: &mut Profiler,
    ) -> Vec<CtrlEmit> {
        if self.awaiting.contains_key(olda)
            && self
                .protocol
                .eject_satisfies_wait(olda, k, WritebackKind::Clean)
        {
            // A clean eject racing a recall: memory already holds the
            // data; resolve the wait with it.
            let version = self.memory.read(olda);
            let step = self.protocol.supply(olda, k, version, false, &self.memory);
            self.awaiting.remove(olda);
            let mut emits = self.apply_step(olda, step);
            emits.extend(self.drain_queue(perf));
            emits
        } else {
            self.protocol.eject_clean(k, olda);
            Vec::new()
        }
    }

    fn handle_put(
        &mut self,
        from: CacheId,
        a: BlockAddr,
        version: Version,
        perf: &mut Profiler,
    ) -> Result<Vec<CtrlEmit>, ProtocolError> {
        if let Some(i) = self.eject_announced.iter().position(|&e| e == (from, a)) {
            // The write-back half of a dirty eject.
            self.eject_announced.swap_remove(i);
            let step = if self.awaiting.contains_key(a)
                && self
                    .protocol
                    .eject_satisfies_wait(a, from, WritebackKind::Dirty)
            {
                // …which doubles as the answer to an in-flight query.
                self.awaiting.remove(a);
                self.protocol.supply(a, from, version, false, &self.memory)
            } else {
                self.protocol.eject_dirty(from, a, version)
            };
            self.eject_locked.remove(a);
            let mut emits = self.apply_step(a, step);
            emits.extend(self.drain_queue(perf));
            return Ok(emits);
        }
        match self.awaiting.remove(a) {
            Some(rw) => {
                // A query/purge response. On a read the responder kept a
                // clean copy; on a write it invalidated itself.
                let retains = rw == AccessKind::Read;
                let step = self
                    .protocol
                    .supply(a, from, version, retains, &self.memory);
                let mut emits = self.apply_step(a, step);
                emits.extend(self.drain_queue(perf));
                Ok(emits)
            }
            None => Err(ProtocolError::UnexpectedCommand {
                state: format!("{} with no transaction on {a}", self.protocol.name()),
                command: format!("put({from}, {a}, {version})"),
            }),
        }
    }

    fn apply_step(&mut self, a: BlockAddr, step: DirStep) -> Vec<CtrlEmit> {
        if let Some((addr, version)) = step.write_memory {
            self.memory.write(addr, version);
            self.stats.memory_writes.inc();
        }
        let mut emits = Vec::with_capacity(step.sends.len());
        for send in step.sends {
            match send {
                DirSend::Unicast { to, cmd, cost } => {
                    self.stats.unicasts_sent.inc();
                    self.stats.deliveries.inc();
                    if cost == SendCost::DataFromMemory {
                        self.stats.memory_reads.inc();
                    }
                    if matches!(cmd, MemoryToCache::Inv { .. }) {
                        self.cancel_queued_modifies(a, Some(to));
                    }
                    emits.push(CtrlEmit::Unicast { to, cmd, cost });
                }
                DirSend::Broadcast { cmd, exclude, cost } => {
                    self.stats.broadcasts_sent.inc();
                    self.stats
                        .deliveries
                        .add(self.n_caches.saturating_sub(1) as u64);
                    if matches!(cmd, MemoryToCache::BroadInv { .. }) {
                        self.cancel_queued_modifies(a, None);
                    }
                    emits.push(CtrlEmit::Broadcast { cmd, exclude, cost });
                }
            }
        }
        emits
    }

    /// Deletes queued `MREQUEST`s for `a` that an invalidation just made
    /// stale — the section 3.2.5 scenario. `only` restricts deletion to
    /// one cache (targeted `INV`); `None` deletes all (broadcast).
    fn cancel_queued_modifies(&mut self, a: BlockAddr, only: Option<CacheId>) {
        self.queue.retain(|cmd| match *cmd {
            CacheToMemory::MRequest { k, a: qa, .. } if qa == a => only.is_some_and(|o| o != k),
            _ => true,
        });
    }

    fn drain_queue(&mut self, perf: &mut Profiler) -> Vec<CtrlEmit> {
        perf.begin("ctrl.queue.drain");
        let mut emits = Vec::new();
        loop {
            let idx = match self.concurrency {
                ControllerConcurrency::SingleCommand => {
                    if self.awaiting.is_empty()
                        && self.eject_locked.is_empty()
                        && !self.queue.is_empty()
                    {
                        Some(0)
                    } else {
                        None
                    }
                }
                ControllerConcurrency::PerBlock => self.queue.iter().position(|c| {
                    let a = c.block();
                    !self.awaiting.contains_key(a) && !self.eject_locked.contains(a)
                }),
            };
            let Some(idx) = idx else { break };
            let cmd = self.queue.remove(idx).expect("index just found");
            emits.extend(self.process_open(cmd, perf));
        }
        perf.end("ctrl.queue.drain");
        emits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_bit::TwoBitDirectory;
    use twobit_types::GlobalState;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    fn two_bit_controller(n: usize) -> Controller {
        Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            n,
            ControllerConcurrency::PerBlock,
        )
    }

    fn read_miss(k: usize, a: u64) -> CacheToMemory {
        CacheToMemory::Request {
            k: cid(k),
            a: blk(a),
            rw: AccessKind::Read,
        }
    }

    fn write_miss(k: usize, a: u64) -> CacheToMemory {
        CacheToMemory::Request {
            k: cid(k),
            a: blk(a),
            rw: AccessKind::Write,
        }
    }

    #[test]
    fn simple_read_miss_grants_immediately() {
        let mut c = two_bit_controller(4);
        let emits = c.submit(read_miss(0, 1)).unwrap();
        assert_eq!(emits.len(), 1);
        assert!(matches!(
            emits[0],
            CtrlEmit::Unicast {
                cmd: MemoryToCache::GetData { .. },
                ..
            }
        ));
        assert!(!c.busy());
        assert_eq!(c.stats().requests.get(), 1);
        assert_eq!(c.stats().memory_reads.get(), 1);
    }

    #[test]
    fn conflicting_request_queues_until_supply() {
        let mut c = two_bit_controller(4);
        c.submit(write_miss(0, 1)).unwrap(); // PresentM at C0
        let emits = c.submit(read_miss(1, 1)).unwrap();
        assert!(
            matches!(emits[0], CtrlEmit::Broadcast { .. }),
            "BROADQUERY goes out"
        );
        assert!(c.busy());

        // A third request for the same block must wait (section 3.2.5).
        let emits = c.submit(read_miss(2, 1)).unwrap();
        assert!(emits.is_empty());
        assert_eq!(c.queued(), 1);
        assert_eq!(c.stats().conflicts_queued.get(), 1);

        // The owner answers; both waiting requests resolve in order.
        let emits = c
            .submit(CacheToMemory::PutData {
                from: cid(0),
                a: blk(1),
                version: Version::new(5),
            })
            .unwrap();
        let grants: Vec<CacheId> = emits
            .iter()
            .filter_map(|e| match e {
                CtrlEmit::Unicast {
                    cmd: MemoryToCache::GetData { k, .. },
                    ..
                } => Some(*k),
                _ => None,
            })
            .collect();
        assert_eq!(
            grants,
            vec![cid(1), cid(2)],
            "queued request drains after the supply"
        );
        assert!(!c.busy());
        assert_eq!(
            c.memory().read(blk(1)),
            Version::new(5),
            "write-back landed"
        );
    }

    #[test]
    fn per_block_concurrency_lets_other_blocks_through() {
        let mut c = two_bit_controller(4);
        c.submit(write_miss(0, 1)).unwrap();
        c.submit(read_miss(1, 1)).unwrap(); // awaiting data on block 1
        let emits = c.submit(read_miss(2, 2)).unwrap();
        assert_eq!(emits.len(), 1, "block 2 is not blocked by block 1's wait");
    }

    #[test]
    fn single_command_concurrency_serializes_everything() {
        let mut c = Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            4,
            ControllerConcurrency::SingleCommand,
        );
        c.submit(write_miss(0, 1)).unwrap();
        c.submit(read_miss(1, 1)).unwrap(); // awaits
        let emits = c.submit(read_miss(2, 2)).unwrap();
        assert!(
            emits.is_empty(),
            "unrelated block still waits under single-command"
        );
        assert_eq!(c.queued(), 1);
    }

    #[test]
    fn queued_mrequest_deleted_by_broadcast_invalidate() {
        // The exact section 3.2.5 scenario: caches 0 and 1 hold copies;
        // both MREQUEST "at the same time".
        let mut c = two_bit_controller(4);
        c.submit(read_miss(0, 1)).unwrap();
        c.submit(read_miss(1, 1)).unwrap(); // Present*
                                            // C0's MREQUEST processed first: BROADINV(1, excl C0) + grant.
                                            // To force queueing, make block 1 busy first via a PresentM wait
                                            // on… simpler: submit both MREQUESTs back-to-back. The first
                                            // completes synchronously, so queueing needs an artificial block —
                                            // use SingleCommand with an outstanding wait on another block.
        let mut c2 = Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            4,
            ControllerConcurrency::SingleCommand,
        );
        c2.submit(read_miss(0, 1)).unwrap();
        c2.submit(read_miss(1, 1)).unwrap();
        c2.submit(write_miss(2, 9)).unwrap(); // block 9: PresentM at C2
        c2.submit(read_miss(3, 9)).unwrap(); // awaiting on block 9
                                             // Both MREQUESTs for block 1 now queue behind the wait.
        c2.submit(CacheToMemory::MRequest {
            k: cid(0),
            a: blk(1),
            version: Version::initial(),
        })
        .unwrap();
        c2.submit(CacheToMemory::MRequest {
            k: cid(1),
            a: blk(1),
            version: Version::initial(),
        })
        .unwrap();
        assert_eq!(c2.queued(), 2);
        // Resolve block 9; the queue drains: C0's MREQUEST broadcasts
        // BROADINV which deletes C1's queued MREQUEST.
        let emits = c2
            .submit(CacheToMemory::PutData {
                from: cid(2),
                a: blk(9),
                version: Version::new(2),
            })
            .unwrap();
        let granted: Vec<(CacheId, bool)> = emits
            .iter()
            .filter_map(|e| match e {
                CtrlEmit::Unicast {
                    cmd: MemoryToCache::MGranted { k, granted, .. },
                    ..
                } => Some((*k, *granted)),
                _ => None,
            })
            .collect();
        assert_eq!(
            granted,
            vec![(cid(0), true)],
            "C1's MREQUEST was deleted, never answered"
        );
        assert!(!c2.busy());
        let _ = c; // silence unused in the simple path
    }

    #[test]
    fn racing_dirty_eject_satisfies_broadquery() {
        let mut c = two_bit_controller(4);
        c.submit(write_miss(0, 1)).unwrap(); // PresentM at C0
        c.submit(read_miss(1, 1)).unwrap(); // BROADQUERY out, awaiting
                                            // C0 had already ejected: EJECT + put arrive instead of a query
                                            // response.
        c.submit(CacheToMemory::Eject {
            k: cid(0),
            olda: blk(1),
            wb: WritebackKind::Dirty,
        })
        .unwrap();
        let emits = c
            .submit(CacheToMemory::PutData {
                from: cid(0),
                a: blk(1),
                version: Version::new(7),
            })
            .unwrap();
        assert!(matches!(
            emits[0],
            CtrlEmit::Unicast {
                cmd: MemoryToCache::GetData { .. },
                ..
            }
        ));
        assert!(!c.busy());
        // Owner did not retain: requester is the sole holder.
        assert_eq!(c.protocol().global_state(blk(1)), GlobalState::Present1);
    }

    #[test]
    fn dirty_eject_locks_block_until_data_lands() {
        let mut c = two_bit_controller(4);
        c.submit(write_miss(0, 1)).unwrap();
        c.submit(CacheToMemory::Eject {
            k: cid(0),
            olda: blk(1),
            wb: WritebackKind::Dirty,
        })
        .unwrap();
        // A request arriving between the eject notice and its data queues.
        let emits = c.submit(read_miss(1, 1)).unwrap();
        assert!(emits.is_empty());
        let emits = c
            .submit(CacheToMemory::PutData {
                from: cid(0),
                a: blk(1),
                version: Version::new(3),
            })
            .unwrap();
        // After the write-back lands, the queued read served from memory
        // sees the fresh data.
        match emits.last() {
            Some(CtrlEmit::Unicast {
                cmd: MemoryToCache::GetData { version, .. },
                ..
            }) => {
                assert_eq!(*version, Version::new(3));
            }
            other => panic!("expected drained grant, got {other:?}"),
        }
    }

    #[test]
    fn unsolicited_put_is_a_protocol_error() {
        let mut c = two_bit_controller(4);
        let err = c
            .submit(CacheToMemory::PutData {
                from: cid(0),
                a: blk(1),
                version: Version::new(1),
            })
            .unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
    }

    #[test]
    fn broadcast_delivery_accounting() {
        let mut c = two_bit_controller(8);
        c.submit(read_miss(0, 1)).unwrap();
        c.submit(write_miss(1, 1)).unwrap(); // BROADINV to 7 caches
        let stats = c.stats();
        assert_eq!(stats.broadcasts_sent.get(), 1);
        // 7 broadcast deliveries + 2 grants.
        assert_eq!(stats.deliveries.get(), 7 + 2);
    }
}
