//! The directory-protocol abstraction: what a memory controller's
//! finite-state automaton decides, separated from when it runs.
//!
//! A [`DirectoryProtocol`] is a pure decision procedure: handed a
//! transaction-opening command (or owner-supplied data resolving an
//! earlier one), it returns a [`DirStep`] describing exactly which
//! commands to send where, what to write to memory, and whether the
//! transaction is complete. The [`Controller`](crate::Controller) executes
//! steps and enforces the section 3.2.5 queueing discipline; the timed
//! simulator adds latencies on top. Nothing in a protocol knows about
//! time, which is what makes the implementations directly
//! property-testable.

use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use twobit_types::{
    BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version, WritebackKind,
};

/// The transaction-opening commands a controller can hand a protocol,
/// i.e. the four protocol instances of section 2.4 plus the write-through
/// and uncached accesses of the section 2.2–2.3 comparator schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenKind {
    /// `REQUEST(k, a, "read")` — section 3.2.2.
    ReadMiss,
    /// `REQUEST(k, a, "write")` — section 3.2.3.
    WriteMiss,
    /// `MREQUEST(k, a)` — section 3.2.4 (write hit on unmodified block),
    /// carrying the requester's copy version for staleness detection.
    Modify(Version),
    /// A store written straight to memory, carrying its data.
    WriteThrough(Version),
    /// An uncached read served from memory.
    DirectRead,
}

/// How a sent message is costed by the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendCost {
    /// A control command (one network command slot).
    Command,
    /// A block data transfer whose payload required a memory-module read.
    DataFromMemory,
    /// A block data transfer forwarded from data already in hand (an
    /// owner's `put`), no memory read on the critical path.
    DataForwarded,
}

/// One outbound message decided by a protocol step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirSend {
    /// A message to a single cache.
    Unicast {
        /// Recipient.
        to: CacheId,
        /// The command.
        cmd: MemoryToCache,
        /// Timing classification.
        cost: SendCost,
    },
    /// A message to every cache except `exclude` (the transaction's
    /// initiator, which the paper notes "is in an idle state and hence
    /// never loses a cycle").
    Broadcast {
        /// The command.
        cmd: MemoryToCache,
        /// The initiator, not delivered to.
        exclude: CacheId,
        /// Timing classification.
        cost: SendCost,
    },
}

/// The outcome of one protocol decision.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DirStep {
    /// Messages to send, in order.
    pub sends: Vec<DirSend>,
    /// A block write into the module's storage (a write-back landing),
    /// applied before any send is delivered.
    pub write_memory: Option<(BlockAddr, Version)>,
    /// `true` when the transaction is finished and the block unlocks;
    /// `false` when the protocol now awaits a data supply
    /// (`BROADQUERY`/`PURGE` response or racing write-back).
    pub completes: bool,
}

impl DirStep {
    /// A completed step with no sends and no memory write.
    #[must_use]
    pub fn done() -> Self {
        DirStep {
            completes: true,
            ..DirStep::default()
        }
    }

    /// A step that leaves the transaction waiting for data.
    #[must_use]
    pub fn awaiting(sends: Vec<DirSend>) -> Self {
        DirStep {
            sends,
            write_memory: None,
            completes: false,
        }
    }

    /// Builder: add a send.
    #[must_use]
    pub fn with_send(mut self, send: DirSend) -> Self {
        self.sends.push(send);
        self
    }

    /// Builder: set the memory write.
    #[must_use]
    pub fn with_memory_write(mut self, a: BlockAddr, version: Version) -> Self {
        self.write_memory = Some((a, version));
        self
    }
}

/// A directory coherence protocol: the decision logic of a memory-module
/// controller (`K_j`).
///
/// Implementations in this crate: [`TwoBitDirectory`](crate::TwoBitDirectory)
/// (the paper's contribution), [`TwoBitTlbDirectory`](crate::TwoBitTlbDirectory)
/// (section 4.4 enhancement), [`FullMapDirectory`](crate::FullMapDirectory),
/// [`FullMapLocalDirectory`](crate::FullMapLocalDirectory),
/// [`ClassicalDirectory`](crate::ClassicalDirectory), and
/// [`NullDirectory`](crate::NullDirectory).
pub trait DirectoryProtocol: std::fmt::Debug + Send {
    /// Short stable protocol name for reports.
    fn name(&self) -> &'static str;

    /// Handles a transaction-opening command from cache `k` for block `a`.
    ///
    /// The controller guarantees `a` has no other transaction in flight
    /// (section 3.2.5's per-block serialization).
    ///
    /// # Panics
    ///
    /// Implementations panic on [`OpenKind`]s that the protocol's system
    /// configuration can never produce (e.g. `WriteThrough` at a full-map
    /// directory); such a call is a wiring bug, not a runtime condition.
    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep;

    /// Handles block data arriving for a transaction left waiting by
    /// [`DirectoryProtocol::open`]. `retains` tells whether the supplier
    /// kept a clean copy (a `BROADQUERY(read)` response) or gave the block
    /// up entirely (an invalidating response or a racing write-back).
    ///
    /// # Panics
    ///
    /// Panics if no transaction is waiting on `a`.
    fn supply(
        &mut self,
        a: BlockAddr,
        from: CacheId,
        version: Version,
        retains: bool,
        mem: &MemoryImage,
    ) -> DirStep;

    /// Whether an eject notice from `k` (clean or dirty) stands in for the
    /// data supply an in-flight transaction on `a` is waiting for — the
    /// replacement/recall race resolution (the paper's protocols leave
    /// this open; see DESIGN.md).
    fn eject_satisfies_wait(&self, a: BlockAddr, k: CacheId, wb: WritebackKind) -> bool;

    /// Absorbs a clean (advisory) eject notice.
    fn eject_clean(&mut self, k: CacheId, a: BlockAddr);

    /// Absorbs a dirty eject once its data has arrived; typically writes
    /// memory and frees the directory entry.
    fn eject_dirty(&mut self, k: CacheId, a: BlockAddr, version: Version) -> DirStep;

    /// `true` while a transaction on `a` awaits a data supply.
    fn awaiting(&self, a: BlockAddr) -> bool;

    /// The directory's (possibly conservative) view of `a`, mapped onto
    /// the paper's four global states for reporting.
    fn global_state(&self, a: BlockAddr) -> GlobalState;

    /// The exact holder set for `a`, if this scheme tracks identities.
    fn holders(&self, a: BlockAddr) -> Option<OwnerSet>;

    /// Translation-buffer (hits, misses) counters, for the schemes that
    /// have one (section 4.4's second enhancement).
    fn tlb_counters(&self) -> Option<(u64, u64)> {
        None
    }

    /// The protocol's transition relation as a declarative guarded-action
    /// table, for static analysis by `twobit-lint` and differential
    /// reconciliation against the executable paths (see
    /// [`transitions`](crate::transitions)). Every shipped scheme
    /// publishes one; the default exists so wrappers and test doubles
    /// need not.
    fn transition_table(&self) -> Option<&'static crate::transitions::TransitionTable> {
        None
    }

    /// Clones the protocol state behind the trait object — used by the
    /// bounded model checker to branch the system state at every possible
    /// message-delivery interleaving.
    fn clone_box(&self) -> Box<dyn DirectoryProtocol>;

    /// Serializes the directory's complete state as a checkpoint
    /// document, invertible by
    /// [`restore_protocol`](crate::snapshot::restore_protocol) keyed on
    /// [`DirectoryProtocol::name`]. Unlike
    /// [`DirectoryProtocol::fingerprint`], counters (TLB hits/misses) are
    /// *included* — a restored node must report the same statistics it
    /// would have reported uninterrupted.
    ///
    /// The default returns [`Json::Null`](twobit_obs::json::Json::Null), fine for test doubles and for
    /// stateless protocols whose restore constructor ignores the
    /// document (the classical and static schemes).
    fn save_state(&self) -> twobit_obs::json::Json {
        twobit_obs::json::Json::Null
    }

    /// Feeds the directory's complete decision-relevant state into `fp`
    /// in a canonical (path-independent) order, for the model checker's
    /// visited-set. Implementations must cover everything that can steer
    /// a future [`DirectoryProtocol::open`]/supply/eject decision —
    /// per-block global states, waiting records, owner sets, TLB
    /// contents — and must exclude pure observability counters (e.g. TLB
    /// hit/miss tallies): two states differing only in counters behave
    /// identically, and folding counters in would defeat deduplication.
    fn fingerprint(&self, fp: &mut Fingerprinter);

    /// Checks that this directory's knowledge of `a` is consistent with
    /// the ground truth (`clean` = caches holding a clean copy, `dirty` =
    /// caches holding a dirty copy). Only meaningful at quiescence (no
    /// in-flight messages). Returns a human-readable description of any
    /// violation.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the directory's
    /// view does not admit the ground truth.
    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String>;
}

/// Convenience constructors for the grant messages every protocol sends.
pub(crate) fn grant_from_memory(
    k: CacheId,
    a: BlockAddr,
    mem: &MemoryImage,
    exclusive: bool,
) -> DirSend {
    DirSend::Unicast {
        to: k,
        cmd: MemoryToCache::GetData {
            k,
            a,
            version: mem.read(a),
            exclusive,
        },
        cost: SendCost::DataFromMemory,
    }
}

/// A grant forwarding data just supplied by an owner.
pub(crate) fn grant_forwarded(
    k: CacheId,
    a: BlockAddr,
    version: Version,
    exclusive: bool,
) -> DirSend {
    DirSend::Unicast {
        to: k,
        cmd: MemoryToCache::GetData {
            k,
            a,
            version,
            exclusive,
        },
        cost: SendCost::DataForwarded,
    }
}

/// An `MGRANTED` reply.
pub(crate) fn mgranted(k: CacheId, a: BlockAddr, granted: bool) -> DirSend {
    DirSend::Unicast {
        to: k,
        cmd: MemoryToCache::MGranted { k, a, granted },
        cost: SendCost::Command,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_step_builders() {
        let done = DirStep::done();
        assert!(done.completes && done.sends.is_empty() && done.write_memory.is_none());

        let s = DirStep::done()
            .with_memory_write(BlockAddr::new(1), Version::new(2))
            .with_send(mgranted(CacheId::new(0), BlockAddr::new(1), true));
        assert_eq!(s.write_memory, Some((BlockAddr::new(1), Version::new(2))));
        assert_eq!(s.sends.len(), 1);

        let w = DirStep::awaiting(vec![]);
        assert!(!w.completes);
    }

    #[test]
    fn grant_helpers_build_expected_commands() {
        let mem = MemoryImage::new();
        let k = CacheId::new(3);
        let a = BlockAddr::new(7);
        match grant_from_memory(k, a, &mem, true) {
            DirSend::Unicast {
                to,
                cmd:
                    MemoryToCache::GetData {
                        exclusive, version, ..
                    },
                cost,
            } => {
                assert_eq!(to, k);
                assert!(exclusive);
                assert_eq!(version, Version::initial());
                assert_eq!(cost, SendCost::DataFromMemory);
            }
            other => panic!("unexpected send {other:?}"),
        }
        match grant_forwarded(k, a, Version::new(9), false) {
            DirSend::Unicast {
                cmd: MemoryToCache::GetData { version, .. },
                cost,
                ..
            } => {
                assert_eq!(version, Version::new(9));
                assert_eq!(cost, SendCost::DataForwarded);
            }
            other => panic!("unexpected send {other:?}"),
        }
    }
}
