//! Local (per-cache-line) states used by the directory protocols.
//!
//! The paper's caches keep a valid bit and a modified bit (three
//! meaningful states). The Yen–Fu extension of section 2.4.3 adds a fourth
//! local state — "the only copy of an unmodified block" — so writes to
//! unshared blocks can proceed without consulting the global map. One enum
//! covers both: protocols that don't use [`LocalState::Exclusive`] simply
//! never produce it.

use serde::{Deserialize, Serialize};
use std::fmt;
use twobit_cache::LineMeta;
use twobit_types::LineState;

/// Local state of a line under a directory protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum LocalState {
    /// Valid bit off.
    #[default]
    Invalid,
    /// Valid, unmodified, possibly cached elsewhere too (the plain "valid
    /// + not modified" of the two-bit and full-map schemes).
    Shared,
    /// Valid, unmodified, and guaranteed to be the only cached copy — the
    /// added local state of section 2.4.3. A write may upgrade this to
    /// [`LocalState::Dirty`] without a directory transaction.
    Exclusive,
    /// Valid and modified: the only up-to-date copy.
    Dirty,
}

impl LocalState {
    /// Whether a processor may write this line without a directory
    /// transaction.
    #[must_use]
    pub fn writable_silently(self) -> bool {
        matches!(self, LocalState::Exclusive | LocalState::Dirty)
    }

    /// Projects onto the paper's two-bit local encoding (valid/modified):
    /// `Exclusive` is just a valid unmodified line as far as those bits go.
    #[must_use]
    pub fn as_line_state(self) -> LineState {
        match self {
            LocalState::Invalid => LineState::Invalid,
            LocalState::Shared | LocalState::Exclusive => LineState::Clean,
            LocalState::Dirty => LineState::Dirty,
        }
    }
}

impl LineMeta for LocalState {
    fn invalid() -> Self {
        LocalState::Invalid
    }

    fn is_valid(self) -> bool {
        !matches!(self, LocalState::Invalid)
    }

    fn is_dirty(self) -> bool {
        matches!(self, LocalState::Dirty)
    }
}

impl fmt::Display for LocalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LocalState::Invalid => "I",
            LocalState::Shared => "S",
            LocalState::Exclusive => "E",
            LocalState::Dirty => "D",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_write_permission() {
        assert!(!LocalState::Invalid.writable_silently());
        assert!(!LocalState::Shared.writable_silently());
        assert!(LocalState::Exclusive.writable_silently());
        assert!(LocalState::Dirty.writable_silently());
    }

    #[test]
    fn projection_to_valid_modified_bits() {
        assert_eq!(LocalState::Invalid.as_line_state(), LineState::Invalid);
        assert_eq!(LocalState::Shared.as_line_state(), LineState::Clean);
        assert_eq!(LocalState::Exclusive.as_line_state(), LineState::Clean);
        assert_eq!(LocalState::Dirty.as_line_state(), LineState::Dirty);
    }

    #[test]
    fn line_meta_impl() {
        assert_eq!(<LocalState as LineMeta>::invalid(), LocalState::Invalid);
        assert!(LineMeta::is_valid(LocalState::Exclusive));
        assert!(!LineMeta::is_dirty(LocalState::Exclusive));
        assert!(LineMeta::is_dirty(LocalState::Dirty));
    }
}
