//! Whole-system message-flow vocabulary.
//!
//! The per-scheme [`TransitionTable`]s describe one role — the memory
//! module — in isolation. The liveness bug class PR 9 hit dynamically
//! (a `PURGE` overtaking a barrier-withheld exclusive grant, landing in
//! a cache state with no rule to service it) lives *between* roles: it
//! needs the cache side's states, the client edge, and the dist layer's
//! ordering machinery (the inv-ack gate, the WtAck hold, txn-id
//! idempotency) in one graph. This module is that graph's vocabulary:
//!
//! * [`FlowRole`] — the three node roles: client, cache controller,
//!   memory module.
//! * [`MsgClass`] — every message class exchanged between roles,
//!   including the dist-layer control messages (`InvAck`, `WtAck`) the
//!   protocol tables never see.
//! * [`FlowRule`] — a guarded rule at a role: *when* `trigger` arrives
//!   in one of the `when` states, emit `emits` and move to a state in
//!   `next`. Memory-role rules are lifted mechanically from a
//!   [`TransitionTable`] by [`lift_memory`]; cache/client rules are
//!   declared by `twobit-dist` (whose node loop they describe) and the
//!   whole system is assembled and analyzed by `twobit-lint`.
//! * [`FlowEmit`] — one emission edge, annotated with its delivery
//!   shape ([`Delivery`]), destination aim ([`DestHint`]), and the
//!   [`OrderGuarantee`]s it rides on.
//!
//! The abstraction is per-block: states describe one block's life at
//! one node, and a "system" is the product of the three roles around
//! one block. That is exactly the granularity of the dist layer's
//! gates and of the paper's section 3.2.5 races.

use crate::transitions::{
    ActionKind, Cond, Delivery, EventKind, Next, OrderGuarantee, TransitionTable,
};
use std::fmt;
use twobit_types::GlobalState;

/// A node role in the whole-system flow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlowRole {
    /// A client issuing references against one cache.
    Client,
    /// A cache controller (the `CacheAgent` plus its dist node wrapper).
    Cache,
    /// A memory-module controller (directory protocol plus its dist
    /// node's gate machinery).
    Memory,
}

impl fmt::Display for FlowRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlowRole::Client => "client",
            FlowRole::Cache => "cache",
            FlowRole::Memory => "memory",
        })
    }
}

/// Every message class that crosses a link between roles, plus the one
/// local stimulus ([`MsgClass::Evict`]) that models capacity pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgClass {
    /// Client → cache: a read or write reference.
    ClientReq,
    /// Cache → client: the reference's completion.
    ClientResp,
    /// Cache → memory: a read-miss request (`REQUEST(read)`).
    ReadReq,
    /// Cache → memory: a write-miss request (`REQUEST(write)`).
    WriteReq,
    /// Cache → memory: an upgrade request (`MREQUEST`).
    UpgradeReq,
    /// Cache → memory: a write-through store (`WRITETHRU`).
    StoreThrough,
    /// Cache → memory: an uncached direct read (`DIRECTREAD`).
    DirectReadReq,
    /// Cache → memory: data supplied for a recall (`PUT`).
    Put,
    /// Cache → memory: a clean-replacement notice.
    EjectClean,
    /// Cache → memory: a dirty replacement's write-back.
    EjectDirty,
    /// Memory → cache: a data grant to the initiator (`GETDATA`).
    Grant,
    /// Memory → cache: an upgrade reply to the initiator (`MGRANTED`,
    /// granted or denied).
    UpgradeAck,
    /// Memory → cache: an invalidation (`INV`/`BROADINV`).
    Inv,
    /// Memory → cache: a data recall (`PURGE`/`BROADQUERY`).
    Recall,
    /// Memory → cache: the dist layer's write-through acknowledgment.
    WtAck,
    /// Cache → memory: the dist layer's invalidation acknowledgment.
    InvAck,
    /// Local stimulus at a cache: capacity pressure forcing a
    /// replacement. Not a network message — it has no arrival
    /// semantics, only opportunistic firing.
    Evict,
}

impl MsgClass {
    /// The role a message of this class is delivered to. [`Evict`]
    /// (local) reports its firing role, the cache.
    ///
    /// [`Evict`]: MsgClass::Evict
    #[must_use]
    pub fn dest(self) -> FlowRole {
        match self {
            MsgClass::ClientReq
            | MsgClass::Grant
            | MsgClass::UpgradeAck
            | MsgClass::Inv
            | MsgClass::Recall
            | MsgClass::WtAck
            | MsgClass::Evict => FlowRole::Cache,
            MsgClass::ClientResp => FlowRole::Client,
            MsgClass::ReadReq
            | MsgClass::WriteReq
            | MsgClass::UpgradeReq
            | MsgClass::StoreThrough
            | MsgClass::DirectReadReq
            | MsgClass::Put
            | MsgClass::EjectClean
            | MsgClass::EjectDirty
            | MsgClass::InvAck => FlowRole::Memory,
        }
    }

    /// `true` for the local [`Evict`](MsgClass::Evict) stimulus, which
    /// never crosses a link.
    #[must_use]
    pub fn is_local(self) -> bool {
        self == MsgClass::Evict
    }
}

impl fmt::Display for MsgClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MsgClass::ClientReq => "client-req",
            MsgClass::ClientResp => "client-resp",
            MsgClass::ReadReq => "read-req",
            MsgClass::WriteReq => "write-req",
            MsgClass::UpgradeReq => "upgrade-req",
            MsgClass::StoreThrough => "store-through",
            MsgClass::DirectReadReq => "direct-read-req",
            MsgClass::Put => "put",
            MsgClass::EjectClean => "eject-clean",
            MsgClass::EjectDirty => "eject-dirty",
            MsgClass::Grant => "grant",
            MsgClass::UpgradeAck => "upgrade-ack",
            MsgClass::Inv => "inv",
            MsgClass::Recall => "recall",
            MsgClass::WtAck => "wt-ack",
            MsgClass::InvAck => "inv-ack",
            MsgClass::Evict => "evict",
        })
    }
}

/// Which node(s) of the destination role an emission aims at. The flow
/// abstraction has one node per role; the hint preserves the identity
/// information the analyses need to decide whether two emissions can
/// reach the *same* concrete node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DestHint {
    /// The cache whose request triggered the rule (a solicited reply).
    Initiator,
    /// Every cache except the initiator (invalidation traffic).
    Others,
    /// The cache the directory believes owns the block (recalls). The
    /// owner is the initiator of an *earlier* transaction, so an
    /// `Owner`-aimed emission can share a concrete destination with an
    /// `Initiator`-aimed one from a preceding rule.
    Owner,
    /// The block's home memory module.
    Home,
    /// The client the cache is serving.
    Issuer,
}

impl DestHint {
    /// Whether emissions with these hints can reach the same concrete
    /// node. `within_rule` restricts the question to two emissions of
    /// one rule firing (where "initiator" and "others" are disjoint by
    /// construction); across rules the initiator of one transaction can
    /// be among the "others" or be the "owner" of the next.
    #[must_use]
    pub fn may_alias(self, other: DestHint, within_rule: bool) -> bool {
        use DestHint::{Home, Initiator, Issuer, Others, Owner};
        match (self, other) {
            (Home, Home) | (Issuer, Issuer) => true,
            (Home | Issuer, _) | (_, Home | Issuer) => false,
            (Initiator, Others) | (Others, Initiator) => !within_rule,
            (Initiator | Others | Owner, _) => true,
        }
    }
}

impl fmt::Display for DestHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DestHint::Initiator => "initiator",
            DestHint::Others => "others",
            DestHint::Owner => "owner",
            DestHint::Home => "home",
            DestHint::Issuer => "issuer",
        })
    }
}

/// One emission edge of a flow rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEmit {
    /// The message class emitted.
    pub msg: MsgClass,
    /// Which node(s) of the destination role it aims at.
    pub hint: DestHint,
    /// Delivery shape, for emissions lifted from table actions that
    /// carry one (`None` for plain unicasts).
    pub delivery: Option<Delivery>,
    /// Ordering guarantees this emission rides on (copied from the
    /// source rule's declarations).
    pub guarantees: Vec<OrderGuarantee>,
}

impl FlowEmit {
    /// A plain unicast emission with no declared guarantees.
    #[must_use]
    pub fn new(msg: MsgClass, hint: DestHint) -> FlowEmit {
        FlowEmit {
            msg,
            hint,
            delivery: None,
            guarantees: Vec::new(),
        }
    }

    /// `true` when the emission is (or may be) a broadcast.
    #[must_use]
    pub fn may_broadcast(&self) -> bool {
        matches!(self.delivery, Some(Delivery::Broadcast | Delivery::Either))
    }
}

/// One protocol state of one role in the flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowState {
    /// The role the state belongs to.
    pub role: FlowRole,
    /// Stable state name, unique within the role.
    pub name: String,
    /// `Some(m)` when the state is *blocked*: the role sits in it until
    /// a message of class `m` arrives.
    pub awaits: Option<MsgClass>,
    /// `true` when commands arriving in this state are deferred (queued
    /// for later processing) rather than dropped — the memory's
    /// per-block busy states and the dist layer's inv-ack gate.
    pub defers: bool,
}

impl FlowState {
    /// A plain, non-blocked state.
    #[must_use]
    pub fn idle(role: FlowRole, name: impl Into<String>) -> FlowState {
        FlowState {
            role,
            name: name.into(),
            awaits: None,
            defers: false,
        }
    }

    /// A blocked state awaiting `m`, deferring other commands.
    #[must_use]
    pub fn blocked(role: FlowRole, name: impl Into<String>, m: MsgClass) -> FlowState {
        FlowState {
            role,
            name: name.into(),
            awaits: Some(m),
            defers: role == FlowRole::Memory,
        }
    }
}

/// One guarded rule at a role of the flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRule {
    /// Stable rule name, unique within the system (lifted memory rules
    /// are prefixed `mem/`, dist-layer rules `cache/`, `client/`,
    /// `gate/`).
    pub name: String,
    /// `file:line` of the declaration this rule was lifted from.
    pub provenance: String,
    /// The role the rule fires at.
    pub role: FlowRole,
    /// The message class (or local stimulus) that triggers it.
    pub trigger: MsgClass,
    /// The state names the rule fires from.
    pub when: Vec<String>,
    /// The emissions it performs.
    pub emits: Vec<FlowEmit>,
    /// Possible successor states (empty = state unchanged).
    pub next: Vec<String>,
}

impl FlowRule {
    /// A new rule with no emissions and an unchanged successor state.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        provenance: impl Into<String>,
        role: FlowRole,
        trigger: MsgClass,
        when: &[&str],
    ) -> FlowRule {
        FlowRule {
            name: name.into(),
            provenance: provenance.into(),
            role,
            trigger,
            when: when.iter().map(|s| (*s).to_string()).collect(),
            emits: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Adds an emission.
    #[must_use]
    pub fn emit(mut self, e: FlowEmit) -> FlowRule {
        self.emits.push(e);
        self
    }

    /// Sets the successor-state set.
    #[must_use]
    pub fn to(mut self, next: &[&str]) -> FlowRule {
        self.next = next.iter().map(|s| (*s).to_string()).collect();
        self
    }

    /// Whether the rule emits a message of class `m`.
    #[must_use]
    pub fn emits_class(&self, m: MsgClass) -> bool {
        self.emits.iter().any(|e| e.msg == m)
    }
}

/// The memory-role blocked state entered by a rule that `.awaits()` a
/// supply after recalling data for a read-class miss.
pub const AWAIT_READ: &str = "awaiting-put(read)";
/// As [`AWAIT_READ`], for a write miss.
pub const AWAIT_WRITE: &str = "awaiting-put(write)";
/// The memory-role overlay state while an inv-ack gate is open.
pub const GATED: &str = "gated";

/// The name a [`GlobalState`] gets as a memory-role flow state.
#[must_use]
pub fn global_state_name(s: GlobalState) -> String {
    s.to_string()
}

/// The flow message class that triggers a table event.
#[must_use]
pub fn event_trigger(e: EventKind) -> MsgClass {
    match e {
        EventKind::ReadMiss => MsgClass::ReadReq,
        EventKind::WriteMiss => MsgClass::WriteReq,
        EventKind::Modify => MsgClass::UpgradeReq,
        EventKind::WriteThrough => MsgClass::StoreThrough,
        EventKind::DirectRead => MsgClass::DirectReadReq,
        EventKind::Supply => MsgClass::Put,
        EventKind::EjectClean => MsgClass::EjectClean,
        EventKind::EjectDirty => MsgClass::EjectDirty,
    }
}

/// The memory-role half of a scheme's flow graph, lifted mechanically
/// from its [`TransitionTable`].
///
/// * Protocol states become memory-role [`FlowState`]s (stateless
///   comparators get the single state `steady`).
/// * Each [`Rule`](crate::transitions::Rule) becomes a [`FlowRule`]
///   triggered by its event's message class, with its actions as
///   emissions: `Grant`/`ModifyGrant` aim at the initiator,
///   `Invalidate` at the other caches, `Recall` at the recorded owner.
/// * A rule that `.awaits()` a supply transitions into a *blocked*
///   state ([`AWAIT_READ`]/[`AWAIT_WRITE`]) instead of its protocol
///   state; the table's `Supply` rules are re-homed to fire from those
///   blocked states (selected by their `WaitWrite` literals), from
///   which their declared `next` states apply.
/// * The rule's declared [`OrderGuarantee`]s are copied onto its
///   non-invalidation emissions — they are the emissions the
///   guarantees *hold back* (the invalidation itself always goes out
///   first).
#[must_use]
pub fn lift_memory(table: &TransitionTable) -> (Vec<FlowState>, Vec<FlowRule>) {
    let state_name = |set: crate::transitions::StateSet| -> Vec<String> {
        if table.tracks_state {
            set.iter().map(global_state_name).collect()
        } else {
            vec!["steady".to_string()]
        }
    };
    let mut states: Vec<FlowState> = if table.tracks_state {
        GlobalState::ALL
            .into_iter()
            .map(|s| FlowState::idle(FlowRole::Memory, global_state_name(s)))
            .collect()
    } else {
        vec![FlowState::idle(FlowRole::Memory, "steady")]
    };
    let mut await_read = false;
    let mut await_write = false;
    for rule in &table.rules {
        if !rule.completes {
            match rule.event {
                EventKind::WriteMiss => await_write = true,
                _ => await_read = true,
            }
        }
    }
    if await_read {
        states.push(FlowState::blocked(
            FlowRole::Memory,
            AWAIT_READ,
            MsgClass::Put,
        ));
    }
    if await_write {
        states.push(FlowState::blocked(
            FlowRole::Memory,
            AWAIT_WRITE,
            MsgClass::Put,
        ));
    }

    let mut rules = Vec::new();
    for rule in &table.rules {
        let mut fr = FlowRule {
            name: format!("mem/{}", rule.name),
            provenance: rule.provenance(),
            role: FlowRole::Memory,
            trigger: event_trigger(rule.event),
            when: Vec::new(),
            emits: Vec::new(),
            next: Vec::new(),
        };
        // Source states: supply rules are re-homed onto the blocked
        // await states their `WaitWrite` literal selects.
        if rule.event == EventKind::Supply {
            let wait_write = rule
                .requires
                .iter()
                .find(|(c, _)| *c == Cond::WaitWrite)
                .map(|&(_, v)| v);
            match wait_write {
                Some(true) => fr.when.push(AWAIT_WRITE.to_string()),
                Some(false) => fr.when.push(AWAIT_READ.to_string()),
                None => {
                    if await_read {
                        fr.when.push(AWAIT_READ.to_string());
                    }
                    if await_write {
                        fr.when.push(AWAIT_WRITE.to_string());
                    }
                }
            }
        } else {
            fr.when = state_name(rule.when);
        }
        // Successor states: an awaiting rule parks in its blocked
        // state; otherwise the declared `next` set (empty = same).
        if rule.completes {
            if let Next::In(set) = rule.next {
                fr.next = state_name(set);
            }
        } else {
            fr.next = vec![if rule.event == EventKind::WriteMiss {
                AWAIT_WRITE.to_string()
            } else {
                AWAIT_READ.to_string()
            }];
        }
        for action in &rule.actions {
            let emit = match *action {
                ActionKind::Grant { .. } => Some(FlowEmit {
                    msg: MsgClass::Grant,
                    hint: DestHint::Initiator,
                    delivery: None,
                    guarantees: rule.guarantees.clone(),
                }),
                ActionKind::ModifyGrant { .. } => Some(FlowEmit {
                    msg: MsgClass::UpgradeAck,
                    hint: DestHint::Initiator,
                    delivery: None,
                    guarantees: rule.guarantees.clone(),
                }),
                ActionKind::Invalidate { delivery } => Some(FlowEmit {
                    msg: MsgClass::Inv,
                    hint: DestHint::Others,
                    delivery: Some(delivery),
                    guarantees: Vec::new(),
                }),
                ActionKind::Recall { delivery } => Some(FlowEmit {
                    msg: MsgClass::Recall,
                    hint: DestHint::Owner,
                    delivery: Some(delivery),
                    guarantees: rule.guarantees.clone(),
                }),
                ActionKind::WriteMemory => None,
            };
            if let Some(e) = emit {
                fr.emits.push(e);
            }
        }
        rules.push(fr);
    }
    (states, rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transitions::shipped_tables;

    #[test]
    fn lift_two_bit_has_await_states_and_rehomed_supplies() {
        let (states, rules) = lift_memory(crate::two_bit::table());
        assert!(states.iter().any(|s| s.name == AWAIT_READ && s.defers));
        assert!(states.iter().any(|s| s.name == AWAIT_WRITE));
        let supply_write = rules.iter().find(|r| r.name == "mem/supply-write").unwrap();
        assert_eq!(supply_write.when, vec![AWAIT_WRITE.to_string()]);
        assert!(supply_write.emits_class(MsgClass::Grant));
        let recall = rules
            .iter()
            .find(|r| r.name == "mem/read-miss-modified")
            .unwrap();
        assert_eq!(recall.next, vec![AWAIT_READ.to_string()]);
        assert_eq!(recall.emits[0].hint, DestHint::Owner);
    }

    #[test]
    fn lift_stateless_tables_use_one_state() {
        let (states, rules) = lift_memory(crate::classical::classical_table());
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].name, "steady");
        assert!(rules.iter().all(|r| r.when == vec!["steady".to_string()]));
    }

    #[test]
    fn guarantees_ride_on_the_held_completion_not_the_inv() {
        let (_, rules) = lift_memory(crate::two_bit::table());
        let wms = rules
            .iter()
            .find(|r| r.name == "mem/write-miss-shared")
            .unwrap();
        let inv = wms.emits.iter().find(|e| e.msg == MsgClass::Inv).unwrap();
        let grant = wms.emits.iter().find(|e| e.msg == MsgClass::Grant).unwrap();
        assert!(inv.guarantees.is_empty());
        assert_eq!(grant.guarantees, vec![OrderGuarantee::AckBarrier]);
    }

    #[test]
    fn every_shipped_table_lifts() {
        for table in shipped_tables() {
            let (states, rules) = lift_memory(table);
            assert!(!states.is_empty(), "{}", table.scheme);
            assert_eq!(rules.len(), table.rules.len(), "{}", table.scheme);
        }
    }

    #[test]
    fn dest_hint_aliasing_matrix() {
        use DestHint as D;
        // Within one rule firing, the initiator is excluded from the
        // invalidation set.
        assert!(!D::Initiator.may_alias(D::Others, true));
        // Across rules, last transaction's initiator is this one's owner
        // or bystander.
        assert!(D::Initiator.may_alias(D::Others, false));
        assert!(D::Initiator.may_alias(D::Owner, false));
        assert!(D::Owner.may_alias(D::Others, false));
        assert!(!D::Home.may_alias(D::Initiator, false));
        assert!(D::Home.may_alias(D::Home, false));
    }
}
