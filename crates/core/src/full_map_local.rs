//! The full map with added local state (section 2.4.3, Yen–Fu): the
//! directory still keeps an exact presence vector, but a block cached by
//! exactly one cache in clean state may be held *Exclusive* there, letting
//! that cache upgrade to Dirty without a directory transaction.
//!
//! The price — the "additional synchronization problems (not fully
//! resolved in [10])" the paper mentions — is that the directory can no
//! longer tell whether an exclusively held block is clean or silently
//! modified. We resolve it the way later directory protocols did: the
//! directory tracks `ExclusiveOrModified(i)` and *always* recalls
//! (`PURGE`s) cache `i` before serving another requester, accepting the
//! data whether it turns out clean or dirty.

use crate::directory::{
    grant_forwarded, grant_from_memory, mgranted, DirSend, DirStep, DirectoryProtocol, OpenKind,
    SendCost,
};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::transitions::{
    ActionKind, Cond, Delivery, EventKind, EventSpec, OrderGuarantee, StateSet, TransitionTable,
};
use crate::two_bit::Waiting;
use std::collections::HashMap;
use std::sync::OnceLock;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version,
    WritebackKind,
};

/// Directory knowledge about one block.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Entry {
    /// Cached read-only by the recorded owners.
    Shared(OwnerSet),
    /// Held by exactly one cache which may have silently modified it.
    ExclusiveOrModified(CacheId),
}

/// The Yen–Fu full-map-with-local-state directory of one memory module.
#[derive(Debug, Clone)]
pub struct FullMapLocalDirectory {
    width: usize,
    entries: HashMap<BlockAddr, Entry>,
    waiting: HashMap<BlockAddr, Waiting>,
}

impl FullMapLocalDirectory {
    /// An empty directory with a presence vector of `width` caches.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "presence vector needs at least one bit");
        FullMapLocalDirectory {
            width,
            entries: HashMap::new(),
            waiting: HashMap::new(),
        }
    }

    fn inv(a: BlockAddr, to: CacheId) -> DirSend {
        DirSend::Unicast {
            to,
            cmd: MemoryToCache::Inv { a, to },
            cost: SendCost::Command,
        }
    }

    fn purge(a: BlockAddr, to: CacheId, rw: AccessKind) -> DirSend {
        DirSend::Unicast {
            to,
            cmd: MemoryToCache::Purge { a, to, rw },
            cost: SendCost::Command,
        }
    }

    /// Rebuilds a directory from a [`DirectoryProtocol::save_state`]
    /// checkpoint document.
    pub(crate) fn restore_json(j: &Json) -> Result<Self, String> {
        let width = j.req_u64("width")? as usize;
        if width == 0 {
            return Err("zero presence-vector width in checkpoint".into());
        }
        let mut d = FullMapLocalDirectory::new(width);
        for e in crate::snapshot::req_array(j, "entries")? {
            let a = crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?;
            let entry = if let Some(o) = e.get("o") {
                let owners = crate::snapshot::owner_set_from(o)?;
                if owners.capacity() != width {
                    return Err("presence vector width mismatch".into());
                }
                Entry::Shared(owners)
            } else {
                Entry::ExclusiveOrModified(crate::snapshot::cache_id_from(crate::snapshot::req(
                    e, "x",
                )?)?)
            };
            d.entries.insert(a, entry);
        }
        d.waiting = crate::snapshot::waiting_map_from(crate::snapshot::req(j, "waiting")?)?;
        Ok(d)
    }
}

impl DirectoryProtocol for FullMapLocalDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(4); // scheme discriminant
                         // `Shared(∅)` is *not* equivalent to an absent entry here (an
                         // absent entry grants Exclusive to a sole reader, an empty shared
                         // set does not), so entries are encoded exactly as stored.
        let mut entries: Vec<(u64, &Entry)> =
            self.entries.iter().map(|(a, e)| (a.number(), e)).collect();
        entries.sort_unstable_by_key(|&(a, _)| a);
        fp.write_usize(entries.len());
        for (a, e) in entries {
            fp.write_u64(a);
            match e {
                Entry::Shared(owners) => {
                    fp.write_tag(0);
                    fp.write_usize(owners.len());
                    for k in owners.iter() {
                        fp.write_usize(k.index());
                    }
                }
                Entry::ExclusiveOrModified(k) => {
                    fp.write_tag(1);
                    fp.write_usize(k.index());
                }
            }
        }
        let mut waiting: Vec<(u64, usize, bool)> = self
            .waiting
            .iter()
            .map(|(a, w)| (a.number(), w.k.index(), w.write))
            .collect();
        waiting.sort_unstable();
        fp.write_usize(waiting.len());
        for (a, k, write) in waiting {
            fp.write_u64(a);
            fp.write_usize(k);
            fp.write_bool(write);
        }
    }

    fn name(&self) -> &'static str {
        "full-map+local"
    }

    fn save_state(&self) -> Json {
        // A shared entry carries `"o"` (the owner set); an
        // exclusive/modified entry carries `"x"` (the sole holder). The
        // decoder keys on which field is present.
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(a, _)| a.number());
        obj([
            ("width", num_u64(self.width as u64)),
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(a, e)| {
                            let a = ("a", crate::snapshot::block_json(*a));
                            match e {
                                Entry::Shared(owners) => {
                                    obj([a, ("o", crate::snapshot::owner_set_json(owners))])
                                }
                                Entry::ExclusiveOrModified(k) => {
                                    obj([a, ("x", crate::snapshot::cache_id_json(*k))])
                                }
                            }
                        })
                        .collect(),
                ),
            ),
            ("waiting", crate::snapshot::waiting_map_json(&self.waiting)),
        ])
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        debug_assert!(!self.waiting.contains_key(&a), "open on a waiting block");
        match kind {
            OpenKind::ReadMiss => match self.entries.get(&a) {
                None => {
                    // Sole reader: grant Exclusive — the whole point of the
                    // added local state.
                    self.entries.insert(a, Entry::ExclusiveOrModified(k));
                    DirStep::done().with_send(grant_from_memory(k, a, mem, true))
                }
                Some(Entry::Shared(_)) => {
                    if let Some(Entry::Shared(owners)) = self.entries.get_mut(&a) {
                        owners.insert(k);
                    }
                    DirStep::done().with_send(grant_from_memory(k, a, mem, false))
                }
                Some(&Entry::ExclusiveOrModified(i)) => {
                    self.waiting.insert(a, Waiting { k, write: false });
                    DirStep::awaiting(vec![Self::purge(a, i, AccessKind::Read)])
                }
            },
            OpenKind::WriteMiss => match self.entries.get(&a) {
                None => {
                    self.entries.insert(a, Entry::ExclusiveOrModified(k));
                    DirStep::done().with_send(grant_from_memory(k, a, mem, true))
                }
                Some(Entry::Shared(owners)) => {
                    let targets: Vec<CacheId> = owners.iter().filter(|&i| i != k).collect();
                    let mut step = DirStep::done();
                    for i in targets {
                        step = step.with_send(Self::inv(a, i));
                    }
                    self.entries.insert(a, Entry::ExclusiveOrModified(k));
                    step.with_send(grant_from_memory(k, a, mem, true))
                }
                Some(&Entry::ExclusiveOrModified(i)) => {
                    self.waiting.insert(a, Waiting { k, write: true });
                    DirStep::awaiting(vec![Self::purge(a, i, AccessKind::Write)])
                }
            },
            OpenKind::Modify(_) => match self.entries.get(&a) {
                Some(Entry::Shared(owners)) if owners.contains(k) => {
                    let targets: Vec<CacheId> = owners.iter().filter(|&i| i != k).collect();
                    let mut step = DirStep::done();
                    for i in targets {
                        step = step.with_send(Self::inv(a, i));
                    }
                    self.entries.insert(a, Entry::ExclusiveOrModified(k));
                    step.with_send(mgranted(k, a, true))
                }
                // Exclusive holders never send MREQUEST; anything else is
                // a stale request whose copy was invalidated in flight.
                None | Some(Entry::Shared(_) | Entry::ExclusiveOrModified(_)) => {
                    DirStep::done().with_send(mgranted(k, a, false))
                }
            },
            OpenKind::WriteThrough(_) | OpenKind::DirectRead => {
                panic!("full-map+local directory serves only write-back caches (got {kind:?})")
            }
        }
    }

    fn supply(
        &mut self,
        a: BlockAddr,
        from: CacheId,
        version: Version,
        retains: bool,
        _mem: &MemoryImage,
    ) -> DirStep {
        let waiting = self
            .waiting
            .remove(&a)
            .expect("supply without a waiting transaction");
        if waiting.write {
            self.entries
                .insert(a, Entry::ExclusiveOrModified(waiting.k));
        } else {
            let mut owners = OwnerSet::new(self.width);
            if retains {
                owners.insert(from);
            }
            owners.insert(waiting.k);
            // If the old owner is gone, the requester is a sole clean
            // holder — but it was granted a *shared* fill, so record
            // Shared rather than Exclusive (the grant already went out).
            self.entries.insert(a, Entry::Shared(owners));
        }
        DirStep::done()
            .with_memory_write(a, version)
            .with_send(grant_forwarded(waiting.k, a, version, waiting.write))
    }

    fn eject_satisfies_wait(&self, a: BlockAddr, k: CacheId, _wb: WritebackKind) -> bool {
        // Both clean and dirty ejects from the recalled exclusive holder
        // satisfy the recall: an Exclusive line may be replaced while still
        // clean, in which case memory already has the data.
        self.waiting.contains_key(&a)
            && matches!(self.entries.get(&a), Some(&Entry::ExclusiveOrModified(i)) if i == k)
    }

    fn eject_clean(&mut self, k: CacheId, a: BlockAddr) {
        match self.entries.get_mut(&a) {
            Some(Entry::Shared(owners)) => {
                owners.remove(k);
                if owners.is_empty() {
                    self.entries.remove(&a);
                }
            }
            Some(&mut Entry::ExclusiveOrModified(i)) if i == k => {
                self.entries.remove(&a);
            }
            // A clean eject from a non-holder is stale information.
            None | Some(&mut Entry::ExclusiveOrModified(_)) => {}
        }
    }

    fn eject_dirty(&mut self, k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        if matches!(self.entries.get(&a), Some(&Entry::ExclusiveOrModified(i)) if i == k) {
            self.entries.remove(&a);
        }
        DirStep::done().with_memory_write(a, version)
    }

    fn awaiting(&self, a: BlockAddr) -> bool {
        self.waiting.contains_key(&a)
    }

    fn global_state(&self, a: BlockAddr) -> GlobalState {
        match self.entries.get(&a) {
            None => GlobalState::Absent,
            Some(Entry::Shared(owners)) if owners.len() == 1 => GlobalState::Present1,
            Some(Entry::Shared(_)) => GlobalState::PresentStar,
            // Conservatively "modified": the holder may have dirtied it.
            Some(Entry::ExclusiveOrModified(_)) => GlobalState::PresentM,
        }
    }

    fn holders(&self, a: BlockAddr) -> Option<OwnerSet> {
        Some(match self.entries.get(&a) {
            None => OwnerSet::new(self.width),
            Some(Entry::Shared(owners)) => owners.clone(),
            Some(&Entry::ExclusiveOrModified(i)) => OwnerSet::singleton(self.width, i),
        })
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(table())
    }

    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        let recorded = self.holders(a).expect("always has a holder view");
        let mut actual = OwnerSet::new(self.width);
        for id in clean.iter().chain(dirty.iter()) {
            actual.insert(id);
        }
        if recorded != actual {
            return Err(format!(
                "presence vector {recorded} but actual holders {actual}"
            ));
        }
        match self.entries.get(&a) {
            Some(Entry::Shared(_)) if !dirty.is_empty() => {
                Err("directory says Shared but a dirty copy exists".to_string())
            }
            Some(&Entry::ExclusiveOrModified(i)) => {
                // The holder may be clean (Exclusive) or dirty (Modified);
                // either way it must be exactly cache i, alone.
                let sole_clean = clean.sole_member() == Some(i) && dirty.is_empty();
                let sole_dirty = dirty.sole_member() == Some(i) && clean.is_empty();
                if sole_clean || sole_dirty {
                    Ok(())
                } else {
                    Err(format!("exclusive-or-modified at {i} but holders are clean {clean} / dirty {dirty}"))
                }
            }
            None | Some(Entry::Shared(_)) => {
                if dirty.is_empty() {
                    Ok(())
                } else {
                    Err("dirty copy exists outside an exclusive entry".to_string())
                }
            }
        }
    }
}

/// The Yen–Fu table. It differs from the plain full map in exactly one
/// rule: a read miss on an absent block grants an *exclusive* fill
/// (`read-miss-absent` lands in `PresentM`, the conservative
/// maybe-modified rendering of `ExclusiveOrModified`), which is the
/// scheme's entire point — the sole reader can later upgrade without a
/// directory transaction. Everything reaching other caches stays
/// [`Delivery::Targeted`].
pub(crate) fn table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        use GlobalState as G;
        let targeted = Delivery::Targeted;
        TransitionTable {
            scheme: "full-map+local",
            tracks_state: true,
            events: vec![
                EventSpec::new(E::ReadMiss, StateSet::ALL, &[]),
                EventSpec::new(E::WriteMiss, StateSet::ALL, &[]),
                EventSpec::new(E::Modify, StateSet::ALL, &[Cond::Fresh]),
                EventSpec::new(
                    E::Supply,
                    StateSet::only(G::PresentM),
                    &[Cond::WaitWrite, Cond::Retains],
                ),
                EventSpec::new(E::EjectClean, StateSet::ALL, &[]),
                EventSpec::new(E::EjectDirty, StateSet::only(G::PresentM), &[]),
            ],
            rules: vec![
                crate::rule!("read-miss-absent", E::ReadMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!("read-miss-shared", E::ReadMiss, StateSet::SHARED)
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::SHARED),
                crate::rule!(
                    "read-miss-exclusive",
                    E::ReadMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: targeted })
                .awaits(),
                crate::rule!("write-miss-absent", E::WriteMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!("write-miss-shared", E::WriteMiss, StateSet::SHARED)
                    .action(A::Invalidate { delivery: targeted })
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "write-miss-exclusive",
                    E::WriteMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: targeted })
                .awaits(),
                crate::rule!("modify-fresh", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, true)
                    .action(A::Invalidate { delivery: targeted })
                    .action(A::ModifyGrant { granted: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "modify-stale-state",
                    E::Modify,
                    StateSet::of(&[G::Absent, G::PresentM])
                )
                .action(A::ModifyGrant { granted: false }),
                crate::rule!("modify-stale-copy", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, false)
                    .action(A::ModifyGrant { granted: false }),
                crate::rule!("supply-write", E::Supply, StateSet::only(G::PresentM))
                    .requires(Cond::WaitWrite, true)
                    .action(A::WriteMemory)
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "supply-read-retained",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, true)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "supply-read-departed",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, false)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::Present1)),
                crate::rule!(
                    "eject-clean-absent",
                    E::EjectClean,
                    StateSet::only(G::Absent)
                ),
                crate::rule!(
                    "eject-clean-present1",
                    E::EjectClean,
                    StateSet::only(G::Present1)
                )
                .to(StateSet::of(&[G::Absent, G::Present1])),
                crate::rule!(
                    "eject-clean-pstar",
                    E::EjectClean,
                    StateSet::only(G::PresentStar)
                )
                .to(StateSet::SHARED),
                crate::rule!(
                    "eject-clean-exclusive",
                    E::EjectClean,
                    StateSet::only(G::PresentM)
                )
                .to(StateSet::of(&[G::Absent, G::PresentM])),
                crate::rule!("eject-dirty", E::EjectDirty, StateSet::only(G::PresentM))
                    .action(A::WriteMemory)
                    .to(StateSet::only(G::Absent)),
            ],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    #[test]
    fn first_read_grants_exclusive() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(1);
        let s = d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::GetData { exclusive, .. },
                ..
            } => {
                assert!(*exclusive, "sole reader gets an exclusive fill");
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert_eq!(
            d.global_state(a),
            GlobalState::PresentM,
            "conservatively maybe-modified"
        );
    }

    #[test]
    fn second_reader_triggers_recall_and_sharing() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(2);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        let s = d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert!(
            !s.completes,
            "must recall the exclusive holder — it may be dirty"
        );
        match &s.sends[0] {
            DirSend::Unicast {
                to,
                cmd: MemoryToCache::Purge { rw, .. },
                ..
            } => {
                assert_eq!(*to, cid(0));
                assert_eq!(*rw, AccessKind::Read);
            }
            other => panic!("expected PURGE, got {other:?}"),
        }
        let s = d.supply(a, cid(0), Version::new(3), true, &mem);
        assert!(s.completes);
        let holders = d.holders(a).unwrap();
        assert!(holders.contains(cid(0)) && holders.contains(cid(1)));
        assert_eq!(d.global_state(a), GlobalState::PresentStar);
    }

    #[test]
    fn modify_from_shared_holder_invalidates_others() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(3);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        d.supply(a, cid(0), Version::initial(), true, &mem);
        let s = d.open(cid(1), a, OpenKind::Modify(mem.read(a)), &mem);
        let invs: Vec<CacheId> = s
            .sends
            .iter()
            .filter_map(|snd| match snd {
                DirSend::Unicast {
                    cmd: MemoryToCache::Inv { to, .. },
                    ..
                } => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(invs, vec![cid(0)]);
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn clean_eject_of_exclusive_clears_entry() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(4);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.eject_clean(cid(0), a);
        assert_eq!(d.global_state(a), GlobalState::Absent);
    }

    #[test]
    fn clean_eject_from_recalled_holder_satisfies_wait() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(5);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem); // exclusive at C0
        d.open(cid(1), a, OpenKind::ReadMiss, &mem); // recall in flight
        assert!(d.eject_satisfies_wait(a, cid(0), WritebackKind::Clean));
        assert!(!d.eject_satisfies_wait(a, cid(1), WritebackKind::Clean));
        // The racing clean eject supplies memory's (current) data.
        let s = d.supply(a, cid(0), mem.read(a), false, &mem);
        assert!(s.completes);
        assert_eq!(d.global_state(a), GlobalState::Present1);
    }

    #[test]
    fn write_miss_on_exclusive_recalls_with_write_intent() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(6);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        let s = d.open(cid(1), a, OpenKind::WriteMiss, &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::Purge { rw, .. },
                ..
            } => {
                assert_eq!(*rw, AccessKind::Write);
            }
            other => panic!("expected PURGE(write), got {other:?}"),
        }
        let s = d.supply(a, cid(0), Version::new(7), false, &mem);
        assert_eq!(s.write_memory, Some((a, Version::new(7))));
        assert_eq!(d.holders(a).unwrap().sole_member(), Some(cid(1)));
    }

    #[test]
    fn stale_modify_denied() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let s = d.open(cid(2), blk(7), OpenKind::Modify(mem.read(blk(7))), &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::MGranted { granted, .. },
                ..
            } => {
                assert!(!granted);
            }
            other => panic!("expected denial, got {other:?}"),
        }
    }

    #[test]
    fn consistency_accepts_silently_dirtied_exclusive() {
        let mut d = FullMapLocalDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(8);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem); // ExclusiveOrModified(C0)
        let none = OwnerSet::new(4);
        let c0 = OwnerSet::singleton(4, cid(0));
        // Clean at C0: fine. Dirty at C0 (silent upgrade): also fine.
        assert!(d.check_consistency(a, &c0, &none).is_ok());
        assert!(d.check_consistency(a, &none, &c0).is_ok());
        // Dirty at someone else: violation.
        let c1 = OwnerSet::singleton(4, cid(1));
        assert!(d.check_consistency(a, &none, &c1).is_err());
    }
}
