//! The translation-buffer enhancement of section 4.4: a bounded
//! owner-identity cache in front of the two-bit map.
//!
//! "A second and more promising approach involves adding to each memory
//! controller a translation buffer or cache memory in which to store the
//! identities of caches which own copies of blocks from that module. In
//! those cases where a broadcast is needed in the unmodified two-bit
//! scheme, the controller would first determine if the identity of the
//! owner (or owners) is present in the translation buffer. If so,
//! selective message handling can be performed just as with the n+1 bit
//! approach; if not, a broadcast must be used."
//!
//! # Exactness discipline
//!
//! A buffered owner set is only usable if it is *exact*: a stale subset
//! would let a copy survive an invalidation. Entries are therefore created
//! or overwritten **only at moments when the true holder set is fully
//! known** — a grant out of `Absent` (holders = {k}), the completion of an
//! invalidation sweep (holders = {k}), a `Present1` upgrade (sole holder =
//! requester), or a query resolution (holders = {owner?, requester}) — and
//! are *extended* only when an entry already exists. A read-miss grant
//! under `Present1`/`Present*` with no buffered entry leaves the block
//! untracked (the pre-existing holders are unknown), and capacity eviction
//! simply forgets a block, degrading it to broadcast service. Ejects
//! remove the ejector, keeping entries exact.

use crate::directory::{DirSend, DirStep, DirectoryProtocol, OpenKind, SendCost};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::transitions::{
    ActionKind, Cond, Delivery, EventKind, EventSpec, OrderGuarantee, StateSet, TransitionTable,
};
use crate::two_bit::TwoBitDirectory;
use std::collections::HashMap;
use std::sync::OnceLock;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version, WritebackKind,
};

/// A bounded LRU buffer of exact owner sets.
#[derive(Debug, Clone)]
pub struct TranslationBuffer {
    entries: HashMap<BlockAddr, (OwnerSet, u64)>,
    capacity: usize,
    width: usize,
    clock: u64,
}

impl TranslationBuffer {
    /// A buffer of `capacity` block entries for a system of `width` caches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `width` is zero.
    #[must_use]
    pub fn new(capacity: usize, width: usize) -> Self {
        assert!(capacity > 0, "a zero-entry buffer is plain two-bit");
        assert!(width > 0, "owner sets need at least one cache");
        TranslationBuffer {
            entries: HashMap::new(),
            capacity,
            width,
            clock: 0,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads `a`'s entry without refreshing its LRU position.
    #[must_use]
    pub fn peek(&self, a: BlockAddr) -> Option<&OwnerSet> {
        self.entries.get(&a).map(|(owners, _)| owners)
    }

    /// Looks up the exact owner set of `a`, refreshing its LRU position.
    pub fn lookup(&mut self, a: BlockAddr) -> Option<OwnerSet> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&a).map(|(owners, stamp)| {
            *stamp = clock;
            owners.clone()
        })
    }

    /// Records an exactly-known owner set for `a`, evicting the LRU entry
    /// if at capacity.
    pub fn record(&mut self, a: BlockAddr, owners: OwnerSet) {
        self.clock += 1;
        if !self.entries.contains_key(&a) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self
                .entries
                .iter()
                .min_by_key(|(addr, (_, stamp))| (*stamp, addr.number()))
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(a, (owners, self.clock));
    }

    /// Adds `k` to `a`'s entry if (and only if) one exists — extending
    /// exact knowledge, never inventing it.
    pub fn extend_if_tracked(&mut self, a: BlockAddr, k: CacheId) {
        if let Some((owners, _)) = self.entries.get_mut(&a) {
            owners.insert(k);
        }
    }

    /// Removes `k` from `a`'s entry if one exists.
    pub fn remove_owner(&mut self, a: BlockAddr, k: CacheId) {
        if let Some((owners, _)) = self.entries.get_mut(&a) {
            owners.remove(k);
        }
    }

    fn exact_singleton(&self, k: CacheId) -> OwnerSet {
        OwnerSet::singleton(self.width, k)
    }
}

/// The two-bit directory augmented with a translation buffer.
///
/// Delegates all global-state bookkeeping to an inner [`TwoBitDirectory`]
/// (the 2-bit map is unchanged; the buffer is a pure accelerator) and
/// rewrites would-be broadcasts into targeted sends on buffer hits.
#[derive(Debug, Clone)]
pub struct TwoBitTlbDirectory {
    inner: TwoBitDirectory,
    tlb: TranslationBuffer,
    hits: u64,
    misses: u64,
}

impl TwoBitTlbDirectory {
    /// A two-bit directory with a `capacity`-entry translation buffer for
    /// a system of `width` caches.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `width` is zero.
    #[must_use]
    pub fn new(capacity: usize, width: usize) -> Self {
        TwoBitTlbDirectory {
            inner: TwoBitDirectory::new(),
            tlb: TranslationBuffer::new(capacity, width),
            hits: 0,
            misses: 0,
        }
    }

    /// Translation-buffer hits so far (broadcasts avoided).
    #[must_use]
    pub fn tlb_hits(&self) -> u64 {
        self.hits
    }

    /// Translation-buffer misses so far (broadcasts forced).
    #[must_use]
    pub fn tlb_misses(&self) -> u64 {
        self.misses
    }

    /// Rebuilds a directory+buffer from a
    /// [`DirectoryProtocol::save_state`] checkpoint document.
    pub(crate) fn restore_json(j: &Json) -> Result<Self, String> {
        let capacity = j.req_u64("capacity")? as usize;
        let width = j.req_u64("width")? as usize;
        if capacity == 0 || width == 0 {
            return Err("zero TLB capacity or width in checkpoint".into());
        }
        let mut d = TwoBitTlbDirectory::new(capacity, width);
        d.inner = TwoBitDirectory::restore_json(crate::snapshot::req(j, "inner")?)?;
        d.hits = j.req_u64("hits")?;
        d.misses = j.req_u64("misses")?;
        d.tlb.clock = j.req_u64("clock")?;
        for e in crate::snapshot::req_array(j, "entries")? {
            if d.tlb.entries.len() >= capacity {
                return Err("TLB checkpoint exceeds its own capacity".into());
            }
            let owners = crate::snapshot::owner_set_from(crate::snapshot::req(e, "o")?)?;
            if owners.capacity() != width {
                return Err("TLB owner set width mismatch".into());
            }
            d.tlb.entries.insert(
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
                (owners, e.req_u64("stamp")?),
            );
        }
        Ok(d)
    }

    /// Rewrites each broadcast in `step` into targeted commands when the
    /// buffer knows the exact owners; counts hits/misses per broadcast.
    fn rewrite_broadcasts(&mut self, a: BlockAddr, step: DirStep) -> DirStep {
        let mut out = DirStep {
            sends: Vec::new(),
            ..step
        };
        for send in step.sends {
            match send {
                DirSend::Broadcast { cmd, exclude, cost } => match self.tlb.lookup(a) {
                    Some(owners) => {
                        self.hits += 1;
                        out.sends
                            .extend(Self::targeted(cmd, &owners, exclude, cost));
                    }
                    None => {
                        self.misses += 1;
                        out.sends.push(DirSend::Broadcast { cmd, exclude, cost });
                    }
                },
                unicast => out.sends.push(unicast),
            }
        }
        out
    }

    /// The targeted equivalents of a broadcast, given exact owners.
    fn targeted(
        cmd: MemoryToCache,
        owners: &OwnerSet,
        exclude: CacheId,
        cost: SendCost,
    ) -> Vec<DirSend> {
        owners
            .iter()
            .filter(|&i| i != exclude)
            .map(|to| {
                let cmd = match cmd {
                    MemoryToCache::BroadInv { a, .. } => MemoryToCache::Inv { a, to },
                    MemoryToCache::BroadQuery { a, rw } => MemoryToCache::Purge { a, to, rw },
                    other => other,
                };
                DirSend::Unicast { to, cmd, cost }
            })
            .collect()
    }

    /// Updates the buffer after a completed `open`, at the exact-knowledge
    /// points described in the module docs.
    fn update_after_open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, granted: bool) {
        match kind {
            OpenKind::ReadMiss => match self.inner.global_state(a) {
                // Grant out of Absent set the state to Present1: sole
                // holder is the requester — exact.
                GlobalState::Present1 => self.tlb.record(a, self.tlb.exact_singleton(k)),
                // Joining existing readers: extend only if tracked.
                GlobalState::PresentStar => self.tlb.extend_if_tracked(a, k),
                // A *completed* read miss always lands in Present1 or
                // Present*; these arms are unreachable but spelled out
                // (no wildcards on protocol state enums).
                GlobalState::Absent | GlobalState::PresentM => {}
            },
            OpenKind::WriteMiss => {
                // A completed write miss ends with holders = {k}, whether
                // the path was Absent or an invalidation sweep.
                if self.inner.global_state(a) == GlobalState::PresentM {
                    self.tlb.record(a, self.tlb.exact_singleton(k));
                }
            }
            OpenKind::Modify(_) => {
                if granted {
                    self.tlb.record(a, self.tlb.exact_singleton(k));
                }
            }
            OpenKind::WriteThrough(_) | OpenKind::DirectRead => {}
        }
    }
}

impl DirectoryProtocol for TwoBitTlbDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(2); // scheme discriminant
        self.inner.fingerprint(fp);
        // TLB entries sorted by block, with the absolute LRU stamps
        // reduced to ranks: victim selection is `min (stamp, block)` and
        // fresh stamps always exceed existing ones, so only the stamp
        // *order* is future-relevant. The clock and the hit/miss tallies
        // are pure observability and excluded.
        let mut entries: Vec<(u64, u64, &OwnerSet)> = self
            .tlb
            .entries
            .iter()
            .map(|(a, (owners, stamp))| (*stamp, a.number(), owners))
            .collect();
        entries.sort_unstable_by_key(|&(stamp, a, _)| (stamp, a));
        let ranks: Vec<(u64, u64, &OwnerSet)> = entries
            .into_iter()
            .enumerate()
            .map(|(rank, (_, a, owners))| (a, rank as u64, owners))
            .collect();
        let mut by_block = ranks;
        by_block.sort_unstable_by_key(|&(a, _, _)| a);
        fp.write_usize(by_block.len());
        for (a, rank, owners) in by_block {
            fp.write_u64(a);
            fp.write_u64(rank);
            fp.write_usize(owners.len());
            for k in owners.iter() {
                fp.write_usize(k.index());
            }
        }
    }

    fn name(&self) -> &'static str {
        "two-bit+tlb"
    }

    fn save_state(&self) -> Json {
        // The `entries` HashMap has no stable order — sort by block
        // number so a given state always writes one canonical document.
        let mut entries: Vec<_> = self.tlb.entries.iter().collect();
        entries.sort_by_key(|(a, _)| a.number());
        obj([
            ("capacity", num_u64(self.tlb.capacity as u64)),
            ("width", num_u64(self.tlb.width as u64)),
            ("clock", num_u64(self.tlb.clock)),
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(a, (owners, stamp))| {
                            obj([
                                ("a", crate::snapshot::block_json(*a)),
                                ("o", crate::snapshot::owner_set_json(owners)),
                                ("stamp", num_u64(*stamp)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("inner", self.inner.save_state()),
            ("hits", num_u64(self.hits)),
            ("misses", num_u64(self.misses)),
        ])
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        let step = self.inner.open(k, a, kind, mem);
        let completes = step.completes;
        let granted = step.sends.iter().any(|s| {
            matches!(
                s,
                DirSend::Unicast {
                    cmd: MemoryToCache::MGranted { granted: true, .. },
                    ..
                } | DirSend::Unicast {
                    cmd: MemoryToCache::GetData { .. },
                    ..
                }
            )
        });
        let step = self.rewrite_broadcasts(a, step);
        if completes {
            self.update_after_open(k, a, kind, granted);
        }
        step
    }

    fn supply(
        &mut self,
        a: BlockAddr,
        from: CacheId,
        version: Version,
        retains: bool,
        mem: &MemoryImage,
    ) -> DirStep {
        let step = self.inner.supply(a, from, version, retains, mem);
        // Query resolved: the holder set is fully known again.
        let requester = step.sends.iter().find_map(|s| match s {
            DirSend::Unicast {
                cmd: MemoryToCache::GetData { k, .. },
                ..
            } => Some(*k),
            _ => None,
        });
        if let Some(k) = requester {
            let mut owners = self.tlb.exact_singleton(k);
            if retains && self.inner.global_state(a) == GlobalState::PresentStar {
                owners.insert(from);
            }
            self.tlb.record(a, owners);
        }
        step
    }

    fn eject_satisfies_wait(&self, a: BlockAddr, k: CacheId, wb: WritebackKind) -> bool {
        self.inner.eject_satisfies_wait(a, k, wb)
    }

    fn eject_clean(&mut self, k: CacheId, a: BlockAddr) {
        self.inner.eject_clean(k, a);
        self.tlb.remove_owner(a, k);
    }

    fn eject_dirty(&mut self, k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        self.tlb.remove_owner(a, k);
        self.inner.eject_dirty(k, a, version)
    }

    fn awaiting(&self, a: BlockAddr) -> bool {
        self.inner.awaiting(a)
    }

    fn global_state(&self, a: BlockAddr) -> GlobalState {
        self.inner.global_state(a)
    }

    fn holders(&self, _a: BlockAddr) -> Option<OwnerSet> {
        None // knowledge is partial; invariants go through check_consistency
    }

    fn tlb_counters(&self) -> Option<(u64, u64)> {
        Some((self.hits, self.misses))
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(table())
    }

    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        self.inner.check_consistency(a, clean, dirty)?;
        // A resident buffer entry must be exact.
        match self.tlb.peek(a) {
            Some(owners) => {
                let mut actual = OwnerSet::new(owners.capacity());
                for id in clean.iter().chain(dirty.iter()) {
                    actual.insert(id);
                }
                if *owners == actual {
                    Ok(())
                } else {
                    Err(format!(
                        "buffered owners {owners} but actual holders {actual}"
                    ))
                }
            }
            None => Ok(()),
        }
    }
}

/// The translation-buffer scheme's table: the two-bit relation with
/// every non-initiator command's delivery relaxed to
/// [`Delivery::Either`] — targeted on a buffer hit, broadcast on a miss.
/// The global-state skeleton is identical to the plain two-bit table
/// (the buffer is a pure traffic accelerator), which the lint's
/// analyses verify independently for both.
pub(crate) fn table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        use GlobalState as G;
        let either = Delivery::Either;
        TransitionTable {
            scheme: "two-bit+tlb",
            tracks_state: true,
            events: vec![
                EventSpec::new(E::ReadMiss, StateSet::ALL, &[]),
                EventSpec::new(E::WriteMiss, StateSet::ALL, &[]),
                EventSpec::new(E::Modify, StateSet::ALL, &[Cond::Fresh]),
                EventSpec::new(
                    E::Supply,
                    StateSet::only(G::PresentM),
                    &[Cond::WaitWrite, Cond::Retains],
                ),
                EventSpec::new(E::EjectClean, StateSet::ALL, &[]),
                EventSpec::new(E::EjectDirty, StateSet::only(G::PresentM), &[]),
            ],
            rules: vec![
                crate::rule!("read-miss-absent", E::ReadMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::only(G::Present1)),
                crate::rule!("read-miss-shared", E::ReadMiss, StateSet::SHARED)
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "read-miss-modified",
                    E::ReadMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: either })
                .awaits(),
                crate::rule!("write-miss-absent", E::WriteMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!("write-miss-shared", E::WriteMiss, StateSet::SHARED)
                    .action(A::Invalidate { delivery: either })
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "write-miss-modified",
                    E::WriteMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: either })
                .awaits(),
                crate::rule!(
                    "modify-fresh-present1",
                    E::Modify,
                    StateSet::only(G::Present1)
                )
                .requires(Cond::Fresh, true)
                .action(A::ModifyGrant { granted: true })
                .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "modify-fresh-shared",
                    E::Modify,
                    StateSet::only(G::PresentStar)
                )
                .requires(Cond::Fresh, true)
                .action(A::Invalidate { delivery: either })
                .action(A::ModifyGrant { granted: true })
                .to(StateSet::only(G::PresentM))
                .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "modify-stale-state",
                    E::Modify,
                    StateSet::of(&[G::Absent, G::PresentM])
                )
                .action(A::ModifyGrant { granted: false }),
                crate::rule!("modify-stale-copy", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, false)
                    .action(A::ModifyGrant { granted: false }),
                crate::rule!("supply-write", E::Supply, StateSet::only(G::PresentM))
                    .requires(Cond::WaitWrite, true)
                    .action(A::WriteMemory)
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "supply-read-retained",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, true)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "supply-read-departed",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, false)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::Present1)),
                crate::rule!(
                    "eject-clean-present1",
                    E::EjectClean,
                    StateSet::only(G::Present1)
                )
                .to(StateSet::only(G::Absent)),
                crate::rule!(
                    "eject-clean-ignored",
                    E::EjectClean,
                    StateSet::of(&[G::Absent, G::PresentStar, G::PresentM])
                ),
                crate::rule!("eject-dirty", E::EjectDirty, StateSet::only(G::PresentM))
                    .action(A::WriteMemory)
                    .to(StateSet::only(G::Absent)),
            ],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    fn has_broadcast(step: &DirStep) -> bool {
        step.sends
            .iter()
            .any(|s| matches!(s, DirSend::Broadcast { .. }))
    }

    fn unicast_targets(step: &DirStep) -> Vec<CacheId> {
        step.sends
            .iter()
            .filter_map(|s| match s {
                DirSend::Unicast {
                    cmd: MemoryToCache::Inv { to, .. },
                    ..
                }
                | DirSend::Unicast {
                    cmd: MemoryToCache::Purge { to, .. },
                    ..
                } => Some(*to),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn buffer_lru_eviction() {
        let mut t = TranslationBuffer::new(2, 4);
        t.record(blk(1), OwnerSet::singleton(4, cid(0)));
        t.record(blk(2), OwnerSet::singleton(4, cid(1)));
        t.lookup(blk(1)); // refresh 1
        t.record(blk(3), OwnerSet::singleton(4, cid(2))); // evicts 2
        assert!(t.lookup(blk(1)).is_some());
        assert!(t.lookup(blk(2)).is_none());
        assert!(t.lookup(blk(3)).is_some());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extend_never_invents_entries() {
        let mut t = TranslationBuffer::new(2, 4);
        t.extend_if_tracked(blk(9), cid(0));
        assert!(t.is_empty());
        t.record(blk(9), OwnerSet::new(4));
        t.extend_if_tracked(blk(9), cid(3));
        assert!(t.lookup(blk(9)).unwrap().contains(cid(3)));
    }

    #[test]
    fn tracked_write_miss_sends_targeted_invalidates() {
        let mut d = TwoBitTlbDirectory::new(8, 4);
        let mem = MemoryImage::new();
        let a = blk(1);
        // C0 reads from Absent: exact entry {C0} created.
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        // C1 joins: entry extends to {C0, C1}.
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        // C2 write-misses: both copies invalidated *by name*.
        let s = d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        assert!(!has_broadcast(&s), "buffer hit replaces the broadcast");
        let mut targets = unicast_targets(&s);
        targets.sort();
        assert_eq!(targets, vec![cid(0), cid(1)]);
        assert_eq!(d.tlb_hits(), 1);
        assert_eq!(d.tlb_misses(), 0);
    }

    #[test]
    fn untracked_block_falls_back_to_broadcast() {
        let mut d = TwoBitTlbDirectory::new(1, 4);
        let mem = MemoryImage::new();
        // Fill the 1-entry buffer with block 1, then touch block 2 so
        // block 2's writers find no entry... block 2's first read (Absent)
        // records it, evicting block 1.
        d.open(cid(0), blk(1), OpenKind::ReadMiss, &mem);
        d.open(cid(0), blk(2), OpenKind::ReadMiss, &mem);
        // Writing block 1 (Present1, entry evicted): broadcast.
        let s = d.open(cid(1), blk(1), OpenKind::WriteMiss, &mem);
        assert!(has_broadcast(&s));
        assert_eq!(d.tlb_misses(), 1);
    }

    #[test]
    fn query_on_tracked_modified_block_is_targeted() {
        let mut d = TwoBitTlbDirectory::new(8, 4);
        let mem = MemoryImage::new();
        let a = blk(3);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem); // entry {C0}, PresentM
        let s = d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert!(!has_broadcast(&s));
        assert_eq!(
            unicast_targets(&s),
            vec![cid(0)],
            "purge goes straight to the owner"
        );
        // Resolution re-records exact owners {C0, C1}.
        d.supply(a, cid(0), Version::new(2), true, &mem);
        let s = d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        let mut targets = unicast_targets(&s);
        targets.sort();
        assert_eq!(targets, vec![cid(0), cid(1)]);
    }

    #[test]
    fn present1_upgrade_records_exact_entry() {
        let mut d = TwoBitTlbDirectory::new(8, 4);
        let mem = MemoryImage::new();
        let a = blk(4);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(0), a, OpenKind::Modify(mem.read(a)), &mem); // Present1 → PresentM, entry {C0}
        let s = d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert_eq!(unicast_targets(&s), vec![cid(0)]);
        assert_eq!(d.tlb_hits(), 1);
    }

    #[test]
    fn clean_eject_keeps_entry_exact() {
        let mut d = TwoBitTlbDirectory::new(8, 4);
        let mem = MemoryImage::new();
        let a = blk(5);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem); // entry {C0, C1}
        d.eject_clean(cid(0), a);
        let s = d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        assert_eq!(
            unicast_targets(&s),
            vec![cid(1)],
            "ejector no longer targeted"
        );
    }

    #[test]
    fn infinite_buffer_behaves_like_full_map_traffic() {
        // With capacity ≥ working set and all entries created from Absent,
        // every coherence action is targeted: zero broadcasts.
        let mut d = TwoBitTlbDirectory::new(1024, 8);
        let mem = MemoryImage::new();
        for b in 0..16u64 {
            d.open(cid((b % 8) as usize), blk(b), OpenKind::ReadMiss, &mem);
            let s = d.open(
                cid(((b + 1) % 8) as usize),
                blk(b),
                OpenKind::WriteMiss,
                &mem,
            );
            assert!(!has_broadcast(&s), "block {b} should be tracked");
        }
        assert_eq!(d.tlb_misses(), 0);
        assert_eq!(d.tlb_hits(), 16);
    }

    #[test]
    fn global_state_matches_plain_two_bit() {
        let mut d = TwoBitTlbDirectory::new(4, 4);
        let mem = MemoryImage::new();
        let a = blk(6);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        assert_eq!(d.global_state(a), GlobalState::Present1);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert_eq!(d.global_state(a), GlobalState::PresentStar);
    }
}
