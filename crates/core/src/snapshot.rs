//! Checkpoint serialization for the functional core.
//!
//! Every piece of controller and agent state that a distributed node must
//! survive a crash/restart with has a hand-rolled [`Json`] codec here —
//! the workspace deliberately carries no real serde backend (the vendored
//! `serde` is an API-compatible no-op), so checkpoints, like the
//! `BENCH_*.json` documents and the trace JSONL, go through
//! [`twobit_obs::json`].
//!
//! Layout conventions, shared with the `twobit-dist` wire format:
//!
//! * Block addresses, versions, and ids are JSON numbers (`u64` through
//!   `f64`, exact below 2^53 — far beyond any simulated address space).
//! * Enums become objects with a `"t"` tag naming the variant, fields
//!   inline; fieldless enums become plain strings.
//! * Maps become arrays of entry objects in the container's iteration
//!   order. `BlockMap` iterates in ascending block order, so those arrays
//!   are canonical; `HashMap`-backed protocol state is sorted by block
//!   number before emission so that a checkpoint of a given state is
//!   byte-identical no matter which process wrote it.
//!
//! The inverse direction ([`restore_protocol`] and the `restore_json`
//! constructors it dispatches to) validates shape and rejects unknown
//! tags with a `String` error, never panicking on malformed input — a
//! checkpoint file arrives over a process boundary and is untrusted.

use crate::directory::DirectoryProtocol;
use crate::local::LocalState;
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::{
    ClassicalDirectory, FullMapDirectory, FullMapLocalDirectory, NullDirectory, TwoBitDirectory,
    TwoBitTlbDirectory,
};
use twobit_cache::{CacheSnapshot, SlotSnapshot};
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheStats, CacheToMemory, ControllerStats, Counter, MemRef,
    MemoryToCache, Version, WordAddr, WritebackKind,
};

// ---------------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------------

/// Fetches `key` from an object, or explains which key is missing.
pub(crate) fn req<'j>(j: &'j Json, key: &str) -> Result<&'j Json, String> {
    j.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

/// Fetches `key` as an array.
pub(crate) fn req_array<'j>(j: &'j Json, key: &str) -> Result<&'j [Json], String> {
    req(j, key)?
        .as_array()
        .ok_or_else(|| format!("key `{key}` is not an array"))
}

fn u64_of(j: &Json, what: &str) -> Result<u64, String> {
    j.as_u64().ok_or_else(|| format!("{what} is not a u64"))
}

// ---------------------------------------------------------------------------
// Scalar codecs
// ---------------------------------------------------------------------------

/// Encodes a block address as its number.
#[must_use]
pub fn block_json(a: BlockAddr) -> Json {
    num_u64(a.number())
}

/// Decodes a block address.
pub fn block_from(j: &Json) -> Result<BlockAddr, String> {
    Ok(BlockAddr::new(u64_of(j, "block address")?))
}

/// Encodes a version as its raw counter.
#[must_use]
pub fn version_json(v: Version) -> Json {
    num_u64(v.raw())
}

/// Decodes a version.
pub fn version_from(j: &Json) -> Result<Version, String> {
    Ok(Version::new(u64_of(j, "version")?))
}

/// Encodes a cache id as its index.
#[must_use]
pub fn cache_id_json(k: CacheId) -> Json {
    num_u64(k.index() as u64)
}

/// Decodes a cache id.
pub fn cache_id_from(j: &Json) -> Result<CacheId, String> {
    Ok(CacheId::new(u64_of(j, "cache id")? as usize))
}

/// Encodes an access kind as `"read"` / `"write"`.
#[must_use]
pub fn access_kind_json(rw: AccessKind) -> Json {
    Json::Str(rw.to_string())
}

/// Decodes an access kind.
pub fn access_kind_from(j: &Json) -> Result<AccessKind, String> {
    match j.as_str() {
        Some("read") => Ok(AccessKind::Read),
        Some("write") => Ok(AccessKind::Write),
        other => Err(format!("bad access kind {other:?}")),
    }
}

/// Encodes a write-back kind as `"clean"` / `"dirty"`.
#[must_use]
pub fn writeback_kind_json(wb: WritebackKind) -> Json {
    Json::Str(wb.to_string())
}

/// Decodes a write-back kind.
pub fn writeback_kind_from(j: &Json) -> Result<WritebackKind, String> {
    match j.as_str() {
        Some("clean") => Ok(WritebackKind::Clean),
        Some("dirty") => Ok(WritebackKind::Dirty),
        other => Err(format!("bad writeback kind {other:?}")),
    }
}

/// Encodes a memory reference as `{a, d, rw}`.
#[must_use]
pub fn mem_ref_json(op: MemRef) -> Json {
    obj([
        ("a", block_json(op.addr.block)),
        ("d", num_u64(u64::from(op.addr.offset))),
        ("rw", access_kind_json(op.kind)),
    ])
}

/// Decodes a memory reference.
pub fn mem_ref_from(j: &Json) -> Result<MemRef, String> {
    Ok(MemRef {
        addr: WordAddr {
            block: block_from(req(j, "a")?)?,
            offset: u64_of(req(j, "d")?, "offset")? as u16,
        },
        kind: access_kind_from(req(j, "rw")?)?,
    })
}

/// Encodes an owner set as `{width, members}`.
#[must_use]
pub fn owner_set_json(s: &OwnerSet) -> Json {
    Json::Arr(
        std::iter::once(num_u64(s.capacity() as u64))
            .chain(s.iter().map(cache_id_json))
            .collect(),
    )
}

/// Decodes an owner set (`[width, member...]`).
pub fn owner_set_from(j: &Json) -> Result<OwnerSet, String> {
    let parts = j.as_array().ok_or("owner set is not an array")?;
    let width = u64_of(parts.first().ok_or("empty owner set encoding")?, "width")?;
    let mut s = OwnerSet::new(width as usize);
    for m in &parts[1..] {
        let k = cache_id_from(m)?;
        if k.index() >= s.capacity() {
            return Err(format!("owner {k} exceeds set width {width}"));
        }
        s.insert(k);
    }
    Ok(s)
}

// ---------------------------------------------------------------------------
// Waiting-map helper shared by the full-map schemes
// ---------------------------------------------------------------------------

/// Encodes a `HashMap<BlockAddr, Waiting>` sorted by block number.
pub(crate) fn waiting_map_json(
    m: &std::collections::HashMap<BlockAddr, crate::two_bit::Waiting>,
) -> Json {
    let mut entries: Vec<_> = m.iter().collect();
    entries.sort_by_key(|(a, _)| a.number());
    Json::Arr(
        entries
            .into_iter()
            .map(|(a, w)| {
                obj([
                    ("a", block_json(*a)),
                    ("k", cache_id_json(w.k)),
                    ("w", Json::Bool(w.write)),
                ])
            })
            .collect(),
    )
}

/// Decodes the inverse of [`waiting_map_json`].
pub(crate) fn waiting_map_from(
    j: &Json,
) -> Result<std::collections::HashMap<BlockAddr, crate::two_bit::Waiting>, String> {
    let mut m = std::collections::HashMap::new();
    for e in j.as_array().ok_or("waiting map is not an array")? {
        m.insert(
            block_from(req(e, "a")?)?,
            crate::two_bit::Waiting {
                k: cache_id_from(req(e, "k")?)?,
                write: req(e, "w")?.as_bool().ok_or("`w` is not a bool")?,
            },
        );
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Command codecs (shared with the twobit-dist wire format)
// ---------------------------------------------------------------------------

/// Encodes a cache-to-memory command as a `"t"`-tagged object.
#[must_use]
pub fn cache_to_memory_json(cmd: CacheToMemory) -> Json {
    match cmd {
        CacheToMemory::Request { k, a, rw } => obj([
            ("t", Json::Str("REQUEST".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
            ("rw", access_kind_json(rw)),
        ]),
        CacheToMemory::MRequest { k, a, version } => obj([
            ("t", Json::Str("MREQUEST".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
            ("v", version_json(version)),
        ]),
        CacheToMemory::Eject { k, olda, wb } => obj([
            ("t", Json::Str("EJECT".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(olda)),
            ("wb", writeback_kind_json(wb)),
        ]),
        CacheToMemory::PutData { from, a, version } => obj([
            ("t", Json::Str("PUT".into())),
            ("k", cache_id_json(from)),
            ("a", block_json(a)),
            ("v", version_json(version)),
        ]),
        CacheToMemory::WriteThrough { k, a, version } => obj([
            ("t", Json::Str("WRITETHRU".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
            ("v", version_json(version)),
        ]),
        CacheToMemory::DirectRead { k, a } => obj([
            ("t", Json::Str("DIRECTREAD".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
        ]),
    }
}

/// Decodes a cache-to-memory command.
pub fn cache_to_memory_from(j: &Json) -> Result<CacheToMemory, String> {
    let k = cache_id_from(req(j, "k")?)?;
    let a = block_from(req(j, "a")?)?;
    match req(j, "t")?.as_str() {
        Some("REQUEST") => Ok(CacheToMemory::Request {
            k,
            a,
            rw: access_kind_from(req(j, "rw")?)?,
        }),
        Some("MREQUEST") => Ok(CacheToMemory::MRequest {
            k,
            a,
            version: version_from(req(j, "v")?)?,
        }),
        Some("EJECT") => Ok(CacheToMemory::Eject {
            k,
            olda: a,
            wb: writeback_kind_from(req(j, "wb")?)?,
        }),
        Some("PUT") => Ok(CacheToMemory::PutData {
            from: k,
            a,
            version: version_from(req(j, "v")?)?,
        }),
        Some("WRITETHRU") => Ok(CacheToMemory::WriteThrough {
            k,
            a,
            version: version_from(req(j, "v")?)?,
        }),
        Some("DIRECTREAD") => Ok(CacheToMemory::DirectRead { k, a }),
        other => Err(format!("bad cache-to-memory tag {other:?}")),
    }
}

/// Encodes a memory-to-cache command as a `"t"`-tagged object.
#[must_use]
pub fn memory_to_cache_json(cmd: MemoryToCache) -> Json {
    match cmd {
        MemoryToCache::GetData {
            k,
            a,
            version,
            exclusive,
        } => obj([
            ("t", Json::Str("GET".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
            ("v", version_json(version)),
            ("x", Json::Bool(exclusive)),
        ]),
        MemoryToCache::BroadInv { a, exclude } => obj([
            ("t", Json::Str("BROADINV".into())),
            ("a", block_json(a)),
            ("k", cache_id_json(exclude)),
        ]),
        MemoryToCache::BroadQuery { a, rw } => obj([
            ("t", Json::Str("BROADQUERY".into())),
            ("a", block_json(a)),
            ("rw", access_kind_json(rw)),
        ]),
        MemoryToCache::MGranted { k, a, granted } => obj([
            ("t", Json::Str("MGRANTED".into())),
            ("k", cache_id_json(k)),
            ("a", block_json(a)),
            ("y", Json::Bool(granted)),
        ]),
        MemoryToCache::Inv { a, to } => obj([
            ("t", Json::Str("INV".into())),
            ("a", block_json(a)),
            ("k", cache_id_json(to)),
        ]),
        MemoryToCache::Purge { a, to, rw } => obj([
            ("t", Json::Str("PURGE".into())),
            ("a", block_json(a)),
            ("k", cache_id_json(to)),
            ("rw", access_kind_json(rw)),
        ]),
    }
}

/// Decodes a memory-to-cache command.
pub fn memory_to_cache_from(j: &Json) -> Result<MemoryToCache, String> {
    let a = block_from(req(j, "a")?)?;
    match req(j, "t")?.as_str() {
        Some("GET") => Ok(MemoryToCache::GetData {
            k: cache_id_from(req(j, "k")?)?,
            a,
            version: version_from(req(j, "v")?)?,
            exclusive: req(j, "x")?.as_bool().ok_or("`x` is not a bool")?,
        }),
        Some("BROADINV") => Ok(MemoryToCache::BroadInv {
            a,
            exclude: cache_id_from(req(j, "k")?)?,
        }),
        Some("BROADQUERY") => Ok(MemoryToCache::BroadQuery {
            a,
            rw: access_kind_from(req(j, "rw")?)?,
        }),
        Some("MGRANTED") => Ok(MemoryToCache::MGranted {
            k: cache_id_from(req(j, "k")?)?,
            a,
            granted: req(j, "y")?.as_bool().ok_or("`y` is not a bool")?,
        }),
        Some("INV") => Ok(MemoryToCache::Inv {
            a,
            to: cache_id_from(req(j, "k")?)?,
        }),
        Some("PURGE") => Ok(MemoryToCache::Purge {
            a,
            to: cache_id_from(req(j, "k")?)?,
            rw: access_kind_from(req(j, "rw")?)?,
        }),
        other => Err(format!("bad memory-to-cache tag {other:?}")),
    }
}

// ---------------------------------------------------------------------------
// Stats codecs
// ---------------------------------------------------------------------------

fn counters_json(pairs: &[(&'static str, Counter)]) -> Json {
    obj(pairs.iter().map(|&(k, c)| (k, num_u64(c.get()))))
}

fn counter_from(j: &Json, key: &str) -> Result<Counter, String> {
    Ok(Counter::from(j.req_u64(key)?))
}

/// Encodes per-cache statistics as an object of counters.
#[must_use]
pub fn cache_stats_json(s: &CacheStats) -> Json {
    counters_json(&[
        ("reads", s.reads),
        ("writes", s.writes),
        ("read_hits", s.read_hits),
        ("write_hits_dirty", s.write_hits_dirty),
        ("write_hits_clean", s.write_hits_clean),
        ("read_misses", s.read_misses),
        ("write_misses", s.write_misses),
        ("evictions_clean", s.evictions_clean),
        ("evictions_dirty", s.evictions_dirty),
        ("commands_received", s.commands_received),
        ("useless_commands", s.useless_commands),
        ("effective_commands", s.effective_commands),
        ("stolen_cycles", s.stolen_cycles),
        ("blocks_supplied", s.blocks_supplied),
        ("invalidated_lines", s.invalidated_lines),
        ("bias_filtered", s.bias_filtered),
        ("tag_probes", s.tag_probes),
    ])
}

/// Decodes per-cache statistics.
pub fn cache_stats_from(j: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        reads: counter_from(j, "reads")?,
        writes: counter_from(j, "writes")?,
        read_hits: counter_from(j, "read_hits")?,
        write_hits_dirty: counter_from(j, "write_hits_dirty")?,
        write_hits_clean: counter_from(j, "write_hits_clean")?,
        read_misses: counter_from(j, "read_misses")?,
        write_misses: counter_from(j, "write_misses")?,
        evictions_clean: counter_from(j, "evictions_clean")?,
        evictions_dirty: counter_from(j, "evictions_dirty")?,
        commands_received: counter_from(j, "commands_received")?,
        useless_commands: counter_from(j, "useless_commands")?,
        effective_commands: counter_from(j, "effective_commands")?,
        stolen_cycles: counter_from(j, "stolen_cycles")?,
        blocks_supplied: counter_from(j, "blocks_supplied")?,
        invalidated_lines: counter_from(j, "invalidated_lines")?,
        bias_filtered: counter_from(j, "bias_filtered")?,
        tag_probes: counter_from(j, "tag_probes")?,
    })
}

/// Encodes per-controller statistics as an object of counters.
#[must_use]
pub fn controller_stats_json(s: &ControllerStats) -> Json {
    counters_json(&[
        ("requests", s.requests),
        ("mrequests", s.mrequests),
        ("ejects", s.ejects),
        ("broadcasts_sent", s.broadcasts_sent),
        ("unicasts_sent", s.unicasts_sent),
        ("deliveries", s.deliveries),
        ("memory_reads", s.memory_reads),
        ("memory_writes", s.memory_writes),
        ("tlb_hits", s.tlb_hits),
        ("tlb_misses", s.tlb_misses),
        ("conflicts_queued", s.conflicts_queued),
        ("queue_peak", s.queue_peak),
    ])
}

/// Decodes per-controller statistics.
pub fn controller_stats_from(j: &Json) -> Result<ControllerStats, String> {
    Ok(ControllerStats {
        requests: counter_from(j, "requests")?,
        mrequests: counter_from(j, "mrequests")?,
        ejects: counter_from(j, "ejects")?,
        broadcasts_sent: counter_from(j, "broadcasts_sent")?,
        unicasts_sent: counter_from(j, "unicasts_sent")?,
        deliveries: counter_from(j, "deliveries")?,
        memory_reads: counter_from(j, "memory_reads")?,
        memory_writes: counter_from(j, "memory_writes")?,
        tlb_hits: counter_from(j, "tlb_hits")?,
        tlb_misses: counter_from(j, "tlb_misses")?,
        conflicts_queued: counter_from(j, "conflicts_queued")?,
        queue_peak: counter_from(j, "queue_peak")?,
    })
}

// ---------------------------------------------------------------------------
// Cache tag-store snapshot codec
// ---------------------------------------------------------------------------

fn local_state_json(s: LocalState) -> Json {
    Json::Str(
        match s {
            LocalState::Invalid => "I",
            LocalState::Shared => "S",
            LocalState::Exclusive => "E",
            LocalState::Dirty => "D",
        }
        .into(),
    )
}

fn local_state_from(j: &Json) -> Result<LocalState, String> {
    match j.as_str() {
        Some("I") => Ok(LocalState::Invalid),
        Some("S") => Ok(LocalState::Shared),
        Some("E") => Ok(LocalState::Exclusive),
        Some("D") => Ok(LocalState::Dirty),
        other => Err(format!("bad local state {other:?}")),
    }
}

/// Encodes an exact tag-store snapshot (`Cache<LocalState>`).
#[must_use]
pub fn cache_snapshot_json(snap: &CacheSnapshot<LocalState>) -> Json {
    obj([
        ("clock", num_u64(snap.clock)),
        ("probes", num_u64(snap.probes)),
        // Replacement RNG states are full-entropy 64-bit words — beyond
        // the exact-integer range of a JSON number — so they travel as
        // hex strings.
        (
            "rngs",
            Json::Arr(
                snap.rngs
                    .iter()
                    .map(|&r| Json::Str(format!("{r:016x}")))
                    .collect(),
            ),
        ),
        (
            "lines",
            Json::Arr(
                snap.lines
                    .iter()
                    .map(|l| {
                        obj([
                            ("slot", num_u64(l.slot)),
                            ("a", block_json(l.addr)),
                            ("s", local_state_json(l.state)),
                            ("v", version_json(l.version)),
                            ("use", num_u64(l.last_use)),
                            ("ins", num_u64(l.inserted)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Decodes an exact tag-store snapshot.
pub fn cache_snapshot_from(j: &Json) -> Result<CacheSnapshot<LocalState>, String> {
    let rngs = req_array(j, "rngs")?
        .iter()
        .map(|r| {
            let s = r.as_str().ok_or("rng is not a hex string")?;
            u64::from_str_radix(s, 16).map_err(|e| format!("bad rng `{s}`: {e}"))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let lines = req_array(j, "lines")?
        .iter()
        .map(|l| {
            Ok(SlotSnapshot {
                slot: l.req_u64("slot")?,
                addr: block_from(req(l, "a")?)?,
                state: local_state_from(req(l, "s")?)?,
                version: version_from(req(l, "v")?)?,
                last_use: l.req_u64("use")?,
                inserted: l.req_u64("ins")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(CacheSnapshot {
        clock: j.req_u64("clock")?,
        probes: j.req_u64("probes")?,
        rngs,
        lines,
    })
}

// ---------------------------------------------------------------------------
// Memory image codec
// ---------------------------------------------------------------------------

/// Encodes a memory image as `[[block, version], ...]` in ascending block
/// order.
#[must_use]
pub fn memory_image_json(m: &MemoryImage) -> Json {
    Json::Arr(
        m.written_blocks()
            .map(|(a, v)| Json::Arr(vec![block_json(a), version_json(v)]))
            .collect(),
    )
}

/// Decodes a memory image.
pub fn memory_image_from(j: &Json) -> Result<MemoryImage, String> {
    let mut m = MemoryImage::new();
    for entry in j.as_array().ok_or("memory image is not an array")? {
        let pair = entry.as_array().ok_or("memory entry is not a pair")?;
        if pair.len() != 2 {
            return Err("memory entry is not a pair".into());
        }
        m.write(block_from(&pair[0])?, version_from(&pair[1])?);
    }
    Ok(m)
}

// ---------------------------------------------------------------------------
// Protocol restore registry
// ---------------------------------------------------------------------------

/// Reconstructs a directory protocol from its
/// [`DirectoryProtocol::save_state`] document.
///
/// `name` is the scheme name as reported by [`DirectoryProtocol::name`]
/// ("two-bit", "two-bit+tlb", "full-map", "full-map+local",
/// "classical-wt", "static-sw").
///
/// # Errors
///
/// Returns a message naming the unknown scheme or the malformed field.
pub fn restore_protocol(name: &str, j: &Json) -> Result<Box<dyn DirectoryProtocol>, String> {
    match name {
        "two-bit" => Ok(Box::new(TwoBitDirectory::restore_json(j)?)),
        "two-bit+tlb" => Ok(Box::new(TwoBitTlbDirectory::restore_json(j)?)),
        "full-map" => Ok(Box::new(FullMapDirectory::restore_json(j)?)),
        "full-map+local" => Ok(Box::new(FullMapLocalDirectory::restore_json(j)?)),
        "classical-wt" => Ok(Box::new(ClassicalDirectory::new())),
        "static-sw" => Ok(Box::new(NullDirectory::new())),
        other => Err(format!("unknown scheme `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_c2m(cmd: CacheToMemory) {
        let j = cache_to_memory_json(cmd);
        let parsed = twobit_obs::json::parse(&j.to_json()).unwrap();
        assert_eq!(cache_to_memory_from(&parsed).unwrap(), cmd);
    }

    fn roundtrip_m2c(cmd: MemoryToCache) {
        let j = memory_to_cache_json(cmd);
        let parsed = twobit_obs::json::parse(&j.to_json()).unwrap();
        assert_eq!(memory_to_cache_from(&parsed).unwrap(), cmd);
    }

    #[test]
    fn command_codecs_roundtrip_every_variant() {
        let k = CacheId::new(3);
        let a = BlockAddr::new(0x2a);
        let v = Version::new(7);
        roundtrip_c2m(CacheToMemory::Request {
            k,
            a,
            rw: AccessKind::Write,
        });
        roundtrip_c2m(CacheToMemory::MRequest { k, a, version: v });
        roundtrip_c2m(CacheToMemory::Eject {
            k,
            olda: a,
            wb: WritebackKind::Dirty,
        });
        roundtrip_c2m(CacheToMemory::PutData {
            from: k,
            a,
            version: v,
        });
        roundtrip_c2m(CacheToMemory::WriteThrough { k, a, version: v });
        roundtrip_c2m(CacheToMemory::DirectRead { k, a });
        roundtrip_m2c(MemoryToCache::GetData {
            k,
            a,
            version: v,
            exclusive: true,
        });
        roundtrip_m2c(MemoryToCache::BroadInv { a, exclude: k });
        roundtrip_m2c(MemoryToCache::BroadQuery {
            a,
            rw: AccessKind::Read,
        });
        roundtrip_m2c(MemoryToCache::MGranted {
            k,
            a,
            granted: false,
        });
        roundtrip_m2c(MemoryToCache::Inv { a, to: k });
        roundtrip_m2c(MemoryToCache::Purge {
            a,
            to: k,
            rw: AccessKind::Write,
        });
    }

    #[test]
    fn owner_set_roundtrips_and_validates() {
        let mut s = OwnerSet::new(70);
        s.insert(CacheId::new(0));
        s.insert(CacheId::new(65));
        let back = owner_set_from(&owner_set_json(&s)).unwrap();
        assert_eq!(back, s);
        // A member beyond the recorded width is rejected, not a panic.
        let bad = Json::Arr(vec![num_u64(2), num_u64(5)]);
        assert!(owner_set_from(&bad).is_err());
    }

    #[test]
    fn memory_image_roundtrips() {
        let mut m = MemoryImage::new();
        m.write(BlockAddr::new(4), Version::new(9));
        m.write(BlockAddr::new(1), Version::new(2));
        let back = memory_image_from(&memory_image_json(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn stats_roundtrip() {
        let mut s = CacheStats::default();
        s.reads.add(10);
        s.write_misses.add(3);
        assert_eq!(cache_stats_from(&cache_stats_json(&s)).unwrap(), s);
        let mut c = ControllerStats::default();
        c.requests.add(5);
        c.queue_peak = Counter::from(4);
        assert_eq!(
            controller_stats_from(&controller_stats_json(&c)).unwrap(),
            c
        );
    }

    #[test]
    fn restore_protocol_rejects_unknown_scheme() {
        assert!(restore_protocol("write-once", &Json::Null).is_err());
    }
}
