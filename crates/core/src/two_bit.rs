//! The two-bit directory scheme — the paper's contribution (section 3).
//!
//! Each block owned by the module carries exactly two bits encoding
//! `Absent` / `Present1` / `Present*` / `PresentM`. The directory never
//! knows *which* caches hold copies, so any command that must reach a
//! non-initiating cache is broadcast (`BROADINV`, `BROADQUERY`); the
//! protocol's entire cost model is the stream of broadcasts this forces.
//!
//! Protocol cases implemented exactly per sections 3.2.1–3.2.5:
//!
//! | event | state | actions |
//! |-------|-------|---------|
//! | read miss | Absent | `get`, → Present1 |
//! | read miss | Present1 / Present\* | `get`, → Present\* |
//! | read miss | PresentM | `BROADQUERY(read)`; on supply: write-back, `get`, → Present\* (owner keeps a clean copy)¹ |
//! | write miss | Absent | `get`, → PresentM |
//! | write miss | Present1 / Present\* | `BROADINV(a,k)`, `get`, → PresentM |
//! | write miss | PresentM | `BROADQUERY(write)`; on supply: write-back, `get`, → PresentM |
//! | MREQUEST | Present1 | `MGRANTED(true)`, → PresentM |
//! | MREQUEST | Present\* | `BROADINV(a,k)`, `MGRANTED(true)`, → PresentM |
//! | MREQUEST | PresentM / Absent | `MGRANTED(false)` (stale request; the requester's copy was invalidated in flight — section 3.2.5) |
//! | clean eject | Present1 | → Absent (the optimization the paper notes makes keeping Present1 worthwhile) |
//! | dirty eject | any | write-back, → Absent |
//!
//! ¹ The paper's read-miss case 2 prints `SETSTATE(a,"Present!")`, an
//! OCR-ambiguous token. Since the responding owner "will also reset the
//! modified bit" — i.e. *keeps* a clean copy — two clean copies exist and
//! the only sound successor state is `Present*`. When the data instead
//! arrives via a racing write-back (the owner ejected the block), only the
//! requester holds a copy and the state becomes `Present1`.

use crate::blockmap::BlockMap;
use crate::directory::{
    grant_forwarded, grant_from_memory, mgranted, DirSend, DirStep, DirectoryProtocol, OpenKind,
    SendCost,
};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::transitions::{
    ActionKind, Cond, Delivery, EventKind, EventSpec, OrderGuarantee, StateSet, TransitionTable,
};
use std::sync::OnceLock;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version,
    WritebackKind,
};

/// What an in-flight transaction awaits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Waiting {
    /// The requester to grant once data arrives.
    pub k: CacheId,
    /// Whether the triggering miss was a write.
    pub write: bool,
}

/// The two-bit global directory of one memory module.
#[derive(Debug, Default, Clone)]
pub struct TwoBitDirectory {
    states: BlockMap<GlobalState>,
    waiting: BlockMap<Waiting>,
}

impl TwoBitDirectory {
    /// An empty directory: every block starts `Absent`.
    #[must_use]
    pub fn new() -> Self {
        TwoBitDirectory::default()
    }

    fn state(&self, a: BlockAddr) -> GlobalState {
        self.states.get(a).copied().unwrap_or_default()
    }

    fn set_state(&mut self, a: BlockAddr, s: GlobalState) {
        if s == GlobalState::Absent {
            self.states.remove(a);
        } else {
            self.states.insert(a, s);
        }
    }

    fn broad_inv(a: BlockAddr, k: CacheId) -> DirSend {
        DirSend::Broadcast {
            cmd: MemoryToCache::BroadInv { a, exclude: k },
            exclude: k,
            cost: SendCost::Command,
        }
    }

    fn broad_query(a: BlockAddr, rw: AccessKind, requester: CacheId) -> DirSend {
        DirSend::Broadcast {
            cmd: MemoryToCache::BroadQuery { a, rw },
            exclude: requester,
            cost: SendCost::Command,
        }
    }

    /// Rebuilds a directory from a [`DirectoryProtocol::save_state`]
    /// checkpoint document.
    pub(crate) fn restore_json(j: &Json) -> Result<Self, String> {
        let mut d = TwoBitDirectory::new();
        for e in crate::snapshot::req_array(j, "states")? {
            let bits = e.req_u64("s")?;
            let s = GlobalState::from_bits(bits as u8)
                .ok_or_else(|| format!("bad global-state bits {bits}"))?;
            d.set_state(
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
                s,
            );
        }
        for e in crate::snapshot::req_array(j, "waiting")? {
            d.waiting.insert(
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
                Waiting {
                    k: crate::snapshot::cache_id_from(crate::snapshot::req(e, "k")?)?,
                    write: crate::snapshot::req(e, "w")?
                        .as_bool()
                        .ok_or("`w` is not a bool")?,
                },
            );
        }
        Ok(d)
    }
}

impl DirectoryProtocol for TwoBitDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(1); // scheme discriminant (see DirectoryProtocol impls)
                         // `set_state` removes Absent entries, so the map is already
                         // canonical, and `BlockMap::iter` yields ascending block
                         // order — the encoding is path-independent as is.
        fp.write_usize(self.states.len());
        for (a, s) in self.states.iter() {
            fp.write_u64(a.number());
            fp.write_u64(u64::from(s.bits()));
        }
        fp.write_usize(self.waiting.len());
        for (a, w) in self.waiting.iter() {
            fp.write_u64(a.number());
            fp.write_usize(w.k.index());
            fp.write_bool(w.write);
        }
    }

    fn name(&self) -> &'static str {
        "two-bit"
    }

    fn save_state(&self) -> Json {
        // `BlockMap::iter` is ascending and Absent entries are removed by
        // `set_state`, so the document is canonical like the fingerprint.
        obj([
            (
                "states",
                Json::Arr(
                    self.states
                        .iter()
                        .map(|(a, s)| {
                            obj([
                                ("a", crate::snapshot::block_json(a)),
                                ("s", num_u64(u64::from(s.bits()))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "waiting",
                Json::Arr(
                    self.waiting
                        .iter()
                        .map(|(a, w)| {
                            obj([
                                ("a", crate::snapshot::block_json(a)),
                                ("k", crate::snapshot::cache_id_json(w.k)),
                                ("w", Json::Bool(w.write)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        debug_assert!(!self.waiting.contains_key(a), "open on a waiting block");
        match kind {
            OpenKind::ReadMiss => match self.state(a) {
                GlobalState::Absent => {
                    self.set_state(a, GlobalState::Present1);
                    DirStep::done().with_send(grant_from_memory(k, a, mem, false))
                }
                GlobalState::Present1 | GlobalState::PresentStar => {
                    self.set_state(a, GlobalState::PresentStar);
                    DirStep::done().with_send(grant_from_memory(k, a, mem, false))
                }
                GlobalState::PresentM => {
                    self.waiting.insert(a, Waiting { k, write: false });
                    DirStep::awaiting(vec![Self::broad_query(a, AccessKind::Read, k)])
                }
            },
            OpenKind::WriteMiss => match self.state(a) {
                GlobalState::Absent => {
                    self.set_state(a, GlobalState::PresentM);
                    DirStep::done().with_send(grant_from_memory(k, a, mem, true))
                }
                GlobalState::Present1 | GlobalState::PresentStar => {
                    self.set_state(a, GlobalState::PresentM);
                    DirStep::done()
                        .with_send(Self::broad_inv(a, k))
                        .with_send(grant_from_memory(k, a, mem, true))
                }
                GlobalState::PresentM => {
                    self.waiting.insert(a, Waiting { k, write: true });
                    DirStep::awaiting(vec![Self::broad_query(a, AccessKind::Write, k)])
                }
            },
            // The version check detects the crossing-window race the
            // two-bit map cannot see by identity: a clean copy's version
            // equals memory's unless an invalidation for it is in flight
            // (see the `MREQUEST` docs in twobit-types).
            OpenKind::Modify(version) => match (self.state(a), version == mem.read(a)) {
                (GlobalState::Present1, true) => {
                    self.set_state(a, GlobalState::PresentM);
                    DirStep::done().with_send(mgranted(k, a, true))
                }
                (GlobalState::PresentStar, true) => {
                    self.set_state(a, GlobalState::PresentM);
                    DirStep::done()
                        .with_send(Self::broad_inv(a, k))
                        .with_send(mgranted(k, a, true))
                }
                // The requester's copy has been invalidated while its
                // MREQUEST was in flight (section 3.2.5), or carries a
                // stale version: deny; it will come back with a write
                // miss.
                (GlobalState::Present1 | GlobalState::PresentStar, false)
                | (GlobalState::Absent | GlobalState::PresentM, _) => {
                    DirStep::done().with_send(mgranted(k, a, false))
                }
            },
            OpenKind::WriteThrough(_) | OpenKind::DirectRead => {
                panic!("two-bit directory serves only write-back caches (got {kind:?})")
            }
        }
    }

    fn supply(
        &mut self,
        a: BlockAddr,
        _from: CacheId,
        version: Version,
        retains: bool,
        _mem: &MemoryImage,
    ) -> DirStep {
        let waiting = self
            .waiting
            .remove(a)
            .expect("supply without a waiting transaction");
        let next = if waiting.write {
            GlobalState::PresentM
        } else if retains {
            // Owner downgraded to a clean copy; requester gets another.
            GlobalState::PresentStar
        } else {
            // Owner's copy left via a racing write-back; requester alone.
            GlobalState::Present1
        };
        self.set_state(a, next);
        DirStep::done()
            .with_memory_write(a, version)
            .with_send(grant_forwarded(waiting.k, a, version, waiting.write))
    }

    fn eject_satisfies_wait(&self, a: BlockAddr, _k: CacheId, wb: WritebackKind) -> bool {
        // A dirty eject of a PresentM block can only come from the sole
        // owner, which is exactly the cache whose data the wait needs. A
        // clean eject can never carry the modified data a two-bit wait is
        // for.
        self.waiting.contains_key(a) && wb == WritebackKind::Dirty
    }

    fn eject_clean(&mut self, _k: CacheId, a: BlockAddr) {
        // Only the Present1 → Absent transition is sound: under Present*
        // other copies may remain, and under PresentM/Absent the eject is
        // stale information.
        if self.state(a) == GlobalState::Present1 {
            self.set_state(a, GlobalState::Absent);
        }
    }

    fn eject_dirty(&mut self, _k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        self.set_state(a, GlobalState::Absent);
        DirStep::done().with_memory_write(a, version)
    }

    fn awaiting(&self, a: BlockAddr) -> bool {
        self.waiting.contains_key(a)
    }

    fn global_state(&self, a: BlockAddr) -> GlobalState {
        self.state(a)
    }

    fn holders(&self, _a: BlockAddr) -> Option<OwnerSet> {
        None // the economy of the scheme: identities are not kept
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(table())
    }

    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        let state = self.state(a);
        if state.admits(clean.len(), dirty.len()) {
            Ok(())
        } else {
            Err(format!(
                "two-bit state {state} does not admit {} clean / {} dirty copies",
                clean.len(),
                dirty.len()
            ))
        }
    }
}

/// The two-bit scheme's transition relation as a declarative table —
/// the module-docs table (sections 3.2.1–3.2.5) in analyzable form.
/// Every non-initiator command is a [`Delivery::Broadcast`]: the
/// directory keeps no identities, which is the scheme's economy and the
/// property the broadcast-necessity lint checks.
pub(crate) fn table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        use GlobalState as G;
        let broadcast = Delivery::Broadcast;
        TransitionTable {
            scheme: "two-bit",
            tracks_state: true,
            events: vec![
                EventSpec::new(E::ReadMiss, StateSet::ALL, &[]),
                EventSpec::new(E::WriteMiss, StateSet::ALL, &[]),
                EventSpec::new(E::Modify, StateSet::ALL, &[Cond::Fresh]),
                EventSpec::new(
                    E::Supply,
                    StateSet::only(G::PresentM),
                    &[Cond::WaitWrite, Cond::Retains],
                ),
                EventSpec::new(E::EjectClean, StateSet::ALL, &[]),
                EventSpec::new(E::EjectDirty, StateSet::only(G::PresentM), &[]),
            ],
            rules: vec![
                crate::rule!("read-miss-absent", E::ReadMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::only(G::Present1)),
                crate::rule!("read-miss-shared", E::ReadMiss, StateSet::SHARED)
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "read-miss-modified",
                    E::ReadMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall {
                    delivery: broadcast,
                })
                .awaits(),
                crate::rule!("write-miss-absent", E::WriteMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!("write-miss-shared", E::WriteMiss, StateSet::SHARED)
                    .action(A::Invalidate {
                        delivery: broadcast,
                    })
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "write-miss-modified",
                    E::WriteMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall {
                    delivery: broadcast,
                })
                .awaits(),
                crate::rule!(
                    "modify-fresh-present1",
                    E::Modify,
                    StateSet::only(G::Present1)
                )
                .requires(Cond::Fresh, true)
                .action(A::ModifyGrant { granted: true })
                .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "modify-fresh-shared",
                    E::Modify,
                    StateSet::only(G::PresentStar)
                )
                .requires(Cond::Fresh, true)
                .action(A::Invalidate {
                    delivery: broadcast,
                })
                .action(A::ModifyGrant { granted: true })
                .to(StateSet::only(G::PresentM))
                .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "modify-stale-state",
                    E::Modify,
                    StateSet::of(&[G::Absent, G::PresentM])
                )
                .action(A::ModifyGrant { granted: false }),
                crate::rule!("modify-stale-copy", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, false)
                    .action(A::ModifyGrant { granted: false }),
                crate::rule!("supply-write", E::Supply, StateSet::only(G::PresentM))
                    .requires(Cond::WaitWrite, true)
                    .action(A::WriteMemory)
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "supply-read-retained",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, true)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "supply-read-departed",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, false)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::Present1)),
                crate::rule!(
                    "eject-clean-present1",
                    E::EjectClean,
                    StateSet::only(G::Present1)
                )
                .to(StateSet::only(G::Absent)),
                crate::rule!(
                    "eject-clean-ignored",
                    E::EjectClean,
                    StateSet::of(&[G::Absent, G::PresentStar, G::PresentM])
                ),
                crate::rule!("eject-dirty", E::EjectDirty, StateSet::only(G::PresentM))
                    .action(A::WriteMemory)
                    .to(StateSet::only(G::Absent)),
            ],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    fn grants_to(step: &DirStep) -> Vec<CacheId> {
        step.sends
            .iter()
            .filter_map(|s| match s {
                DirSend::Unicast {
                    cmd: MemoryToCache::GetData { k, .. },
                    ..
                } => Some(*k),
                _ => None,
            })
            .collect()
    }

    fn has_broadcast(step: &DirStep) -> bool {
        step.sends
            .iter()
            .any(|s| matches!(s, DirSend::Broadcast { .. }))
    }

    #[test]
    fn read_miss_progression_absent_to_present_star() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(1);

        let s = d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        assert!(s.completes && !has_broadcast(&s));
        assert_eq!(grants_to(&s), vec![cid(0)]);
        assert_eq!(d.global_state(a), GlobalState::Present1);

        let s = d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert!(s.completes && !has_broadcast(&s));
        assert_eq!(d.global_state(a), GlobalState::PresentStar);

        let s = d.open(cid(2), a, OpenKind::ReadMiss, &mem);
        assert!(s.completes);
        assert_eq!(
            d.global_state(a),
            GlobalState::PresentStar,
            "Present* is absorbing for reads"
        );
    }

    #[test]
    fn read_miss_on_modified_broadcasts_query_and_waits() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(2);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem);
        assert_eq!(d.global_state(a), GlobalState::PresentM);

        let s = d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert!(!s.completes);
        assert!(d.awaiting(a));
        match &s.sends[0] {
            DirSend::Broadcast {
                cmd: MemoryToCache::BroadQuery { rw, .. },
                exclude,
                ..
            } => {
                assert_eq!(*rw, AccessKind::Read);
                assert_eq!(
                    *exclude,
                    cid(1),
                    "requester is never delivered its own broadcast"
                );
            }
            other => panic!("expected BROADQUERY, got {other:?}"),
        }

        // Owner supplies, keeping a clean copy.
        let s = d.supply(a, cid(0), Version::new(5), true, &mem);
        assert!(s.completes);
        assert_eq!(
            s.write_memory,
            Some((a, Version::new(5))),
            "write-back to memory"
        );
        assert_eq!(grants_to(&s), vec![cid(1)]);
        assert_eq!(
            d.global_state(a),
            GlobalState::PresentStar,
            "two clean copies now exist"
        );
        assert!(!d.awaiting(a));
    }

    #[test]
    fn read_miss_supply_via_racing_writeback_yields_present1() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(3);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        assert!(d.eject_satisfies_wait(a, cid(0), WritebackKind::Dirty));
        assert!(!d.eject_satisfies_wait(a, cid(0), WritebackKind::Clean));
        let s = d.supply(a, cid(0), Version::new(9), false, &mem);
        assert!(s.completes);
        assert_eq!(
            d.global_state(a),
            GlobalState::Present1,
            "only the requester holds a copy"
        );
    }

    #[test]
    fn write_miss_on_shared_broadcasts_invalidate() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(4);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem); // Present*

        let s = d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        assert!(s.completes, "invalidation needs no response");
        match &s.sends[0] {
            DirSend::Broadcast {
                cmd: MemoryToCache::BroadInv { exclude, .. },
                ..
            } => {
                assert_eq!(*exclude, cid(2));
            }
            other => panic!("expected BROADINV, got {other:?}"),
        }
        assert_eq!(grants_to(&s), vec![cid(2)]);
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn write_miss_on_present1_also_broadcasts() {
        // Present1 knows the copy count but not its identity, so the
        // invalidation must still be broadcast — the n-2 overhead of the
        // paper's write-miss case 2.
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(5);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem); // Present1
        let s = d.open(cid(1), a, OpenKind::WriteMiss, &mem);
        assert!(has_broadcast(&s));
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn write_miss_on_modified_queries_then_grants_exclusive() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(6);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem);
        let s = d.open(cid(1), a, OpenKind::WriteMiss, &mem);
        assert!(!s.completes);
        match &s.sends[0] {
            DirSend::Broadcast {
                cmd: MemoryToCache::BroadQuery { rw, .. },
                ..
            } => {
                assert_eq!(*rw, AccessKind::Write);
            }
            other => panic!("expected BROADQUERY(write), got {other:?}"),
        }
        let s = d.supply(a, cid(0), Version::new(2), false, &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd:
                    MemoryToCache::GetData {
                        exclusive, version, ..
                    },
                cost,
                ..
            } => {
                assert!(exclusive);
                assert_eq!(*version, Version::new(2));
                assert_eq!(*cost, SendCost::DataForwarded);
            }
            other => panic!("expected exclusive grant, got {other:?}"),
        }
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn mrequest_on_present1_grants_without_broadcast() {
        // "This justifies keeping the encoding of Present1" (3.2.4 case 1).
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(7);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        let s = d.open(cid(0), a, OpenKind::Modify(mem.read(a)), &mem);
        assert!(!has_broadcast(&s));
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::MGranted { granted, .. },
                ..
            } => {
                assert!(granted);
            }
            other => panic!("expected MGRANTED, got {other:?}"),
        }
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn mrequest_on_present_star_broadcasts_then_grants() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(8);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem); // Present*
        let s = d.open(cid(0), a, OpenKind::Modify(mem.read(a)), &mem);
        assert!(has_broadcast(&s));
        assert!(s.completes);
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn stale_mrequest_is_denied() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(9);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem); // PresentM at C0
        let s = d.open(cid(1), a, OpenKind::Modify(mem.read(a)), &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::MGranted { granted, k, .. },
                ..
            } => {
                assert!(!granted);
                assert_eq!(*k, cid(1));
            }
            other => panic!("expected MGRANTED(false), got {other:?}"),
        }
        assert_eq!(
            d.global_state(a),
            GlobalState::PresentM,
            "state untouched by stale request"
        );
    }

    #[test]
    fn clean_eject_shrinks_only_present1() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(10);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem); // Present1
        d.eject_clean(cid(0), a);
        assert_eq!(d.global_state(a), GlobalState::Absent);

        // Present* never shrinks on clean ejects (identities unknown).
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        d.eject_clean(cid(0), a);
        d.eject_clean(cid(1), a);
        assert_eq!(
            d.global_state(a),
            GlobalState::PresentStar,
            "Present* admits zero copies; only a later write miss resets it"
        );
    }

    #[test]
    fn dirty_eject_writes_back_and_clears() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(11);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem);
        let s = d.eject_dirty(cid(0), a, Version::new(3));
        assert_eq!(s.write_memory, Some((a, Version::new(3))));
        assert_eq!(d.global_state(a), GlobalState::Absent);
    }

    #[test]
    fn consistency_check_uses_admits() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        let a = blk(12);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem); // Present1
        let one = OwnerSet::singleton(4, cid(0));
        let none = OwnerSet::new(4);
        assert!(d.check_consistency(a, &one, &none).is_ok());
        let two: OwnerSet = [cid(0), cid(1)].into_iter().collect();
        assert!(d.check_consistency(a, &two, &none).is_err());
    }

    #[test]
    #[should_panic(expected = "write-back caches")]
    fn write_through_is_a_wiring_bug() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        d.open(
            cid(0),
            blk(0),
            OpenKind::WriteThrough(Version::new(1)),
            &mem,
        );
    }

    #[test]
    #[should_panic(expected = "supply without a waiting transaction")]
    fn unsolicited_supply_panics() {
        let mut d = TwoBitDirectory::new();
        let mem = MemoryImage::new();
        d.supply(blk(0), cid(0), Version::new(1), true, &mem);
    }
}
