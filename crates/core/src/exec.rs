//! The functional (untimed) executor: runs a whole Figure 3-1 system of
//! cache agents and memory controllers by processing every message to
//! quiescence before the next processor reference.
//!
//! This gives the protocols their *reference semantics*: each memory
//! reference is atomic at system level, so "the most recently written
//! value" is unambiguous and the [`Oracle`] can check coherence exactly.
//! It is also fast (no event queue), which makes it the engine behind the
//! property-based protocol tests. The timed simulator (`twobit-sim`)
//! drives the very same agents and controllers with latencies and
//! interleaving.

use crate::agent::{AgentPolicy, CacheAgent, Completion};
use crate::classical::{ClassicalDirectory, NullDirectory};
use crate::controller::{Controller, CtrlEmit};
use crate::directory::DirectoryProtocol;
use crate::full_map::FullMapDirectory;
use crate::full_map_local::FullMapLocalDirectory;
use crate::invariants;
use crate::tlb::TwoBitTlbDirectory;
use crate::two_bit::TwoBitDirectory;
use std::collections::{HashMap, VecDeque};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheToMemory, ConfigError, MemRef, MemoryToCache,
    ProtocolError, ProtocolKind, SystemConfig, SystemStats, Version,
};

/// Tracks the globally most recent write to every block and validates
/// every read against it — the section 1 coherence definition made
/// executable.
#[derive(Debug, Default)]
pub struct Oracle {
    expected: HashMap<BlockAddr, Version>,
    next_version: u64,
}

impl Oracle {
    /// A fresh oracle over an all-initial memory.
    #[must_use]
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Issues the version a new store will publish.
    pub fn fresh_version(&mut self) -> Version {
        self.next_version += 1;
        Version::new(self.next_version)
    }

    /// Records that a store of `version` to `a` has retired.
    pub fn record_write(&mut self, a: BlockAddr, version: Version) {
        self.expected.insert(a, version);
    }

    /// The version a coherent read of `a` must observe right now.
    #[must_use]
    pub fn expected(&self, a: BlockAddr) -> Version {
        self.expected
            .get(&a)
            .copied()
            .unwrap_or_else(Version::initial)
    }

    /// Validates a retired load.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::StaleRead`] if the load observed anything
    /// but the most recently written version.
    pub fn check_read(
        &self,
        reader: CacheId,
        a: BlockAddr,
        observed: Version,
    ) -> Result<(), ProtocolError> {
        let expected = self.expected(a);
        if observed == expected {
            Ok(())
        } else {
            Err(ProtocolError::StaleRead {
                a,
                reader,
                observed: observed.raw(),
                expected: expected.raw(),
            })
        }
    }
}

/// Constructs the directory protocol instance for a module under `config`.
///
/// # Panics
///
/// Panics if `config` names a bus protocol — those are built by
/// `twobit-bus`, not the directory executor.
pub fn build_protocol_for(config: &SystemConfig) -> Box<dyn DirectoryProtocol> {
    match config.protocol {
        ProtocolKind::TwoBit => Box::new(TwoBitDirectory::new()),
        ProtocolKind::TwoBitTlb { entries } => {
            Box::new(TwoBitTlbDirectory::new(entries as usize, config.caches))
        }
        ProtocolKind::FullMap => Box::new(FullMapDirectory::new(config.caches)),
        ProtocolKind::FullMapLocal => Box::new(FullMapLocalDirectory::new(config.caches)),
        ProtocolKind::ClassicalWriteThrough => Box::new(ClassicalDirectory::new()),
        ProtocolKind::StaticSoftware => Box::new(NullDirectory::new()),
        ProtocolKind::WriteOnce | ProtocolKind::Illinois => {
            unreachable!("bus protocols are built by twobit-bus, not the directory executor")
        }
    }
}

/// The cache policy matching a directory protocol.
///
/// `static_shared_from` is the public-block threshold used when the
/// protocol is the static software scheme.
///
/// # Panics
///
/// Panics if `protocol` is a bus protocol.
pub fn build_policy_for(protocol: ProtocolKind, static_shared_from: u64) -> AgentPolicy {
    match protocol {
        ProtocolKind::TwoBit | ProtocolKind::TwoBitTlb { .. } | ProtocolKind::FullMap => {
            AgentPolicy::WriteBack {
                use_exclusive: false,
            }
        }
        ProtocolKind::FullMapLocal => AgentPolicy::WriteBack {
            use_exclusive: true,
        },
        ProtocolKind::ClassicalWriteThrough => AgentPolicy::WriteThrough,
        ProtocolKind::StaticSoftware => AgentPolicy::Static {
            shared_from: static_shared_from,
        },
        ProtocolKind::WriteOnce | ProtocolKind::Illinois => {
            unreachable!("bus protocols are built by twobit-bus")
        }
    }
}

/// A complete directory-based multiprocessor executed functionally.
#[derive(Debug)]
pub struct FunctionalSystem {
    config: SystemConfig,
    agents: Vec<CacheAgent>,
    controllers: Vec<Controller>,
    oracle: Oracle,
    check_invariants: bool,
    references: u64,
}

impl FunctionalSystem {
    /// Builds a system per `config`. For the static software scheme,
    /// blocks numbered `>= static_shared_from` are treated as public.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid or names a
    /// bus protocol (those live in `twobit-bus`).
    pub fn new(config: SystemConfig) -> Result<Self, ConfigError> {
        Self::with_static_threshold(config, DEFAULT_STATIC_SHARED_FROM)
    }

    /// Like [`FunctionalSystem::new`] with an explicit public-block
    /// threshold for the static scheme.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid or names a
    /// bus protocol.
    pub fn with_static_threshold(
        config: SystemConfig,
        static_shared_from: u64,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.protocol.is_bus_based() {
            return Err(ConfigError::new(
                "bus protocols are executed by twobit-bus::BusSystem, not FunctionalSystem",
            ));
        }
        let policy = build_policy_for(config.protocol, static_shared_from);
        let agents = CacheId::all(config.caches)
            .map(|id| {
                let mut agent =
                    CacheAgent::new(id, config.cache, policy, config.duplicate_directory);
                agent.set_bias_entries(config.bias_entries);
                agent
            })
            .collect();
        let controllers = twobit_types::ModuleId::all(config.address_map.modules())
            .map(|m| {
                Controller::new(
                    m,
                    build_protocol_for(&config),
                    config.caches,
                    config.concurrency,
                )
            })
            .collect();
        Ok(FunctionalSystem {
            config,
            agents,
            controllers,
            oracle: Oracle::new(),
            check_invariants: false,
            references: 0,
        })
    }

    /// Enables full-system invariant checking after every reference
    /// (slow; used by the test suites).
    pub fn set_check_invariants(&mut self, on: bool) {
        self.check_invariants = on;
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The cache agents (for inspection).
    #[must_use]
    pub fn agents(&self) -> &[CacheAgent] {
        &self.agents
    }

    /// The memory controllers (for inspection).
    #[must_use]
    pub fn controllers(&self) -> &[Controller] {
        &self.controllers
    }

    /// The coherence oracle.
    #[must_use]
    pub fn oracle(&self) -> &Oracle {
        &self.oracle
    }

    /// Executes one memory reference by cache `k` to completion,
    /// validating coherence as it retires.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any coherence violation or impossible
    /// protocol event — either indicates a protocol bug (or an injected
    /// fault).
    pub fn do_ref(&mut self, k: CacheId, op: MemRef) -> Result<Completion, ProtocolError> {
        let store_version = match op.kind {
            AccessKind::Write => self.oracle.fresh_version(),
            AccessKind::Read => Version::initial(),
        };
        let start = self.agents[k.index()].start(op, store_version);
        let mut retired = start.completed;
        let mut to_memory: VecDeque<CacheToMemory> = start.sends.into();
        let mut to_caches: VecDeque<(CacheId, MemoryToCache)> = VecDeque::new();

        // Process to quiescence. Cache-bound deliveries drain first so
        // per-reference ordering matches the timed simulator's
        // (commands sent earlier arrive earlier).
        loop {
            if let Some((dst, msg)) = to_caches.pop_front() {
                let out = self.agents[dst.index()].on_network(msg)?;
                to_memory.extend(out.sends);
                if let Some(c) = out.completed {
                    debug_assert!(retired.is_none(), "a reference retires exactly once");
                    retired = Some(c);
                }
                continue;
            }
            if let Some(cmd) = to_memory.pop_front() {
                let module = self.config.address_map.module_of(cmd.block());
                let emits = self.controllers[module.index()].submit(cmd)?;
                for emit in emits {
                    match emit {
                        CtrlEmit::Unicast { to, cmd, .. } => to_caches.push_back((to, cmd)),
                        CtrlEmit::Broadcast { cmd, exclude, .. } => {
                            for id in CacheId::all(self.config.caches) {
                                if id != exclude {
                                    to_caches.push_back((id, cmd));
                                }
                            }
                        }
                    }
                }
                continue;
            }
            break;
        }

        let completion = retired.ok_or_else(|| ProtocolError::UnexpectedCommand {
            state: format!("{k} quiescent"),
            command: format!("{op} never retired"),
        })?;

        match op.kind {
            AccessKind::Read => self
                .oracle
                .check_read(k, op.addr.block, completion.observed)?,
            AccessKind::Write => self.oracle.record_write(op.addr.block, completion.observed),
        }
        self.references += 1;

        for controller in &self.controllers {
            if controller.busy() {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("{} busy at quiescence", controller.module()),
                    command: format!("after {op}"),
                });
            }
        }
        if self.check_invariants {
            invariants::check_system(&self.agents, &self.controllers, self.config.address_map)?;
        }
        Ok(completion)
    }

    /// Runs a sequence of (cache, reference) pairs.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ProtocolError`] encountered.
    pub fn run<I>(&mut self, refs: I) -> Result<(), ProtocolError>
    where
        I: IntoIterator<Item = (CacheId, MemRef)>,
    {
        for (k, op) in refs {
            self.do_ref(k, op)?;
        }
        Ok(())
    }

    /// Total references executed.
    #[must_use]
    pub fn references(&self) -> u64 {
        self.references
    }

    /// Collects statistics from every component.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        let mut stats = SystemStats::new(self.agents.len(), self.controllers.len());
        for (slot, agent) in stats.caches.iter_mut().zip(&self.agents) {
            *slot = *agent.stats();
        }
        for (slot, controller) in stats.controllers.iter_mut().zip(&self.controllers) {
            *slot = controller.stats();
        }
        stats
    }
}

/// Default first-public-block number for the static software scheme:
/// workloads in `twobit-workload` place shared blocks at and above this
/// address.
pub const DEFAULT_STATIC_SHARED_FROM: u64 = 1 << 32;

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::WordAddr;

    fn sys(n: usize, protocol: ProtocolKind) -> FunctionalSystem {
        let config = SystemConfig::with_defaults(n).with_protocol(protocol);
        let mut s = FunctionalSystem::new(config).unwrap();
        s.set_check_invariants(true);
        s
    }

    fn rd(b: u64) -> MemRef {
        MemRef::read(WordAddr::new(b, 0))
    }

    fn wr(b: u64) -> MemRef {
        MemRef::write(WordAddr::new(b, 0))
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    const DIRECTORY_PROTOCOLS: [ProtocolKind; 4] = [
        ProtocolKind::TwoBit,
        ProtocolKind::TwoBitTlb { entries: 4 },
        ProtocolKind::FullMap,
        ProtocolKind::FullMapLocal,
    ];

    #[test]
    fn single_cache_read_write_read() {
        for protocol in DIRECTORY_PROTOCOLS {
            let mut s = sys(1, protocol);
            s.do_ref(cid(0), rd(1)).unwrap();
            s.do_ref(cid(0), wr(1)).unwrap();
            let c = s.do_ref(cid(0), rd(1)).unwrap();
            assert_eq!(
                c.observed,
                s.oracle().expected(BlockAddr::new(1)),
                "{protocol}"
            );
        }
    }

    #[test]
    fn producer_consumer_sees_fresh_data() {
        for protocol in DIRECTORY_PROTOCOLS {
            let mut s = sys(2, protocol);
            // C0 writes, C1 reads, repeatedly — the read-miss-on-PresentM
            // path every iteration.
            for _ in 0..10 {
                s.do_ref(cid(0), wr(7)).unwrap();
                let c = s.do_ref(cid(1), rd(7)).unwrap();
                assert_eq!(
                    c.observed,
                    s.oracle().expected(BlockAddr::new(7)),
                    "{protocol}"
                );
            }
        }
    }

    #[test]
    fn write_write_ping_pong() {
        for protocol in DIRECTORY_PROTOCOLS {
            let mut s = sys(2, protocol);
            for i in 0..10 {
                let writer = cid(i % 2);
                s.do_ref(writer, wr(3)).unwrap();
            }
            let c = s.do_ref(cid(0), rd(3)).unwrap();
            assert_eq!(c.observed.raw(), 10, "{protocol}: last of 10 writes");
        }
    }

    #[test]
    fn shared_readers_then_one_writer_invalidates_all() {
        for protocol in DIRECTORY_PROTOCOLS {
            let mut s = sys(4, protocol);
            for i in 0..4 {
                s.do_ref(cid(i), rd(5)).unwrap();
            }
            s.do_ref(cid(0), wr(5)).unwrap();
            for i in 1..4 {
                let c = s.do_ref(cid(i), rd(5)).unwrap();
                assert_eq!(
                    c.observed.raw(),
                    1,
                    "{protocol}: reader {i} must see the write"
                );
            }
        }
    }

    #[test]
    fn two_bit_broadcasts_where_full_map_unicasts() {
        let mut two_bit = sys(8, ProtocolKind::TwoBit);
        let mut full_map = sys(8, ProtocolKind::FullMap);
        // Two readers then a third-party write: invalidation event.
        for s in [&mut two_bit, &mut full_map] {
            s.do_ref(cid(0), rd(9)).unwrap();
            s.do_ref(cid(1), rd(9)).unwrap();
            s.do_ref(cid(2), wr(9)).unwrap();
        }
        let tb = two_bit.stats();
        let fm = full_map.stats();
        let tb_received: u64 = tb.caches.iter().map(|c| c.commands_received.get()).sum();
        let fm_received: u64 = fm.caches.iter().map(|c| c.commands_received.get()).sum();
        assert_eq!(fm_received, 2, "full map touches exactly the two holders");
        assert_eq!(tb_received, 7, "two-bit touches all n-1 others");
        let tb_useless: u64 = tb.caches.iter().map(|c| c.useless_commands.get()).sum();
        assert_eq!(
            tb_useless, 5,
            "n-2 minus the one useful... 7 delivered, 2 useful"
        );
    }

    #[test]
    fn classical_write_through_broadcasts_every_store() {
        let config = SystemConfig {
            address_map: twobit_types::AddressMap::interleaved(1),
            ..SystemConfig::with_defaults(4)
        }
        .with_protocol(ProtocolKind::ClassicalWriteThrough);
        let mut s = FunctionalSystem::new(config).unwrap();
        s.set_check_invariants(true);
        s.do_ref(cid(0), rd(1)).unwrap();
        s.do_ref(cid(1), rd(1)).unwrap();
        for _ in 0..5 {
            s.do_ref(cid(2), wr(2)).unwrap(); // unrelated block: still broadcast
        }
        let stats = s.stats();
        let broadcasts: u64 = stats
            .controllers
            .iter()
            .map(|c| c.broadcasts_sent.get())
            .sum();
        assert_eq!(
            broadcasts, 5,
            "every store broadcasts under the classical scheme"
        );
        // And a racing reader still sees fresh data.
        s.do_ref(cid(0), wr(1)).unwrap();
        let c = s.do_ref(cid(1), rd(1)).unwrap();
        assert_eq!(c.observed, s.oracle().expected(BlockAddr::new(1)));
    }

    #[test]
    fn static_scheme_keeps_public_data_in_memory() {
        let config = SystemConfig::with_defaults(4).with_protocol(ProtocolKind::StaticSoftware);
        let mut s = FunctionalSystem::with_static_threshold(config, 1000).unwrap();
        s.set_check_invariants(true);
        // Public block 1000: every access goes to memory, always coherent.
        s.do_ref(cid(0), wr(1000)).unwrap();
        let c = s.do_ref(cid(1), rd(1000)).unwrap();
        assert_eq!(c.observed.raw(), 1);
        // Private blocks cache normally (per-CPU distinct).
        s.do_ref(cid(0), wr(1)).unwrap();
        s.do_ref(cid(0), rd(1)).unwrap();
        let stats = s.stats();
        assert_eq!(stats.caches[cid(0).index()].read_hits.get(), 1);
        let broadcasts: u64 = stats
            .controllers
            .iter()
            .map(|c| c.broadcasts_sent.get())
            .sum();
        assert_eq!(broadcasts, 0, "no coherence traffic at all");
    }

    #[test]
    fn mrequest_race_resolves_one_winner() {
        // The paper's 3.2.5 example seen end-to-end: two holders both
        // upgrade. Functionally serialized, the second sees the
        // invalidation and retries as a write miss; both stores land.
        for protocol in DIRECTORY_PROTOCOLS {
            let mut s = sys(2, protocol);
            s.do_ref(cid(0), rd(4)).unwrap();
            s.do_ref(cid(1), rd(4)).unwrap();
            s.do_ref(cid(0), wr(4)).unwrap();
            s.do_ref(cid(1), wr(4)).unwrap();
            let c = s.do_ref(cid(0), rd(4)).unwrap();
            assert_eq!(c.observed.raw(), 2, "{protocol}: both writes serialized");
        }
    }

    #[test]
    fn capacity_evictions_write_back_correctly() {
        for protocol in DIRECTORY_PROTOCOLS {
            let config = SystemConfig {
                cache: twobit_types::CacheOrg::new(2, 1, 4).unwrap(), // tiny: 2 blocks
                ..SystemConfig::with_defaults(2)
            }
            .with_protocol(protocol);
            let mut s = FunctionalSystem::new(config).unwrap();
            s.set_check_invariants(true);
            // Dirty many conflicting blocks on C0, then read them from C1.
            for b in 0..8u64 {
                s.do_ref(cid(0), wr(b)).unwrap();
            }
            for b in 0..8u64 {
                let c = s.do_ref(cid(1), rd(b)).unwrap();
                assert_eq!(
                    c.observed,
                    s.oracle().expected(BlockAddr::new(b)),
                    "{protocol}: block {b} after eviction churn"
                );
            }
        }
    }

    #[test]
    fn full_map_local_skips_mrequest_for_sole_owner() {
        let mut with_local = sys(2, ProtocolKind::FullMapLocal);
        let mut without = sys(2, ProtocolKind::FullMap);
        for s in [&mut with_local, &mut without] {
            s.do_ref(cid(0), rd(6)).unwrap();
            s.do_ref(cid(0), wr(6)).unwrap();
        }
        assert_eq!(
            with_local.stats().controllers[0].mrequests.get()
                + with_local.stats().controllers[1].mrequests.get(),
            0,
            "exclusive fill upgrades silently"
        );
        let fm_mreqs: u64 = without
            .stats()
            .controllers
            .iter()
            .map(|c| c.mrequests.get())
            .sum();
        assert_eq!(fm_mreqs, 1, "plain full map pays the MREQUEST");
    }

    #[test]
    fn oracle_rejects_fabricated_stale_read() {
        let oracle = {
            let mut o = Oracle::new();
            let v = o.fresh_version();
            o.record_write(BlockAddr::new(1), v);
            o
        };
        let err = oracle
            .check_read(cid(0), BlockAddr::new(1), Version::initial())
            .unwrap_err();
        assert!(matches!(err, ProtocolError::StaleRead { .. }));
    }

    #[test]
    fn bus_protocols_are_rejected() {
        let config = SystemConfig {
            address_map: twobit_types::AddressMap::interleaved(1),
            ..SystemConfig::with_defaults(2)
        }
        .with_protocol(ProtocolKind::Illinois);
        assert!(FunctionalSystem::new(config).is_err());
    }
}
