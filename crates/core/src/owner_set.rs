//! A compact set of cache identities — the "vector of bits with one
//! bit/cache" of the full-map scheme (section 2.4.2).

use serde::{Deserialize, Serialize};
use std::fmt;
use twobit_types::CacheId;

/// A bit set over cache ids, sized at construction (the full map's fixed
/// design-time width — exactly the expansibility limitation the paper
/// criticizes; the two-bit scheme's whole point is to avoid carrying one
/// of these per block).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OwnerSet {
    words: Vec<u64>,
    capacity: usize,
}

impl OwnerSet {
    /// An empty set able to hold ids `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        OwnerSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// A singleton set.
    #[must_use]
    pub fn singleton(capacity: usize, id: CacheId) -> Self {
        let mut s = OwnerSet::new(capacity);
        s.insert(id);
        s
    }

    /// Maximum id capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Adds `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds the capacity — the full map physically
    /// cannot represent a cache beyond its design width.
    pub fn insert(&mut self, id: CacheId) -> bool {
        let i = id.index();
        assert!(
            i < self.capacity,
            "cache {id} exceeds map width {}",
            self.capacity
        );
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `id`; returns whether it was present. Ids beyond capacity
    /// are trivially absent.
    pub fn remove(&mut self, id: CacheId) -> bool {
        let i = id.index();
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, id: CacheId) -> bool {
        let i = id.index();
        i < self.capacity && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The sole member, if the set is a singleton.
    #[must_use]
    pub fn sole_member(&self) -> Option<CacheId> {
        if self.len() == 1 {
            self.iter().next()
        } else {
            None
        }
    }

    /// Iterates members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = CacheId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(CacheId::new(wi * 64 + b))
                } else {
                    None
                }
            })
        })
    }
}

impl fmt::Display for OwnerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CacheId> for OwnerSet {
    /// Collects ids into a set sized to the largest id seen.
    fn from_iter<I: IntoIterator<Item = CacheId>>(iter: I) -> Self {
        let ids: Vec<CacheId> = iter.into_iter().collect();
        let cap = ids.iter().map(|id| id.index() + 1).max().unwrap_or(0);
        let mut s = OwnerSet::new(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = OwnerSet::new(16);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(CacheId::new(3)));
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = OwnerSet::new(100);
        assert!(s.insert(CacheId::new(70)));
        assert!(!s.insert(CacheId::new(70)), "double insert reports not-new");
        assert!(s.contains(CacheId::new(70)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(CacheId::new(70)));
        assert!(!s.remove(CacheId::new(70)));
        assert!(s.is_empty());
    }

    #[test]
    fn sole_member_detection() {
        let mut s = OwnerSet::new(8);
        s.insert(CacheId::new(5));
        assert_eq!(s.sole_member(), Some(CacheId::new(5)));
        s.insert(CacheId::new(2));
        assert_eq!(s.sole_member(), None);
    }

    #[test]
    fn iter_in_order_across_words() {
        let mut s = OwnerSet::new(130);
        for i in [128usize, 0, 65] {
            s.insert(CacheId::new(i));
        }
        let got: Vec<usize> = s.iter().map(CacheId::index).collect();
        assert_eq!(got, vec![0, 65, 128]);
    }

    #[test]
    #[should_panic(expected = "exceeds map width")]
    fn insert_beyond_capacity_panics() {
        let mut s = OwnerSet::new(4);
        s.insert(CacheId::new(4));
    }

    #[test]
    fn singleton_and_clear() {
        let mut s = OwnerSet::singleton(8, CacheId::new(1));
        assert_eq!(s.len(), 1);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn from_iterator_sizes_to_contents() {
        let s: OwnerSet = [CacheId::new(2), CacheId::new(9)].into_iter().collect();
        assert!(s.contains(CacheId::new(9)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_string(), "{C2,C9}");
    }
}
