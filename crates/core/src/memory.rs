//! A memory module's storage, in the data-as-version model.

use crate::blockmap::BlockMap;
use serde::{Deserialize, Serialize};
use twobit_types::{BlockAddr, Version};

/// The block storage of one memory module (`M_j` in Figure 3-1).
///
/// Blocks never written still hold their initial image
/// ([`Version::initial`]); only written blocks occupy space. Storage is a
/// [`BlockMap`], so the `read` on every memory-sourced grant is a paged
/// array probe rather than a hash lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryImage {
    blocks: BlockMap<Version>,
}

impl MemoryImage {
    /// An all-initial memory image.
    #[must_use]
    pub fn new() -> Self {
        MemoryImage::default()
    }

    /// The current content (version) of block `a`.
    #[must_use]
    pub fn read(&self, a: BlockAddr) -> Version {
        self.blocks.get(a).copied().unwrap_or_else(Version::initial)
    }

    /// Overwrites block `a` (a write-back or write-through landing).
    pub fn write(&mut self, a: BlockAddr, version: Version) {
        self.blocks.insert(a, version);
    }

    /// Iterates over blocks that have ever been written, in ascending
    /// block order.
    pub fn written_blocks(&self) -> impl Iterator<Item = (BlockAddr, Version)> + '_ {
        self.blocks.iter().map(|(a, &v)| (a, v))
    }

    /// Number of blocks ever written.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_initial() {
        let m = MemoryImage::new();
        assert_eq!(m.read(BlockAddr::new(99)), Version::initial());
        assert!(m.is_empty());
    }

    #[test]
    fn write_then_read() {
        let mut m = MemoryImage::new();
        m.write(BlockAddr::new(1), Version::new(5));
        assert_eq!(m.read(BlockAddr::new(1)), Version::new(5));
        m.write(BlockAddr::new(1), Version::new(7));
        assert_eq!(m.read(BlockAddr::new(1)), Version::new(7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn written_blocks_enumerates() {
        let mut m = MemoryImage::new();
        m.write(BlockAddr::new(1), Version::new(2));
        m.write(BlockAddr::new(3), Version::new(4));
        let got: Vec<_> = m
            .written_blocks()
            .map(|(a, v)| (a.number(), v.raw()))
            .collect();
        assert_eq!(got, vec![(1, 2), (3, 4)], "ascending block order");
    }
}
