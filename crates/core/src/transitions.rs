//! Declarative guarded-action transition tables for the directory
//! protocols, and the machinery that reconciles the executable `step()`
//! paths against them.
//!
//! Every [`DirectoryProtocol`] implementation in this crate exposes its
//! transition relation as data: a [`TransitionTable`] of guarded rules,
//! each naming the triggering [`EventKind`], the global states it fires
//! from, the boolean [`Cond`]itions it requires, the abstract
//! [`ActionKind`]s it performs, and the successor-state set. The tables
//! exist so the relation can be *analyzed* — exhaustiveness, determinism,
//! dead rules, invariant preservation, broadcast necessity (see the
//! `twobit-lint` crate) — instead of only being executed.
//!
//! Two mechanisms keep the tables honest:
//!
//! * [`Reconciled`] wraps any protocol and checks, call by call, that
//!   every observed `open`/`supply`/eject decision is explained by
//!   exactly the rules of the table — same source state, same abstract
//!   actions, an admitted successor state. Mismatches accumulate in a
//!   shared [`ViolationSink`].
//! * `ModelChecker::reconcile_tables` (see
//!   [`model_check`](crate::model_check)) arms that wrapper inside the
//!   bounded model checker, differentially replaying every edge of the
//!   explored state DAG against the table.
//!
//! The abstraction is deliberately coarse where the paper's schemes
//! differ mechanically: an [`ActionKind::Invalidate`] stands for a
//! `BROADINV` broadcast (two-bit), a set of targeted `INV`s (full-map),
//! or either (the translation-buffer scheme) — the [`Delivery`] field
//! records which shapes a scheme admits, which is precisely what the
//! broadcast-necessity analysis inspects.

use crate::directory::{DirSend, DirStep, DirectoryProtocol, OpenKind};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use twobit_types::{
    BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version, WritebackKind,
};

/// The events a directory protocol reacts to: the trait calls of
/// [`DirectoryProtocol`], with `open`'s [`OpenKind`]s split out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// `open(.., OpenKind::ReadMiss, ..)`.
    ReadMiss,
    /// `open(.., OpenKind::WriteMiss, ..)`.
    WriteMiss,
    /// `open(.., OpenKind::Modify(v), ..)` — an MREQUEST.
    Modify,
    /// `open(.., OpenKind::WriteThrough(v), ..)`.
    WriteThrough,
    /// `open(.., OpenKind::DirectRead, ..)`.
    DirectRead,
    /// `supply(..)` — data resolving an awaited transaction.
    Supply,
    /// `eject_clean(..)` — an advisory clean-replacement notice.
    EjectClean,
    /// `eject_dirty(..)` — a dirty replacement's write-back landing.
    EjectDirty,
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventKind::ReadMiss => "read-miss",
            EventKind::WriteMiss => "write-miss",
            EventKind::Modify => "modify",
            EventKind::WriteThrough => "write-through",
            EventKind::DirectRead => "direct-read",
            EventKind::Supply => "supply",
            EventKind::EjectClean => "eject-clean",
            EventKind::EjectDirty => "eject-dirty",
        })
    }
}

/// A boolean guard variable whose value is decided per call, not per
/// state. Each scheme gives the variable its own concrete reading; the
/// table only cares that it is a boolean the guards may test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// The [`EventKind::Modify`] requester's copy is current: the two-bit
    /// scheme compares the carried version against memory, the full maps
    /// check the requester is a recorded holder.
    Fresh,
    /// The waiting transaction a [`EventKind::Supply`] resolves was a
    /// write miss.
    WaitWrite,
    /// The [`EventKind::Supply`]ing cache kept a clean copy (a
    /// `BROADQUERY(read)`/`PURGE(read)` response, as opposed to an
    /// invalidating response or a racing write-back).
    Retains,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cond::Fresh => "fresh",
            Cond::WaitWrite => "wait-write",
            Cond::Retains => "retains",
        })
    }
}

const fn mask(s: GlobalState) -> u8 {
    match s {
        GlobalState::Absent => 1 << 0,
        GlobalState::Present1 => 1 << 1,
        GlobalState::PresentStar => 1 << 2,
        GlobalState::PresentM => 1 << 3,
    }
}

/// A set of [`GlobalState`]s, as a 4-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StateSet(u8);

impl StateSet {
    /// The empty set.
    pub const EMPTY: StateSet = StateSet(0);
    /// All four global states.
    pub const ALL: StateSet = StateSet(0b1111);
    /// The clean shared states `{Present1, Present*}`.
    pub const SHARED: StateSet =
        StateSet(mask(GlobalState::Present1) | mask(GlobalState::PresentStar));

    /// The singleton set `{s}`.
    #[must_use]
    pub const fn only(s: GlobalState) -> StateSet {
        StateSet(mask(s))
    }

    /// The set of the listed states.
    #[must_use]
    pub fn of(states: &[GlobalState]) -> StateSet {
        StateSet(states.iter().fold(0, |acc, &s| acc | mask(s)))
    }

    /// Membership test.
    #[must_use]
    pub const fn contains(self, s: GlobalState) -> bool {
        self.0 & mask(s) != 0
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: StateSet) -> StateSet {
        StateSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub const fn intersect(self, other: StateSet) -> StateSet {
        StateSet(self.0 & other.0)
    }

    /// `true` when no state is in the set.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the member states in encoding order.
    pub fn iter(self) -> impl Iterator<Item = GlobalState> {
        GlobalState::ALL
            .into_iter()
            .filter(move |&s| self.contains(s))
    }
}

impl fmt::Display for StateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for s in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// How a non-initiator command reaches the caches it concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// One broadcast to every cache but the initiator (`BROADINV`,
    /// `BROADQUERY`) — holder identities are unknown.
    Broadcast,
    /// Targeted unicasts to recorded holders (`INV`, `PURGE`).
    Targeted,
    /// Either shape, decided per call (the translation-buffer scheme:
    /// targeted on a buffer hit, broadcast on a miss).
    Either,
}

/// An abstract protocol action — the [`DirStep`] contents lifted to the
/// vocabulary the analyses reason in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionKind {
    /// A `GETDATA` grant to the initiator.
    Grant {
        /// Whether the fill is exclusive (write miss, or the Yen–Fu
        /// sole-reader optimization).
        exclusive: bool,
    },
    /// An `MGRANTED` reply to the initiator.
    ModifyGrant {
        /// Whether the upgrade was granted or denied as stale.
        granted: bool,
    },
    /// Invalidation of non-initiator copies — fire-and-forget.
    Invalidate {
        /// Broadcast, targeted, or per-call choice.
        delivery: Delivery,
    },
    /// A data recall (`BROADQUERY`/`PURGE`) that the protocol then waits
    /// on.
    Recall {
        /// Broadcast, targeted, or per-call choice.
        delivery: Delivery,
    },
    /// A block write into module memory (write-back landing or
    /// write-through update).
    WriteMemory,
}

/// A documented message-ordering guarantee a rule's emissions rely on.
///
/// The whole-system flow analyses (`twobit-lint`) flag every pair of
/// emissions whose delivery order is load-bearing; each flagged pair
/// must be covered by one of these declared guarantees or it is a
/// finding. The guarantees are *implemented* by the deployment layers:
/// `FifoLink` by both network models in `twobit-interconnect` (per-
/// connection FIFO framing) and the model checker's per-(source,
/// destination) channel queues; `AckBarrier` by the memory node's
/// inv-ack gate in `crates/dist/src/node.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderGuarantee {
    /// Per-(source, destination) links deliver messages in emission
    /// order. Orders any two emissions toward the *same* node that
    /// leave the source in a known order.
    FifoLink,
    /// The inv-ack barrier: completion replies emitted alongside an
    /// invalidation are withheld until every invalidation is
    /// acknowledged, and commands for the gated block are deferred, so
    /// nothing emitted for the block can overtake the invalidation
    /// round. Orders an invalidation before its rule's completion even
    /// across *different* destination nodes, where `FifoLink` says
    /// nothing.
    AckBarrier,
}

impl fmt::Display for OrderGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OrderGuarantee::FifoLink => "fifo-link",
            OrderGuarantee::AckBarrier => "ack-barrier",
        })
    }
}

/// The successor-state constraint of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// The global state is unchanged by the rule.
    Same,
    /// The global state after the rule is a member of the set.
    In(StateSet),
}

/// Declares one event a scheme reacts to: the states it may arrive in
/// and the condition variables its guards may test.
#[derive(Debug, Clone)]
pub struct EventSpec {
    /// The event.
    pub kind: EventKind,
    /// The states the event can be observed in. An event arriving
    /// outside its domain is a table/implementation disagreement.
    pub domain: StateSet,
    /// The condition variables meaningful for this event; guards may
    /// only test these.
    pub conds: Vec<Cond>,
}

impl EventSpec {
    /// A new event declaration.
    #[must_use]
    pub fn new(kind: EventKind, domain: StateSet, conds: &[Cond]) -> EventSpec {
        EventSpec {
            kind,
            domain,
            conds: conds.to_vec(),
        }
    }
}

/// One guarded-action rule: *when* `event` arrives in a state of `when`
/// with `requires` holding, *do* `actions` and move to a state admitted
/// by `next`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name, unique within its table.
    pub name: &'static str,
    /// Source file of the table entry (for finding provenance).
    pub file: &'static str,
    /// Source line of the table entry.
    pub line: u32,
    /// The triggering event.
    pub event: EventKind,
    /// The source states the guard admits.
    pub when: StateSet,
    /// Condition literals the guard requires, as `(variable, value)`
    /// conjuncts.
    pub requires: Vec<(Cond, bool)>,
    /// The abstract actions performed.
    pub actions: Vec<ActionKind>,
    /// The successor-state constraint.
    pub next: Next,
    /// `false` when the rule leaves the transaction awaiting a
    /// [`EventKind::Supply`].
    pub completes: bool,
    /// Ordering guarantees the rule's emissions rely on: declared when
    /// swapping two of the rule's emissions (or an emission of this
    /// rule with one of a successor rule) would change protocol
    /// behavior. The flow analyses check every such pair against these
    /// declarations.
    pub guarantees: Vec<OrderGuarantee>,
}

impl Rule {
    /// A new rule; prefer the [`rule!`](crate::rule) macro, which fills
    /// in provenance automatically.
    #[must_use]
    pub fn new(
        name: &'static str,
        file: &'static str,
        line: u32,
        event: EventKind,
        when: StateSet,
    ) -> Rule {
        Rule {
            name,
            file,
            line,
            event,
            when,
            requires: Vec::new(),
            actions: Vec::new(),
            next: Next::Same,
            completes: true,
            guarantees: Vec::new(),
        }
    }

    /// Adds a condition literal to the guard.
    #[must_use]
    pub fn requires(mut self, cond: Cond, value: bool) -> Rule {
        self.requires.push((cond, value));
        self
    }

    /// Adds an action.
    #[must_use]
    pub fn action(mut self, action: ActionKind) -> Rule {
        self.actions.push(action);
        self
    }

    /// Sets the successor-state set.
    #[must_use]
    pub fn to(mut self, next: StateSet) -> Rule {
        self.next = Next::In(next);
        self
    }

    /// Marks the rule as leaving the transaction awaiting a supply.
    #[must_use]
    pub fn awaits(mut self) -> Rule {
        self.completes = false;
        self
    }

    /// Declares an ordering guarantee the rule's emissions rely on.
    #[must_use]
    pub fn guarded_by(mut self, guarantee: OrderGuarantee) -> Rule {
        self.guarantees.push(guarantee);
        self
    }

    /// `file:line` of the table entry.
    #[must_use]
    pub fn provenance(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }
}

/// Builds a [`Rule`] with the provenance of the macro call site.
#[macro_export]
macro_rules! rule {
    ($name:literal, $event:expr, $when:expr) => {
        $crate::transitions::Rule::new($name, file!(), line!(), $event, $when)
    };
}

/// A protocol's complete transition relation as analyzable data.
#[derive(Debug, Clone)]
pub struct TransitionTable {
    /// The scheme's stable name (matches [`DirectoryProtocol::name`]).
    pub scheme: &'static str,
    /// Whether the scheme maintains per-block global state. The
    /// stateless comparators (classical write-through, static software)
    /// report a constant state, and the state-dependent invariants do
    /// not apply to them.
    pub tracks_state: bool,
    /// The declared events with their domains and condition variables.
    pub events: Vec<EventSpec>,
    /// The guarded-action rules.
    pub rules: Vec<Rule>,
}

impl TransitionTable {
    /// The declaration for `kind`, if the scheme reacts to it.
    #[must_use]
    pub fn spec(&self, kind: EventKind) -> Option<&EventSpec> {
        self.events.iter().find(|e| e.kind == kind)
    }

    /// Looks up a rule by name.
    #[must_use]
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Looks up a rule by name, mutably — used by tests and the seeded
    /// bug demo to break a shipped table on purpose.
    pub fn rule_mut(&mut self, name: &str) -> Option<&mut Rule> {
        self.rules.iter_mut().find(|r| r.name == name)
    }
}

/// The tables of all six shipped schemes, in protocol-tag order.
#[must_use]
pub fn shipped_tables() -> [&'static TransitionTable; 6] {
    [
        crate::two_bit::table(),
        crate::tlb::table(),
        crate::full_map::table(),
        crate::full_map_local::table(),
        crate::classical::classical_table(),
        crate::classical::null_table(),
    ]
}

// ---------------------------------------------------------------------
// Observation: lifting a concrete DirStep into the abstract vocabulary.
// ---------------------------------------------------------------------

/// A [`DirStep`] summarized into abstract-action shape.
#[derive(Debug, Default)]
struct Observed {
    grants: Vec<bool>,
    mgrants: Vec<bool>,
    inv_broadcasts: usize,
    inv_unicasts: usize,
    recall_broadcasts: usize,
    recall_unicasts: usize,
    unclassified: usize,
    wrote_memory: bool,
}

fn observe(step: &DirStep) -> Observed {
    let mut obs = Observed {
        wrote_memory: step.write_memory.is_some(),
        ..Observed::default()
    };
    for send in &step.sends {
        match send {
            DirSend::Unicast { cmd, .. } => match cmd {
                MemoryToCache::GetData { exclusive, .. } => obs.grants.push(*exclusive),
                MemoryToCache::MGranted { granted, .. } => obs.mgrants.push(*granted),
                MemoryToCache::Inv { .. } => obs.inv_unicasts += 1,
                MemoryToCache::Purge { .. } => obs.recall_unicasts += 1,
                MemoryToCache::BroadInv { .. } | MemoryToCache::BroadQuery { .. } => {
                    obs.unclassified += 1;
                }
            },
            DirSend::Broadcast { cmd, .. } => match cmd {
                MemoryToCache::BroadInv { .. } => obs.inv_broadcasts += 1,
                MemoryToCache::BroadQuery { .. } => obs.recall_broadcasts += 1,
                MemoryToCache::GetData { .. }
                | MemoryToCache::MGranted { .. }
                | MemoryToCache::Inv { .. }
                | MemoryToCache::Purge { .. } => obs.unclassified += 1,
            },
        }
    }
    obs
}

/// Whether observed broadcast/unicast counts fit an optional action's
/// delivery. Invalidations are fire-and-forget and may be vacuous when
/// targeted (no other holder to invalidate); a targeted recall names the
/// single recorded owner, so exactly one is required. A vacuous `Either`
/// recall (zero sends) is admitted: a translation-buffer entry emptied
/// by racing ejects rewrites the broadcast into zero unicasts.
fn delivery_matches(
    want: Option<Delivery>,
    broadcasts: usize,
    unicasts: usize,
    exact_one_targeted: bool,
) -> bool {
    match want {
        None => broadcasts == 0 && unicasts == 0,
        Some(Delivery::Broadcast) => broadcasts == 1 && unicasts == 0,
        Some(Delivery::Targeted) => broadcasts == 0 && (!exact_one_targeted || unicasts == 1),
        Some(Delivery::Either) => broadcasts <= 1 && (broadcasts == 0 || unicasts == 0),
    }
}

fn multiset_eq(a: &[bool], b: &[bool]) -> bool {
    let count = |v: &[bool]| (v.iter().filter(|&&x| x).count(), v.len());
    count(a) == count(b)
}

fn actions_match(actions: &[ActionKind], obs: &Observed) -> bool {
    if obs.unclassified > 0 {
        return false;
    }
    let mut grants = Vec::new();
    let mut mgrants = Vec::new();
    let mut inv = None;
    let mut recall = None;
    let mut wm = false;
    for action in actions {
        match *action {
            ActionKind::Grant { exclusive } => grants.push(exclusive),
            ActionKind::ModifyGrant { granted } => mgrants.push(granted),
            ActionKind::Invalidate { delivery } => inv = Some(delivery),
            ActionKind::Recall { delivery } => recall = Some(delivery),
            ActionKind::WriteMemory => wm = true,
        }
    }
    multiset_eq(&grants, &obs.grants)
        && multiset_eq(&mgrants, &obs.mgrants)
        && wm == obs.wrote_memory
        && delivery_matches(inv, obs.inv_broadcasts, obs.inv_unicasts, false)
        && delivery_matches(recall, obs.recall_broadcasts, obs.recall_unicasts, true)
}

fn next_admits(next: Next, before: GlobalState, after: GlobalState) -> bool {
    match next {
        Next::Same => after == before,
        Next::In(set) => set.contains(after),
    }
}

// ---------------------------------------------------------------------
// The reconciling decorator.
// ---------------------------------------------------------------------

/// A shared, clone-tolerant collector of table/implementation
/// disagreements. Cloning (as the model checker does when branching
/// system states) shares the underlying buffer, so violations found on
/// any branch surface in one place.
#[derive(Debug, Clone, Default)]
pub struct ViolationSink(Arc<Mutex<Vec<String>>>);

/// Cap on distinct recorded violations: the model checker can replay
/// the same disagreeing edge from many interleavings, and unbounded
/// growth would help nobody.
const SINK_CAP: usize = 64;

impl ViolationSink {
    /// A new, empty sink.
    #[must_use]
    pub fn new() -> ViolationSink {
        ViolationSink::default()
    }

    /// Records a violation, deduplicating exact repeats and capping the
    /// buffer.
    pub fn push(&self, message: String) {
        let mut buf = self.0.lock().expect("violation sink poisoned");
        if buf.len() < SINK_CAP && !buf.contains(&message) {
            buf.push(message);
        }
    }

    /// `true` when no violation has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.lock().expect("violation sink poisoned").is_empty()
    }

    /// Drains and returns all recorded violations.
    #[must_use]
    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut *self.0.lock().expect("violation sink poisoned"))
    }

    /// A copy of the recorded violations, leaving them in place.
    #[must_use]
    pub fn snapshot(&self) -> Vec<String> {
        self.0.lock().expect("violation sink poisoned").clone()
    }
}

/// A decorator that runs an inner protocol unchanged while checking
/// every decision against its declarative [`TransitionTable`].
///
/// The wrapper observes the global state before and after each call,
/// lifts the returned [`DirStep`] into abstract actions, and searches
/// the table for a rule that explains the transition: matching event,
/// source state, condition literals (per-call condition values the
/// wrapper cannot compute, like a scheme's staleness test, are treated
/// existentially — the observed actions pin the rule down), actions,
/// completion flag, and admitted successor state. Disagreements are
/// recorded in the [`ViolationSink`] rather than panicking, so a
/// model-checking run can complete and report every mismatch at once.
#[derive(Debug)]
pub struct Reconciled {
    inner: Box<dyn DirectoryProtocol>,
    table: Arc<TransitionTable>,
    /// Shadow of the in-flight waits: block → was-it-a-write, to supply
    /// the [`Cond::WaitWrite`] value at [`EventKind::Supply`] time.
    waiting_write: HashMap<BlockAddr, bool>,
    sink: ViolationSink,
}

impl Reconciled {
    /// Wraps `inner` in a reconciling decorator against its own declared
    /// table. Returns `inner` unchanged (and records a violation) if the
    /// protocol declares no table.
    #[must_use]
    pub fn wrap(
        inner: Box<dyn DirectoryProtocol>,
        sink: ViolationSink,
    ) -> Box<dyn DirectoryProtocol> {
        match inner.transition_table() {
            Some(table) => Box::new(Reconciled {
                table: Arc::new(table.clone()),
                inner,
                waiting_write: HashMap::new(),
                sink,
            }),
            None => {
                sink.push(format!(
                    "{}: protocol declares no transition table",
                    inner.name()
                ));
                inner
            }
        }
    }

    /// Wraps `inner` against an explicit table — lets tests reconcile an
    /// implementation against a deliberately wrong table.
    #[must_use]
    pub fn with_table(
        inner: Box<dyn DirectoryProtocol>,
        table: TransitionTable,
        sink: ViolationSink,
    ) -> Reconciled {
        Reconciled {
            inner,
            table: Arc::new(table),
            waiting_write: HashMap::new(),
            sink,
        }
    }

    /// The sink violations are recorded into.
    #[must_use]
    pub fn sink(&self) -> &ViolationSink {
        &self.sink
    }

    fn check(
        &self,
        event: EventKind,
        known: &[(Cond, bool)],
        before: GlobalState,
        after: GlobalState,
        step: &DirStep,
    ) {
        let scheme = self.table.scheme;
        let Some(spec) = self.table.spec(event) else {
            self.sink.push(format!(
                "{scheme}: {event} observed but not declared in the table (state {before})"
            ));
            return;
        };
        if !spec.domain.contains(before) {
            self.sink.push(format!(
                "{scheme}: {event} observed in {before}, outside its declared domain {}",
                spec.domain
            ));
            return;
        }
        let obs = observe(step);
        let explained = self.table.rules.iter().any(|r| {
            r.event == event
                && r.when.contains(before)
                && r.requires.iter().all(|(cond, value)| {
                    known
                        .iter()
                        .find(|(k, _)| k == cond)
                        .is_none_or(|(_, v)| v == value)
                })
                && r.completes == step.completes
                && actions_match(&r.actions, &obs)
                && next_admits(r.next, before, after)
        });
        if !explained {
            let conds = known
                .iter()
                .map(|(c, v)| format!("{c}={v}"))
                .collect::<Vec<_>>()
                .join(", ");
            self.sink.push(format!(
                "{scheme}: no rule explains {event} [{conds}] in {before} → {after} \
                 (observed {obs:?})"
            ));
        }
    }
}

impl DirectoryProtocol for Reconciled {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn save_state(&self) -> twobit_obs::json::Json {
        // The wrapper's own `waiting_write` cache is rederivable from the
        // inner directory's waiting records, so delegating loses nothing
        // a restore needs — `restore_protocol` rebuilds the bare scheme.
        self.inner.save_state()
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        let before = self.inner.global_state(a);
        let step = self.inner.open(k, a, kind, mem);
        let after = self.inner.global_state(a);
        let event = match kind {
            OpenKind::ReadMiss => EventKind::ReadMiss,
            OpenKind::WriteMiss => EventKind::WriteMiss,
            OpenKind::Modify(_) => EventKind::Modify,
            OpenKind::WriteThrough(_) => EventKind::WriteThrough,
            OpenKind::DirectRead => EventKind::DirectRead,
        };
        if !step.completes {
            self.waiting_write
                .insert(a, matches!(kind, OpenKind::WriteMiss));
        }
        // `Fresh` is scheme-internal (version comparison / holder-set
        // membership); it stays existential in the rule search.
        self.check(event, &[], before, after, &step);
        step
    }

    fn supply(
        &mut self,
        a: BlockAddr,
        from: CacheId,
        version: Version,
        retains: bool,
        mem: &MemoryImage,
    ) -> DirStep {
        let before = self.inner.global_state(a);
        let step = self.inner.supply(a, from, version, retains, mem);
        let after = self.inner.global_state(a);
        let known = match self.waiting_write.remove(&a) {
            Some(write) => vec![(Cond::WaitWrite, write), (Cond::Retains, retains)],
            None => vec![(Cond::Retains, retains)],
        };
        self.check(EventKind::Supply, &known, before, after, &step);
        step
    }

    fn eject_satisfies_wait(&self, a: BlockAddr, k: CacheId, wb: WritebackKind) -> bool {
        self.inner.eject_satisfies_wait(a, k, wb)
    }

    fn eject_clean(&mut self, k: CacheId, a: BlockAddr) {
        let before = self.inner.global_state(a);
        self.inner.eject_clean(k, a);
        let after = self.inner.global_state(a);
        self.check(EventKind::EjectClean, &[], before, after, &DirStep::done());
    }

    fn eject_dirty(&mut self, k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        let before = self.inner.global_state(a);
        let step = self.inner.eject_dirty(k, a, version);
        let after = self.inner.global_state(a);
        self.check(EventKind::EjectDirty, &[], before, after, &step);
        step
    }

    fn awaiting(&self, a: BlockAddr) -> bool {
        self.inner.awaiting(a)
    }

    fn global_state(&self, a: BlockAddr) -> GlobalState {
        self.inner.global_state(a)
    }

    fn holders(&self, a: BlockAddr) -> Option<OwnerSet> {
        self.inner.holders(a)
    }

    fn tlb_counters(&self) -> Option<(u64, u64)> {
        self.inner.tlb_counters()
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        self.inner.transition_table()
    }

    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(Reconciled {
            inner: self.inner.clone_box(),
            table: Arc::clone(&self.table),
            waiting_write: self.waiting_write.clone(),
            sink: self.sink.clone(),
        })
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        // The shadow waiting map is fully determined by the inner
        // waiting records (inserted on `!completes` opens, removed on
        // supply), which the inner fingerprint already covers.
        self.inner.fingerprint(fp);
    }

    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        self.inner.check_consistency(a, clean, dirty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_bit::TwoBitDirectory;

    #[test]
    fn state_set_operations() {
        let shared = StateSet::SHARED;
        assert!(shared.contains(GlobalState::Present1));
        assert!(shared.contains(GlobalState::PresentStar));
        assert!(!shared.contains(GlobalState::Absent));
        assert_eq!(shared.iter().count(), 2);
        assert_eq!(
            StateSet::ALL.intersect(StateSet::only(GlobalState::PresentM)),
            StateSet::only(GlobalState::PresentM)
        );
        assert!(StateSet::EMPTY.is_empty());
        assert_eq!(shared.to_string(), "{Present1, Present*}");
        assert_eq!(
            StateSet::of(&[GlobalState::Present1, GlobalState::PresentStar]),
            shared
        );
    }

    #[test]
    fn delivery_matching_shapes() {
        // No action declared: no traffic allowed.
        assert!(delivery_matches(None, 0, 0, false));
        assert!(!delivery_matches(None, 0, 2, false));
        // Broadcast: exactly one broadcast.
        assert!(delivery_matches(Some(Delivery::Broadcast), 1, 0, false));
        assert!(!delivery_matches(Some(Delivery::Broadcast), 0, 1, false));
        // Targeted invalidations may be vacuous; targeted recalls not.
        assert!(delivery_matches(Some(Delivery::Targeted), 0, 0, false));
        assert!(delivery_matches(Some(Delivery::Targeted), 0, 3, false));
        assert!(!delivery_matches(Some(Delivery::Targeted), 0, 0, true));
        assert!(delivery_matches(Some(Delivery::Targeted), 0, 1, true));
        // Either: one broadcast, or any unicasts, never both.
        assert!(delivery_matches(Some(Delivery::Either), 1, 0, false));
        assert!(delivery_matches(Some(Delivery::Either), 0, 2, false));
        assert!(delivery_matches(Some(Delivery::Either), 0, 0, false));
        assert!(!delivery_matches(Some(Delivery::Either), 1, 1, false));
    }

    #[test]
    fn reconciled_accepts_the_shipped_two_bit_table() {
        let sink = ViolationSink::new();
        let mut d = Reconciled::wrap(Box::new(TwoBitDirectory::new()), sink.clone());
        let mem = MemoryImage::new();
        let (a, c0, c1) = (BlockAddr::new(1), CacheId::new(0), CacheId::new(1));
        d.open(c0, a, OpenKind::ReadMiss, &mem);
        d.open(c1, a, OpenKind::ReadMiss, &mem);
        d.open(c0, a, OpenKind::Modify(mem.read(a)), &mem);
        d.open(c1, a, OpenKind::ReadMiss, &mem); // recall, awaits
        d.supply(a, c0, Version::new(5), true, &mem);
        d.eject_clean(c0, a);
        assert!(
            sink.is_empty(),
            "shipped table must explain every step: {:?}",
            sink.snapshot()
        );
    }

    #[test]
    fn reconciled_flags_a_wrong_table() {
        // A table claiming a read miss from Absent grants *exclusively*
        // disagrees with the implementation's shared grant.
        let mut table = TwoBitDirectory::new()
            .transition_table()
            .expect("two-bit declares a table")
            .clone();
        table
            .rule_mut("read-miss-absent")
            .expect("rule exists")
            .actions = vec![ActionKind::Grant { exclusive: true }];
        let sink = ViolationSink::new();
        let mut d = Reconciled::with_table(Box::new(TwoBitDirectory::new()), table, sink.clone());
        let mem = MemoryImage::new();
        d.open(CacheId::new(0), BlockAddr::new(1), OpenKind::ReadMiss, &mem);
        let violations = sink.take();
        assert_eq!(violations.len(), 1, "exactly one mismatch: {violations:?}");
        assert!(violations[0].contains("read-miss"), "{violations:?}");
    }

    #[test]
    fn sink_dedups_and_caps() {
        let sink = ViolationSink::new();
        for _ in 0..3 {
            sink.push("same".to_string());
        }
        assert_eq!(sink.snapshot().len(), 1);
        for i in 0..100 {
            sink.push(format!("v{i}"));
        }
        assert!(sink.snapshot().len() <= 64);
        assert!(!sink.is_empty());
        let taken = sink.take();
        assert!(!taken.is_empty() && sink.is_empty());
    }
}
