//! The cache controller attached to each processor (`C_k`): classifies
//! processor references, runs the replacement protocol of section 3.2.1,
//! and services the coherence commands that arrive from memory
//! controllers.
//!
//! One agent type serves every scheme; an [`AgentPolicy`] selects the
//! cache discipline:
//!
//! * [`AgentPolicy::WriteBack`] — the paper's write-back caches
//!   (two-bit, full-map, full-map+tlb). With `use_exclusive`, fills may
//!   enter the Yen–Fu [`LocalState::Exclusive`] state and writes to it
//!   upgrade silently.
//! * [`AgentPolicy::WriteThrough`] — the classical scheme: stores update
//!   the local copy (if any) and post a `WRITETHRU` to memory,
//!   fire-and-forget; no allocation on store misses; no dirty lines ever.
//! * [`AgentPolicy::Static`] — the software scheme: blocks at or above
//!   `shared_from` are public and never cached (`DIRECTREAD`/`WRITETHRU`);
//!   blocks below are private, write-back cached, and written without any
//!   coherence transaction.
//!
//! The agent holds at most one outstanding processor reference
//! (a blocking cache, as 1984 designs were) but keeps servicing network
//! commands while stalled — that interleaving is where the section 3.2.5
//! races live, and the tests here reproduce them.

use crate::local::LocalState;
use std::fmt;
use twobit_cache::Cache;
use twobit_cache::LineMeta as _;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheOrg, CacheStats, CacheToMemory, Fingerprinter, MemRef,
    MemoryToCache, ProtocolError, Version, WritebackKind,
};

/// The cache discipline an agent runs (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AgentPolicy {
    /// Write-back private cache served by a directory.
    WriteBack {
        /// Whether fills may use the Exclusive local state
        /// (section 2.4.3) — only sound with a directory that tracks
        /// exclusive holders (the full-map+local scheme).
        use_exclusive: bool,
    },
    /// Write-through cache for the classical scheme (section 2.3).
    WriteThrough,
    /// The static software scheme (section 2.2).
    Static {
        /// First public (shared-writeable) block number: blocks at or
        /// above are never cached.
        shared_from: u64,
    },
}

/// Why the agent is stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    ReadMiss,
    WriteMiss,
    Modify,
    DirectRead,
}

/// The agent's single outstanding reference.
#[derive(Debug, Clone, Copy)]
struct Pending {
    a: BlockAddr,
    kind: PendingKind,
    op: MemRef,
    store_version: Option<Version>,
}

/// A processor reference that has retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The retired reference.
    pub op: MemRef,
    /// The data version observed (loads) or written (stores) — what the
    /// oracle checks.
    pub observed: Version,
    /// Whether the reference was satisfied without a directory
    /// transaction.
    pub was_hit: bool,
}

/// Result of presenting a processor reference to the cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StartOutcome {
    /// Set when the reference retired immediately (hit or fire-and-forget
    /// store); otherwise the agent is stalled until a network reply.
    pub completed: Option<Completion>,
    /// Commands to send to memory controllers.
    pub sends: Vec<CacheToMemory>,
}

/// Result of delivering a network command to the cache.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetOutcome {
    /// Responses to send to memory controllers.
    pub sends: Vec<CacheToMemory>,
    /// Set when the delivery retired the stalled reference.
    pub completed: Option<Completion>,
    /// Whether the delivery was a coherence command that consumed a cache
    /// directory cycle (for stolen-cycle accounting).
    pub counted: bool,
}

/// The BIAS memory of section 2.3: a small FIFO of block addresses whose
/// invalidation was already processed (and which have not been refetched
/// since). A repeated invalidation for a buffered block is absorbed
/// without a directory search — "the number of cache cycles spent in
/// processing invalidation requests can be minimized by a 'BIAS memory'
/// which filters out repeated invalidation requests for the same block."
///
/// Soundness invariant: a buffered block is never resident in the cache
/// (entries are inserted when a block becomes absent and removed on
/// fill), so skipping the search cannot skip a needed invalidation.
#[derive(Debug, Clone, Default)]
struct BiasFilter {
    entries: Vec<BlockAddr>,
    capacity: usize,
    cursor: usize,
}

impl BiasFilter {
    fn new(capacity: usize) -> Self {
        BiasFilter {
            entries: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
        }
    }

    fn contains(&self, a: BlockAddr) -> bool {
        self.entries.contains(&a)
    }

    fn insert(&mut self, a: BlockAddr) {
        if self.capacity == 0 || self.contains(a) {
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(a);
        } else {
            self.entries[self.cursor] = a;
            self.cursor = (self.cursor + 1) % self.capacity;
        }
    }

    fn remove(&mut self, a: BlockAddr) {
        self.entries.retain(|&e| e != a);
    }
}

/// The per-processor cache controller.
#[derive(Clone)]
pub struct CacheAgent {
    id: CacheId,
    cache: Cache<LocalState>,
    policy: AgentPolicy,
    duplicate_directory: bool,
    bias: BiasFilter,
    pending: Option<Pending>,
    stats: CacheStats,
}

impl fmt::Debug for CacheAgent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheAgent")
            .field("id", &self.id)
            .field("policy", &self.policy)
            .field("pending", &self.pending)
            .field("occupancy", &self.cache.occupancy())
            .finish()
    }
}

impl CacheAgent {
    /// Creates an agent with an empty cache.
    #[must_use]
    pub fn new(id: CacheId, org: CacheOrg, policy: AgentPolicy, duplicate_directory: bool) -> Self {
        CacheAgent {
            id,
            cache: Cache::new(org),
            policy,
            duplicate_directory,
            bias: BiasFilter::new(0),
            pending: None,
            stats: CacheStats::default(),
        }
    }

    /// Enables a BIAS memory of `entries` blocks (section 2.3); 0
    /// disables it. Resets the filter's contents.
    pub fn set_bias_entries(&mut self, entries: u32) {
        self.bias = BiasFilter::new(entries as usize);
    }

    /// This cache's identity.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.id
    }

    /// The tag store (read-only, for invariant checks).
    #[must_use]
    pub fn cache(&self) -> &Cache<LocalState> {
        &self.cache
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Mutable statistics (the timed simulator adds timing-derived
    /// counters).
    pub fn stats_mut(&mut self) -> &mut CacheStats {
        &mut self.stats
    }

    /// `true` while a reference is outstanding.
    #[must_use]
    pub fn is_stalled(&self) -> bool {
        self.pending.is_some()
    }

    /// Feeds this agent's complete future-relevant state into `fp` for
    /// the model checker's visited-set: tag store (replacement stamps
    /// rank-reduced, see [`Cache::canonical_sets`]), BIAS filter, and the
    /// outstanding reference. Statistics counters never influence
    /// behavior and are excluded, as are the per-run constants (`policy`
    /// is still included: it is cheap and guards against cross-config
    /// fingerprint reuse).
    pub fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.id.index());
        match self.policy {
            AgentPolicy::WriteBack { use_exclusive } => {
                fp.write_tag(0);
                fp.write_bool(use_exclusive);
            }
            AgentPolicy::WriteThrough => fp.write_tag(1),
            AgentPolicy::Static { shared_from } => {
                fp.write_tag(2);
                fp.write_u64(shared_from);
            }
        }
        for set in self.cache.canonical_sets() {
            fp.write_u64(u64::from(set.index));
            fp.write_u64(set.rng);
            fp.write_usize(set.lines.len());
            for line in set.lines {
                fp.write_u64(u64::from(line.way));
                fp.write_u64(line.addr.number());
                fp.write_tag(match line.state {
                    LocalState::Invalid => 0,
                    LocalState::Shared => 1,
                    LocalState::Exclusive => 2,
                    LocalState::Dirty => 3,
                });
                fp.write_u64(line.version.raw());
                fp.write_u64(u64::from(line.lru_rank));
                fp.write_u64(u64::from(line.fifo_rank));
            }
        }
        // BIAS: both the buffered blocks and the overwrite cursor steer
        // future filtering (the cursor picks the next slot replaced).
        fp.write_usize(self.bias.entries.len());
        for &a in &self.bias.entries {
            fp.write_u64(a.number());
        }
        fp.write_usize(self.bias.cursor);
        match &self.pending {
            None => fp.write_tag(0),
            Some(p) => {
                fp.write_tag(1);
                fp.write_u64(p.a.number());
                fp.write_tag(match p.kind {
                    PendingKind::ReadMiss => 0,
                    PendingKind::WriteMiss => 1,
                    PendingKind::Modify => 2,
                    PendingKind::DirectRead => 3,
                });
                fp.write_u64(p.op.addr.block.number());
                fp.write_u64(u64::from(p.op.addr.offset));
                fp.write_tag(match p.op.kind {
                    AccessKind::Read => 0,
                    AccessKind::Write => 1,
                });
                match p.store_version {
                    None => fp.write_tag(0),
                    Some(v) => {
                        fp.write_tag(1);
                        fp.write_u64(v.raw());
                    }
                }
            }
        }
    }

    /// Serializes this agent's complete state (tag store with exact
    /// replacement stamps, BIAS filter, outstanding reference, and —
    /// unlike [`CacheAgent::fingerprint`] — the statistics counters) as a
    /// checkpoint document for [`CacheAgent::restore_state`].
    ///
    /// Construction-time configuration (`policy`, cache organization,
    /// duplicate-directory flag) is *not* serialized: a restoring node
    /// rebuilds the agent from its own system config and the document
    /// only carries what evolved since. The id is included as a guard
    /// against restoring the wrong node's checkpoint.
    #[must_use]
    pub fn save_state(&self) -> Json {
        let pending = match &self.pending {
            None => Json::Null,
            Some(p) => obj([
                ("a", crate::snapshot::block_json(p.a)),
                (
                    "kind",
                    Json::Str(
                        match p.kind {
                            PendingKind::ReadMiss => "read_miss",
                            PendingKind::WriteMiss => "write_miss",
                            PendingKind::Modify => "modify",
                            PendingKind::DirectRead => "direct_read",
                        }
                        .into(),
                    ),
                ),
                ("op", crate::snapshot::mem_ref_json(p.op)),
                (
                    "sv",
                    match p.store_version {
                        None => Json::Null,
                        Some(v) => crate::snapshot::version_json(v),
                    },
                ),
            ]),
        };
        obj([
            ("id", crate::snapshot::cache_id_json(self.id)),
            (
                "cache",
                crate::snapshot::cache_snapshot_json(&self.cache.snapshot()),
            ),
            ("pending", pending),
            (
                "bias",
                obj([
                    ("capacity", num_u64(self.bias.capacity as u64)),
                    ("cursor", num_u64(self.bias.cursor as u64)),
                    (
                        "entries",
                        Json::Arr(
                            self.bias
                                .entries
                                .iter()
                                .map(|&a| crate::snapshot::block_json(a))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("stats", crate::snapshot::cache_stats_json(&self.stats)),
        ])
    }

    /// Restores the state captured by [`CacheAgent::save_state`] into
    /// this agent, which must have been constructed with the same
    /// configuration (id, cache organization, policy) as the saved one.
    ///
    /// # Errors
    ///
    /// Returns a message if the document is malformed, names a different
    /// cache id, or its tag-store snapshot does not fit this agent's
    /// cache organization. On error `self` is left unchanged.
    pub fn restore_state(&mut self, j: &Json) -> Result<(), String> {
        let id = crate::snapshot::cache_id_from(crate::snapshot::req(j, "id")?)?;
        if id != self.id {
            return Err(format!(
                "checkpoint is for cache {id}, this agent is {}",
                self.id
            ));
        }
        let snap = crate::snapshot::cache_snapshot_from(crate::snapshot::req(j, "cache")?)?;
        let cache = Cache::restore(self.cache.org(), &snap)?;
        let pending = match crate::snapshot::req(j, "pending")? {
            Json::Null => None,
            p => Some(Pending {
                a: crate::snapshot::block_from(crate::snapshot::req(p, "a")?)?,
                kind: match crate::snapshot::req(p, "kind")?.as_str() {
                    Some("read_miss") => PendingKind::ReadMiss,
                    Some("write_miss") => PendingKind::WriteMiss,
                    Some("modify") => PendingKind::Modify,
                    Some("direct_read") => PendingKind::DirectRead,
                    other => return Err(format!("bad pending kind {other:?}")),
                },
                op: crate::snapshot::mem_ref_from(crate::snapshot::req(p, "op")?)?,
                store_version: match crate::snapshot::req(p, "sv")? {
                    Json::Null => None,
                    v => Some(crate::snapshot::version_from(v)?),
                },
            }),
        };
        let b = crate::snapshot::req(j, "bias")?;
        let mut bias = BiasFilter::new(b.req_u64("capacity")? as usize);
        for e in crate::snapshot::req_array(b, "entries")? {
            bias.entries.push(crate::snapshot::block_from(e)?);
        }
        if bias.entries.len() > bias.capacity {
            return Err("BIAS checkpoint exceeds its own capacity".into());
        }
        bias.cursor = b.req_u64("cursor")? as usize;
        if bias.capacity > 0 && bias.cursor >= bias.capacity {
            return Err("BIAS cursor out of range".into());
        }
        let stats = crate::snapshot::cache_stats_from(crate::snapshot::req(j, "stats")?)?;
        self.cache = cache;
        self.pending = pending;
        self.bias = bias;
        self.stats = stats;
        Ok(())
    }

    /// Presents a processor reference. For stores, `store_version` is the
    /// fresh version this store will publish.
    ///
    /// # Panics
    ///
    /// Panics if a reference is already outstanding (the processor is
    /// blocked until the previous one retires).
    pub fn start(&mut self, op: MemRef, store_version: Version) -> StartOutcome {
        assert!(
            self.pending.is_none(),
            "{}: reference issued while stalled",
            self.id
        );
        match op.kind {
            AccessKind::Read => self.stats.reads.inc(),
            AccessKind::Write => self.stats.writes.inc(),
        }
        match self.policy {
            AgentPolicy::WriteBack { .. } => self.start_write_back(op, store_version, false),
            AgentPolicy::WriteThrough => self.start_write_through(op, store_version),
            AgentPolicy::Static { shared_from } => {
                if op.addr.block.number() >= shared_from {
                    self.start_static_public(op, store_version)
                } else {
                    // Private data: write-back, silent clean→dirty upgrade.
                    self.start_write_back(op, store_version, true)
                }
            }
        }
    }

    fn start_write_back(
        &mut self,
        op: MemRef,
        store_version: Version,
        silent_upgrade: bool,
    ) -> StartOutcome {
        let a = op.addr.block;
        let state = self.cache.state_of(a);
        match (op.kind, state) {
            (AccessKind::Read, s) if s.is_valid() => {
                self.cache.touch(a);
                self.stats.read_hits.inc();
                let observed = self.cache.version_of(a).expect("valid line has a version");
                StartOutcome {
                    completed: Some(Completion {
                        op,
                        observed,
                        was_hit: true,
                    }),
                    sends: Vec::new(),
                }
            }
            (AccessKind::Read, _) => {
                self.stats.read_misses.inc();
                let mut sends = self.make_room(a);
                sends.push(CacheToMemory::Request {
                    k: self.id,
                    a,
                    rw: AccessKind::Read,
                });
                self.pending = Some(Pending {
                    a,
                    kind: PendingKind::ReadMiss,
                    op,
                    store_version: None,
                });
                StartOutcome {
                    completed: None,
                    sends,
                }
            }
            (AccessKind::Write, LocalState::Dirty | LocalState::Exclusive) => {
                self.cache.touch(a);
                self.cache.set_state(a, LocalState::Dirty);
                self.cache.set_version(a, store_version);
                self.stats.write_hits_dirty.inc();
                StartOutcome {
                    completed: Some(Completion {
                        op,
                        observed: store_version,
                        was_hit: true,
                    }),
                    sends: Vec::new(),
                }
            }
            (AccessKind::Write, LocalState::Shared) if silent_upgrade => {
                // Static-scheme private data: no one else can hold it.
                self.cache.touch(a);
                self.cache.set_state(a, LocalState::Dirty);
                self.cache.set_version(a, store_version);
                self.stats.write_hits_dirty.inc();
                StartOutcome {
                    completed: Some(Completion {
                        op,
                        observed: store_version,
                        was_hit: true,
                    }),
                    sends: Vec::new(),
                }
            }
            (AccessKind::Write, LocalState::Shared) => {
                // Write hit on a previously unmodified block: MREQUEST
                // (section 3.2.4).
                self.cache.touch(a);
                self.stats.write_hits_clean.inc();
                self.pending = Some(Pending {
                    a,
                    kind: PendingKind::Modify,
                    op,
                    store_version: Some(store_version),
                });
                StartOutcome {
                    completed: None,
                    sends: vec![CacheToMemory::MRequest {
                        k: self.id,
                        a,
                        version: self.cache.version_of(a).expect("clean hit has a version"),
                    }],
                }
            }
            (AccessKind::Write, LocalState::Invalid) => {
                self.stats.write_misses.inc();
                let mut sends = self.make_room(a);
                sends.push(CacheToMemory::Request {
                    k: self.id,
                    a,
                    rw: AccessKind::Write,
                });
                self.pending = Some(Pending {
                    a,
                    kind: PendingKind::WriteMiss,
                    op,
                    store_version: Some(store_version),
                });
                StartOutcome {
                    completed: None,
                    sends,
                }
            }
        }
    }

    fn start_write_through(&mut self, op: MemRef, store_version: Version) -> StartOutcome {
        let a = op.addr.block;
        match op.kind {
            AccessKind::Read => {
                if self.cache.contains(a) {
                    self.cache.touch(a);
                    self.stats.read_hits.inc();
                    let observed = self.cache.version_of(a).expect("valid line has a version");
                    StartOutcome {
                        completed: Some(Completion {
                            op,
                            observed,
                            was_hit: true,
                        }),
                        sends: Vec::new(),
                    }
                } else {
                    self.stats.read_misses.inc();
                    let sends = self.make_room(a); // silent clean evictions
                    debug_assert!(sends.is_empty(), "write-through evictions are silent");
                    self.pending = Some(Pending {
                        a,
                        kind: PendingKind::ReadMiss,
                        op,
                        store_version: None,
                    });
                    StartOutcome {
                        completed: None,
                        sends: vec![CacheToMemory::Request {
                            k: self.id,
                            a,
                            rw: AccessKind::Read,
                        }],
                    }
                }
            }
            AccessKind::Write => {
                // Update the local copy (if present) and post through to
                // memory; no allocation on miss, no stall.
                let hit = self.cache.contains(a);
                if hit {
                    self.cache.touch(a);
                    self.cache.set_version(a, store_version);
                    self.stats.write_hits_dirty.inc();
                } else {
                    self.stats.write_misses.inc();
                }
                StartOutcome {
                    completed: Some(Completion {
                        op,
                        observed: store_version,
                        was_hit: hit,
                    }),
                    sends: vec![CacheToMemory::WriteThrough {
                        k: self.id,
                        a,
                        version: store_version,
                    }],
                }
            }
        }
    }

    fn start_static_public(&mut self, op: MemRef, store_version: Version) -> StartOutcome {
        let a = op.addr.block;
        debug_assert!(!self.cache.contains(a), "public blocks are never cached");
        match op.kind {
            AccessKind::Read => {
                self.stats.read_misses.inc();
                self.pending = Some(Pending {
                    a,
                    kind: PendingKind::DirectRead,
                    op,
                    store_version: None,
                });
                StartOutcome {
                    completed: None,
                    sends: vec![CacheToMemory::DirectRead { k: self.id, a }],
                }
            }
            AccessKind::Write => {
                self.stats.write_misses.inc();
                StartOutcome {
                    completed: Some(Completion {
                        op,
                        observed: store_version,
                        was_hit: false,
                    }),
                    sends: vec![CacheToMemory::WriteThrough {
                        k: self.id,
                        a,
                        version: store_version,
                    }],
                }
            }
        }
    }

    /// Runs the replacement protocol of section 3.2.1 for an incoming
    /// block `a`: picks a victim if `a`'s set is full, invalidates it, and
    /// emits the appropriate `EJECT` (plus `put` for dirty victims).
    fn make_room(&mut self, a: BlockAddr) -> Vec<CacheToMemory> {
        let Some(victim) = self.cache.peek_victim(a) else {
            return Vec::new();
        };
        let (va, vstate, vversion) = (victim.addr, victim.state, victim.version);
        self.cache.invalidate(va);
        match vstate {
            LocalState::Dirty => {
                self.stats.evictions_dirty.inc();
                vec![
                    CacheToMemory::Eject {
                        k: self.id,
                        olda: va,
                        wb: WritebackKind::Dirty,
                    },
                    CacheToMemory::PutData {
                        from: self.id,
                        a: va,
                        version: vversion,
                    },
                ]
            }
            LocalState::Shared | LocalState::Exclusive => {
                self.stats.evictions_clean.inc();
                match self.policy {
                    // Write-through and static caches have no directory
                    // state to maintain for clean lines: silent.
                    AgentPolicy::WriteThrough => Vec::new(),
                    AgentPolicy::Static { .. } => Vec::new(),
                    AgentPolicy::WriteBack { .. } => {
                        vec![CacheToMemory::Eject {
                            k: self.id,
                            olda: va,
                            wb: WritebackKind::Clean,
                        }]
                    }
                }
            }
            LocalState::Invalid => unreachable!("victims are valid lines"),
        }
    }

    /// Delivers a network command.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] for deliveries that are impossible under
    /// a correct protocol (e.g. a data grant with no pending miss).
    pub fn on_network(&mut self, msg: MemoryToCache) -> Result<NetOutcome, ProtocolError> {
        match msg {
            MemoryToCache::GetData {
                k,
                a,
                version,
                exclusive,
            } => {
                debug_assert_eq!(k, self.id, "misrouted grant");
                self.handle_grant(a, version, exclusive)
            }
            MemoryToCache::MGranted { k, a, granted } => {
                debug_assert_eq!(k, self.id, "misrouted MGRANTED");
                Ok(self.handle_mgranted(a, granted))
            }
            MemoryToCache::BroadInv { a, exclude } => {
                debug_assert_ne!(exclude, self.id, "BROADINV delivered to its initiator");
                Ok(self.handle_invalidate(a))
            }
            MemoryToCache::Inv { a, to } => {
                debug_assert_eq!(to, self.id, "misrouted INV");
                Ok(self.handle_invalidate(a))
            }
            MemoryToCache::BroadQuery { a, rw } => Ok(self.handle_query(a, rw)),
            MemoryToCache::Purge { a, to, rw } => {
                debug_assert_eq!(to, self.id, "misrouted PURGE");
                Ok(self.handle_query(a, rw))
            }
        }
    }

    fn handle_grant(
        &mut self,
        a: BlockAddr,
        version: Version,
        exclusive: bool,
    ) -> Result<NetOutcome, ProtocolError> {
        let pending = self
            .pending
            .take()
            .ok_or_else(|| ProtocolError::UnexpectedCommand {
                state: format!("{} idle", self.id),
                command: format!("get({a})"),
            })?;
        if pending.a != a {
            return Err(ProtocolError::UnexpectedCommand {
                state: format!("{} awaiting {}", self.id, pending.a),
                command: format!("get({a})"),
            });
        }
        // The block is becoming resident again: it must leave the BIAS
        // filter so future invalidations search the directory.
        self.bias.remove(a);
        let completion = match pending.kind {
            PendingKind::ReadMiss => {
                let use_exclusive = matches!(
                    self.policy,
                    AgentPolicy::WriteBack {
                        use_exclusive: true
                    }
                );
                let state = if exclusive && use_exclusive {
                    LocalState::Exclusive
                } else {
                    LocalState::Shared
                };
                self.cache.insert(a, state, version);
                Completion {
                    op: pending.op,
                    observed: version,
                    was_hit: false,
                }
            }
            PendingKind::WriteMiss => {
                let store_version = pending
                    .store_version
                    .expect("write miss carries its store version");
                self.cache.insert(a, LocalState::Dirty, store_version);
                Completion {
                    op: pending.op,
                    observed: store_version,
                    was_hit: false,
                }
            }
            PendingKind::DirectRead => {
                // Public block: consumed, never cached.
                Completion {
                    op: pending.op,
                    observed: version,
                    was_hit: false,
                }
            }
            PendingKind::Modify => {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("{} awaiting MGRANTED for {a}", self.id),
                    command: format!("get({a})"),
                });
            }
        };
        Ok(NetOutcome {
            sends: Vec::new(),
            completed: Some(completion),
            counted: false,
        })
    }

    fn handle_mgranted(&mut self, a: BlockAddr, granted: bool) -> NetOutcome {
        match self.pending {
            Some(Pending {
                a: pa,
                kind: PendingKind::Modify,
                op,
                store_version,
            }) if pa == a => {
                if granted {
                    let version = store_version.expect("modify carries its store version");
                    debug_assert!(
                        self.cache.contains(a),
                        "granted modify but the line vanished"
                    );
                    self.cache.set_state(a, LocalState::Dirty);
                    self.cache.set_version(a, version);
                    self.pending = None;
                    NetOutcome {
                        completed: Some(Completion {
                            op,
                            observed: version,
                            was_hit: true,
                        }),
                        ..NetOutcome::default()
                    }
                } else {
                    // Denied: our copy is gone (the invalidate ordered
                    // before this reply). Retry as a write miss.
                    debug_assert!(!self.cache.contains(a), "denied modify but line survives");
                    self.pending = Some(Pending {
                        a,
                        kind: PendingKind::WriteMiss,
                        op,
                        store_version,
                    });
                    let mut sends = self.make_room(a);
                    sends.push(CacheToMemory::Request {
                        k: self.id,
                        a,
                        rw: AccessKind::Write,
                    });
                    NetOutcome {
                        sends,
                        ..NetOutcome::default()
                    }
                }
            }
            // Stale reply: we already converted on the invalidate.
            _ => NetOutcome::default(),
        }
    }

    fn handle_invalidate(&mut self, a: BlockAddr) -> NetOutcome {
        // BIAS filter: a repeated invalidation for a block already known
        // absent is absorbed without a directory search or stolen cycle.
        if self.bias.contains(a) {
            debug_assert!(!self.cache.contains(a), "BIAS entry for a resident block");
            self.stats.commands_received.inc();
            self.stats.useless_commands.inc();
            self.stats.bias_filtered.inc();
            return NetOutcome {
                counted: true,
                ..NetOutcome::default()
            };
        }
        let matched = self.cache.contains(a);
        self.record_command(matched);
        let mut out = NetOutcome {
            counted: true,
            ..NetOutcome::default()
        };
        if matched {
            self.cache.invalidate(a);
            self.stats.invalidated_lines.inc();
            self.stats.effective_commands.inc();
        }
        self.bias.insert(a);
        // Pending MREQUEST on this block: the invalidate doubles as
        // MGRANTED(false) (section 3.2.5).
        if let Some(Pending {
            a: pa,
            kind: PendingKind::Modify,
            op,
            store_version,
        }) = self.pending
        {
            if pa == a {
                self.pending = Some(Pending {
                    a,
                    kind: PendingKind::WriteMiss,
                    op,
                    store_version,
                });
                out.sends.extend(self.make_room(a));
                out.sends.push(CacheToMemory::Request {
                    k: self.id,
                    a,
                    rw: AccessKind::Write,
                });
            }
        }
        out
    }

    fn handle_query(&mut self, a: BlockAddr, rw: AccessKind) -> NetOutcome {
        let state = self.cache.state_of(a);
        let matched = state.is_valid();
        self.record_command(matched);
        let mut out = NetOutcome {
            counted: true,
            ..NetOutcome::default()
        };
        match state {
            LocalState::Dirty | LocalState::Exclusive => {
                let version = self.cache.version_of(a).expect("valid line has a version");
                out.sends.push(CacheToMemory::PutData {
                    from: self.id,
                    a,
                    version,
                });
                self.stats.blocks_supplied.inc();
                self.stats.effective_commands.inc();
                match rw {
                    AccessKind::Read => {
                        // Reset the modified bit, keep a read-only copy.
                        self.cache.set_state(a, LocalState::Shared);
                    }
                    AccessKind::Write => {
                        // Reset the valid bit.
                        self.cache.invalidate(a);
                        self.stats.invalidated_lines.inc();
                    }
                }
            }
            LocalState::Shared | LocalState::Invalid => {
                // Not the owner: a two-bit BROADQUERY probes everyone and
                // most probes find nothing — the scheme's cost. (A clean
                // line can legitimately coexist with an in-flight query
                // only transiently; it owes no data.)
            }
        }
        out
    }

    fn record_command(&mut self, matched: bool) {
        self.stats.commands_received.inc();
        if matched {
            // A match always costs the cache a cycle, duplicate directory
            // or not.
            self.stats.stolen_cycles.inc();
        } else {
            self.stats.useless_commands.inc();
            if !self.duplicate_directory {
                // Without the parallel controller of section 4.4, even a
                // non-matching probe steals a directory cycle.
                self.stats.stolen_cycles.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::WordAddr;

    fn agent(policy: AgentPolicy) -> CacheAgent {
        CacheAgent::new(
            CacheId::new(0),
            CacheOrg::new(4, 2, 4).unwrap(),
            policy,
            false,
        )
    }

    fn wb() -> CacheAgent {
        agent(AgentPolicy::WriteBack {
            use_exclusive: false,
        })
    }

    fn read(b: u64) -> MemRef {
        MemRef::read(WordAddr::new(b, 0))
    }

    fn write(b: u64) -> MemRef {
        MemRef::write(WordAddr::new(b, 0))
    }

    fn grant(k: usize, a: u64, v: u64, excl: bool) -> MemoryToCache {
        MemoryToCache::GetData {
            k: CacheId::new(k),
            a: BlockAddr::new(a),
            version: Version::new(v),
            exclusive: excl,
        }
    }

    #[test]
    fn read_miss_then_fill_then_hit() {
        let mut a = wb();
        let out = a.start(read(1), Version::initial());
        assert!(out.completed.is_none());
        assert!(matches!(
            out.sends[0],
            CacheToMemory::Request {
                rw: AccessKind::Read,
                ..
            }
        ));
        assert!(a.is_stalled());

        let out = a.on_network(grant(0, 1, 3, false)).unwrap();
        let c = out.completed.unwrap();
        assert_eq!(c.observed, Version::new(3));
        assert!(!a.is_stalled());

        let out = a.start(read(1), Version::initial());
        let c = out.completed.unwrap();
        assert!(c.was_hit);
        assert_eq!(c.observed, Version::new(3));
        assert_eq!(a.stats().read_hits.get(), 1);
        assert_eq!(a.stats().read_misses.get(), 1);
    }

    #[test]
    fn write_miss_fills_dirty_with_store_version() {
        let mut a = wb();
        let out = a.start(write(2), Version::new(10));
        assert!(matches!(
            out.sends[0],
            CacheToMemory::Request {
                rw: AccessKind::Write,
                ..
            }
        ));
        let out = a.on_network(grant(0, 2, 4, true)).unwrap();
        let c = out.completed.unwrap();
        assert_eq!(
            c.observed,
            Version::new(10),
            "store's version, not memory's"
        );
        assert_eq!(a.cache().state_of(BlockAddr::new(2)), LocalState::Dirty);
    }

    #[test]
    fn write_hit_clean_sends_mrequest_and_waits() {
        let mut a = wb();
        a.start(read(3), Version::initial());
        a.on_network(grant(0, 3, 0, false)).unwrap();

        let out = a.start(write(3), Version::new(5));
        assert!(out.completed.is_none());
        assert!(matches!(out.sends[0], CacheToMemory::MRequest { .. }));
        assert_eq!(a.stats().write_hits_clean.get(), 1);

        let out = a
            .on_network(MemoryToCache::MGranted {
                k: CacheId::new(0),
                a: BlockAddr::new(3),
                granted: true,
            })
            .unwrap();
        let c = out.completed.unwrap();
        assert_eq!(c.observed, Version::new(5));
        assert_eq!(a.cache().state_of(BlockAddr::new(3)), LocalState::Dirty);
    }

    #[test]
    fn write_hit_dirty_is_silent() {
        let mut a = wb();
        a.start(write(4), Version::new(1));
        a.on_network(grant(0, 4, 0, true)).unwrap();
        let out = a.start(write(4), Version::new(2));
        assert!(out.completed.is_some());
        assert!(out.sends.is_empty(), "dirty hit needs no directory trip");
        assert_eq!(a.stats().write_hits_dirty.get(), 1);
    }

    #[test]
    fn broadinv_invalidates_and_converts_pending_modify() {
        // Section 3.2.5: BROADINV doubles as MGRANTED(false).
        let mut a = wb();
        a.start(read(5), Version::initial());
        a.on_network(grant(0, 5, 0, false)).unwrap();
        a.start(write(5), Version::new(9)); // MREQUEST outstanding

        let out = a
            .on_network(MemoryToCache::BroadInv {
                a: BlockAddr::new(5),
                exclude: CacheId::new(1),
            })
            .unwrap();
        assert!(!a.cache().contains(BlockAddr::new(5)));
        assert!(
            matches!(
                out.sends.last(),
                Some(CacheToMemory::Request {
                    rw: AccessKind::Write,
                    ..
                })
            ),
            "converted to a write miss"
        );
        assert!(a.is_stalled());
        // The store still completes once the write-miss grant arrives.
        let out = a.on_network(grant(0, 5, 3, true)).unwrap();
        assert_eq!(out.completed.unwrap().observed, Version::new(9));
    }

    #[test]
    fn stale_mgranted_after_conversion_is_dropped() {
        let mut a = wb();
        a.start(read(5), Version::initial());
        a.on_network(grant(0, 5, 0, false)).unwrap();
        a.start(write(5), Version::new(9));
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(5),
            exclude: CacheId::new(1),
        })
        .unwrap();
        // The controller had already replied false to the (now deleted)
        // MREQUEST; the reply arrives late.
        let out = a
            .on_network(MemoryToCache::MGranted {
                k: CacheId::new(0),
                a: BlockAddr::new(5),
                granted: false,
            })
            .unwrap();
        assert!(
            out.sends.is_empty() && out.completed.is_none(),
            "ignored as stale"
        );
    }

    #[test]
    fn query_makes_dirty_owner_supply_and_downgrade() {
        let mut a = wb();
        a.start(write(6), Version::new(4));
        a.on_network(grant(0, 6, 0, true)).unwrap();

        let out = a
            .on_network(MemoryToCache::BroadQuery {
                a: BlockAddr::new(6),
                rw: AccessKind::Read,
            })
            .unwrap();
        assert!(matches!(out.sends[0], CacheToMemory::PutData { .. }));
        assert_eq!(
            a.cache().state_of(BlockAddr::new(6)),
            LocalState::Shared,
            "modified bit reset, copy kept"
        );
        assert_eq!(a.stats().blocks_supplied.get(), 1);

        // A write query instead invalidates.
        let mut b = wb();
        b.start(write(6), Version::new(4));
        b.on_network(grant(0, 6, 0, true)).unwrap();
        b.on_network(MemoryToCache::BroadQuery {
            a: BlockAddr::new(6),
            rw: AccessKind::Write,
        })
        .unwrap();
        assert!(!b.cache().contains(BlockAddr::new(6)));
    }

    #[test]
    fn query_on_absent_block_is_counted_useless() {
        let mut a = wb();
        let out = a
            .on_network(MemoryToCache::BroadQuery {
                a: BlockAddr::new(7),
                rw: AccessKind::Read,
            })
            .unwrap();
        assert!(out.sends.is_empty());
        assert!(out.counted);
        assert_eq!(a.stats().useless_commands.get(), 1);
        assert_eq!(
            a.stats().stolen_cycles.get(),
            1,
            "no duplicate directory: cycle lost"
        );
    }

    #[test]
    fn duplicate_directory_saves_nonmatching_cycles() {
        let mut a = CacheAgent::new(
            CacheId::new(0),
            CacheOrg::new(4, 2, 4).unwrap(),
            AgentPolicy::WriteBack {
                use_exclusive: false,
            },
            true,
        );
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(8),
            exclude: CacheId::new(1),
        })
        .unwrap();
        assert_eq!(a.stats().useless_commands.get(), 1);
        assert_eq!(
            a.stats().stolen_cycles.get(),
            0,
            "filtered by the duplicate directory"
        );
    }

    #[test]
    fn replacement_emits_eject_protocol() {
        // 4 sets → blocks 0 and 8 and 16 collide (assoc 2).
        let mut a = wb();
        for b in [0u64, 8] {
            a.start(read(b), Version::initial());
            a.on_network(grant(0, b, 0, false)).unwrap();
        }
        // Dirty one of them.
        a.start(write(0), Version::new(2));
        a.on_network(MemoryToCache::MGranted {
            k: CacheId::new(0),
            a: BlockAddr::new(0),
            granted: true,
        })
        .unwrap();
        // Touch block 8 so block 0 is LRU, then miss block 16.
        a.start(read(8), Version::initial());
        let out = a.start(read(16), Version::initial());
        assert!(
            matches!(
                out.sends[0],
                CacheToMemory::Eject {
                    wb: WritebackKind::Dirty,
                    ..
                }
            ),
            "dirty victim announces a write-back: {:?}",
            out.sends
        );
        assert!(matches!(out.sends[1], CacheToMemory::PutData { .. }));
        assert!(matches!(out.sends[2], CacheToMemory::Request { .. }));
        assert_eq!(a.stats().evictions_dirty.get(), 1);
    }

    #[test]
    fn exclusive_fill_upgrades_silently() {
        let mut a = agent(AgentPolicy::WriteBack {
            use_exclusive: true,
        });
        a.start(read(1), Version::initial());
        a.on_network(grant(0, 1, 0, true)).unwrap();
        assert_eq!(a.cache().state_of(BlockAddr::new(1)), LocalState::Exclusive);
        let out = a.start(write(1), Version::new(6));
        assert!(out.completed.is_some());
        assert!(out.sends.is_empty(), "Yen-Fu's saved MREQUEST");
        assert_eq!(a.cache().state_of(BlockAddr::new(1)), LocalState::Dirty);
    }

    #[test]
    fn write_through_store_is_fire_and_forget() {
        let mut a = agent(AgentPolicy::WriteThrough);
        let out = a.start(write(1), Version::new(3));
        assert!(out.completed.is_some());
        assert!(matches!(out.sends[0], CacheToMemory::WriteThrough { .. }));
        assert!(!a.is_stalled());
        // The local copy (absent here) was not allocated.
        assert!(!a.cache().contains(BlockAddr::new(1)));
    }

    #[test]
    fn write_through_store_updates_resident_copy() {
        let mut a = agent(AgentPolicy::WriteThrough);
        a.start(read(1), Version::initial());
        a.on_network(grant(0, 1, 2, false)).unwrap();
        a.start(write(1), Version::new(7));
        assert_eq!(
            a.cache().version_of(BlockAddr::new(1)),
            Some(Version::new(7))
        );
        assert_eq!(
            a.cache().state_of(BlockAddr::new(1)),
            LocalState::Shared,
            "never dirty"
        );
    }

    #[test]
    fn static_public_blocks_bypass_the_cache() {
        let mut a = agent(AgentPolicy::Static { shared_from: 100 });
        let out = a.start(read(150), Version::initial());
        assert!(matches!(out.sends[0], CacheToMemory::DirectRead { .. }));
        let out = a.on_network(grant(0, 150, 9, false)).unwrap();
        assert_eq!(out.completed.unwrap().observed, Version::new(9));
        assert!(
            !a.cache().contains(BlockAddr::new(150)),
            "no fill for public data"
        );

        let out = a.start(write(150), Version::new(11));
        assert!(out.completed.is_some());
        assert!(matches!(out.sends[0], CacheToMemory::WriteThrough { .. }));
    }

    #[test]
    fn static_private_blocks_write_back_silently() {
        let mut a = agent(AgentPolicy::Static { shared_from: 100 });
        a.start(read(5), Version::initial());
        a.on_network(grant(0, 5, 0, false)).unwrap();
        let out = a.start(write(5), Version::new(2));
        assert!(out.completed.is_some());
        assert!(
            out.sends.is_empty(),
            "private writes need no coherence traffic"
        );
        assert_eq!(a.cache().state_of(BlockAddr::new(5)), LocalState::Dirty);
    }

    #[test]
    fn bias_filter_absorbs_repeated_invalidations() {
        let mut a = wb();
        a.set_bias_entries(4);
        // First invalidation for an absent block: searched, then buffered.
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(3),
            exclude: CacheId::new(1),
        })
        .unwrap();
        assert_eq!(a.stats().stolen_cycles.get(), 1);
        assert_eq!(a.stats().bias_filtered.get(), 0);
        // Repeats are filtered: counted as received but no cycle stolen.
        for _ in 0..3 {
            a.on_network(MemoryToCache::BroadInv {
                a: BlockAddr::new(3),
                exclude: CacheId::new(1),
            })
            .unwrap();
        }
        assert_eq!(a.stats().bias_filtered.get(), 3);
        assert_eq!(
            a.stats().stolen_cycles.get(),
            1,
            "filtered repeats steal nothing"
        );
        assert_eq!(
            a.stats().commands_received.get(),
            4,
            "still received and counted"
        );
    }

    #[test]
    fn bias_entry_clears_on_refetch() {
        let mut a = wb();
        a.set_bias_entries(4);
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(3),
            exclude: CacheId::new(1),
        })
        .unwrap();
        // Refetch the block: the BIAS entry must go, so the next
        // invalidation really invalidates.
        a.start(read(3), Version::initial());
        a.on_network(grant(0, 3, 5, false)).unwrap();
        assert!(a.cache().contains(BlockAddr::new(3)));
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(3),
            exclude: CacheId::new(1),
        })
        .unwrap();
        assert!(
            !a.cache().contains(BlockAddr::new(3)),
            "invalidation was not filtered"
        );
        assert_eq!(a.stats().invalidated_lines.get(), 1);
    }

    #[test]
    fn bias_capacity_rotates_fifo() {
        let mut a = wb();
        a.set_bias_entries(2);
        for b in [1u64, 2, 3] {
            a.on_network(MemoryToCache::BroadInv {
                a: BlockAddr::new(b),
                exclude: CacheId::new(1),
            })
            .unwrap();
        }
        // Block 1 was pushed out by block 3; a repeat for it searches again.
        let stolen = a.stats().stolen_cycles.get();
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(1),
            exclude: CacheId::new(1),
        })
        .unwrap();
        assert_eq!(
            a.stats().stolen_cycles.get(),
            stolen + 1,
            "evicted entry no longer filters"
        );
        // Block 3 is still buffered.
        a.on_network(MemoryToCache::BroadInv {
            a: BlockAddr::new(3),
            exclude: CacheId::new(1),
        })
        .unwrap();
        assert_eq!(
            a.stats().stolen_cycles.get(),
            stolen + 1,
            "resident entry filters"
        );
    }

    #[test]
    #[should_panic(expected = "issued while stalled")]
    fn double_issue_panics() {
        let mut a = wb();
        a.start(read(1), Version::initial());
        a.start(read(2), Version::initial());
    }

    #[test]
    fn unsolicited_grant_is_an_error() {
        let mut a = wb();
        let err = a.on_network(grant(0, 1, 0, false)).unwrap_err();
        assert!(matches!(err, ProtocolError::UnexpectedCommand { .. }));
    }
}
