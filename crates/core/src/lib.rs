//! The paper's contribution: the **two-bit directory cache-coherence
//! scheme** of Archibald & Baer (ISCA 1984), together with the directory
//! schemes it is evaluated against and the memory-controller machinery
//! that runs them.
//!
//! # Layout
//!
//! * Protocol decision logic — pure, untimed state machines implementing
//!   [`DirectoryProtocol`]:
//!   [`TwoBitDirectory`] (section 3), [`TwoBitTlbDirectory`]
//!   (section 4.4's translation buffer), [`FullMapDirectory`]
//!   (section 2.4.2), [`FullMapLocalDirectory`] (section 2.4.3),
//!   [`ClassicalDirectory`] (section 2.3), [`NullDirectory`]
//!   (section 2.2).
//! * [`Controller`] — the memory-module controller `K_j`: request queue
//!   with per-block conflict serialization and MREQUEST cancellation
//!   (section 3.2.5), module storage, race resolution for replacements
//!   crossing recalls.
//! * [`CacheAgent`] — the cache controller `C_k`: hit/miss
//!   classification, the replacement protocol (section 3.2.1), snoop
//!   servicing, and the BROADINV-as-MGRANTED(false) conversion.
//! * [`FunctionalSystem`] — an untimed whole-system executor with a
//!   coherence [`Oracle`]; the reference semantics that the timed
//!   simulator in `twobit-sim` must agree with.
//! * [`invariants`] — SWMR and directory-soundness checking.
//!
//! # Example: the section 3.2.5 write race, end to end
//!
//! ```
//! use twobit_core::FunctionalSystem;
//! use twobit_types::{CacheId, MemRef, SystemConfig, WordAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut system = FunctionalSystem::new(SystemConfig::with_defaults(2))?;
//! let (c0, c1) = (CacheId::new(0), CacheId::new(1));
//! let a = WordAddr::new(0x40, 0);
//! // Both caches read, then both write "at the same time".
//! system.do_ref(c0, MemRef::read(a))?;
//! system.do_ref(c1, MemRef::read(a))?;
//! system.do_ref(c0, MemRef::write(a))?;
//! system.do_ref(c1, MemRef::write(a))?;
//! // Coherent: the second write won.
//! let fin = system.do_ref(c0, MemRef::read(a))?;
//! assert_eq!(fin.observed.raw(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod blockmap;
mod classical;
mod controller;
mod directory;
mod exec;
pub mod flow;
mod fp;
mod full_map;
mod full_map_local;
pub mod invariants;
mod local;
mod memory;
pub mod model_check;
mod owner_set;
pub mod snapshot;
mod tlb;
pub mod transitions;
mod two_bit;

pub use agent::{AgentPolicy, CacheAgent, Completion, NetOutcome, StartOutcome};
pub use blockmap::{BlockMap, BlockSet};
pub use classical::{ClassicalDirectory, NullDirectory};
pub use controller::{Controller, CtrlEmit};
pub use directory::{DirSend, DirStep, DirectoryProtocol, OpenKind, SendCost};
pub use exec::{
    build_policy_for, build_protocol_for, FunctionalSystem, Oracle, DEFAULT_STATIC_SHARED_FROM,
};
pub use full_map::FullMapDirectory;
pub use full_map_local::FullMapLocalDirectory;
pub use local::LocalState;
pub use memory::MemoryImage;
pub use model_check::{
    Action, Counterexample, Exploration, FlightMsg, GuidedSearch, ModelChecker, Node, State,
};
pub use owner_set::OwnerSet;
pub use tlb::{TranslationBuffer, TwoBitTlbDirectory};
pub use transitions::{
    shipped_tables, ActionKind, Cond, Delivery, EventKind, EventSpec, Next, OrderGuarantee,
    Reconciled, Rule, StateSet, TransitionTable, ViolationSink,
};
pub use two_bit::TwoBitDirectory;
