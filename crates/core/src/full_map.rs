//! The full distributed map (section 2.4.2, Censier–Feautrier): `n+1` bits
//! per block — a presence bit per cache plus a modified bit. The directory
//! always knows exactly who holds what, so every coherence command is
//! targeted (`INV`, `PURGE`); this is the baseline the paper measures the
//! two-bit scheme's extra broadcasts against.

use crate::directory::{
    grant_forwarded, grant_from_memory, mgranted, DirSend, DirStep, DirectoryProtocol, OpenKind,
    SendCost,
};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::transitions::{
    ActionKind, Cond, Delivery, EventKind, EventSpec, OrderGuarantee, StateSet, TransitionTable,
};
use crate::two_bit::Waiting;
use std::collections::HashMap;
use std::sync::OnceLock;
use twobit_obs::json::{num_u64, obj, Json};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version,
    WritebackKind,
};

/// One block's full-map entry: presence vector plus modified bit.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    owners: OwnerSet,
    modified: bool,
}

/// The full-map (n+1 bit) directory of one memory module.
#[derive(Debug, Clone)]
pub struct FullMapDirectory {
    /// Design-time width of the presence vector — the expansibility limit
    /// the paper criticizes ("any expansion must be envisioned at the
    /// design stage of the memory controllers").
    width: usize,
    entries: HashMap<BlockAddr, Entry>,
    waiting: HashMap<BlockAddr, Waiting>,
}

impl FullMapDirectory {
    /// An empty directory with a presence vector of `width` caches.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "presence vector needs at least one bit");
        FullMapDirectory {
            width,
            entries: HashMap::new(),
            waiting: HashMap::new(),
        }
    }

    /// The presence-vector width this directory was built for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    fn entry(&mut self, a: BlockAddr) -> &mut Entry {
        let width = self.width;
        self.entries.entry(a).or_insert_with(|| Entry {
            owners: OwnerSet::new(width),
            modified: false,
        })
    }

    fn view(&self, a: BlockAddr) -> (usize, bool, Option<CacheId>) {
        match self.entries.get(&a) {
            Some(e) => (e.owners.len(), e.modified, e.owners.sole_member()),
            None => (0, false, None),
        }
    }

    fn inv(a: BlockAddr, to: CacheId) -> DirSend {
        DirSend::Unicast {
            to,
            cmd: MemoryToCache::Inv { a, to },
            cost: SendCost::Command,
        }
    }

    fn purge(a: BlockAddr, to: CacheId, rw: AccessKind) -> DirSend {
        DirSend::Unicast {
            to,
            cmd: MemoryToCache::Purge { a, to, rw },
            cost: SendCost::Command,
        }
    }

    /// Rebuilds a directory from a [`DirectoryProtocol::save_state`]
    /// checkpoint document.
    pub(crate) fn restore_json(j: &Json) -> Result<Self, String> {
        let width = j.req_u64("width")? as usize;
        if width == 0 {
            return Err("zero presence-vector width in checkpoint".into());
        }
        let mut d = FullMapDirectory::new(width);
        for e in crate::snapshot::req_array(j, "entries")? {
            let owners = crate::snapshot::owner_set_from(crate::snapshot::req(e, "o")?)?;
            if owners.capacity() != width {
                return Err("presence vector width mismatch".into());
            }
            d.entries.insert(
                crate::snapshot::block_from(crate::snapshot::req(e, "a")?)?,
                Entry {
                    owners,
                    modified: crate::snapshot::req(e, "m")?
                        .as_bool()
                        .ok_or("`m` is not a bool")?,
                },
            );
        }
        d.waiting = crate::snapshot::waiting_map_from(crate::snapshot::req(j, "waiting")?)?;
        Ok(d)
    }
}

impl DirectoryProtocol for FullMapDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(3); // scheme discriminant
                         // Entries are encoded raw (no empty-entry normalization): an
                         // empty presence vector left behind by ejects is still distinct
                         // directory state, and encoding it as-is can only cost dedup
                         // power, never soundness.
        let mut entries: Vec<(u64, &Entry)> =
            self.entries.iter().map(|(a, e)| (a.number(), e)).collect();
        entries.sort_unstable_by_key(|&(a, _)| a);
        fp.write_usize(entries.len());
        for (a, e) in entries {
            fp.write_u64(a);
            fp.write_bool(e.modified);
            fp.write_usize(e.owners.len());
            for k in e.owners.iter() {
                fp.write_usize(k.index());
            }
        }
        let mut waiting: Vec<(u64, usize, bool)> = self
            .waiting
            .iter()
            .map(|(a, w)| (a.number(), w.k.index(), w.write))
            .collect();
        waiting.sort_unstable();
        fp.write_usize(waiting.len());
        for (a, k, write) in waiting {
            fp.write_u64(a);
            fp.write_usize(k);
            fp.write_bool(write);
        }
    }

    fn name(&self) -> &'static str {
        "full-map"
    }

    fn save_state(&self) -> Json {
        let mut entries: Vec<_> = self.entries.iter().collect();
        entries.sort_by_key(|(a, _)| a.number());
        obj([
            ("width", num_u64(self.width as u64)),
            (
                "entries",
                Json::Arr(
                    entries
                        .into_iter()
                        .map(|(a, e)| {
                            obj([
                                ("a", crate::snapshot::block_json(*a)),
                                ("o", crate::snapshot::owner_set_json(&e.owners)),
                                ("m", Json::Bool(e.modified)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("waiting", crate::snapshot::waiting_map_json(&self.waiting)),
        ])
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        debug_assert!(!self.waiting.contains_key(&a), "open on a waiting block");
        let (count, modified, sole) = self.view(a);
        match kind {
            OpenKind::ReadMiss => {
                if modified {
                    let owner = sole.expect("modified entry must have exactly one owner");
                    self.waiting.insert(a, Waiting { k, write: false });
                    DirStep::awaiting(vec![Self::purge(a, owner, AccessKind::Read)])
                } else {
                    self.entry(a).owners.insert(k);
                    DirStep::done().with_send(grant_from_memory(k, a, mem, false))
                }
            }
            OpenKind::WriteMiss => {
                if modified {
                    let owner = sole.expect("modified entry must have exactly one owner");
                    self.waiting.insert(a, Waiting { k, write: true });
                    DirStep::awaiting(vec![Self::purge(a, owner, AccessKind::Write)])
                } else {
                    let mut step = DirStep::done();
                    if count > 0 {
                        let targets: Vec<CacheId> =
                            self.entries[&a].owners.iter().filter(|&i| i != k).collect();
                        for i in targets {
                            step = step.with_send(Self::inv(a, i));
                        }
                    }
                    let e = self.entry(a);
                    e.owners.clear();
                    e.owners.insert(k);
                    e.modified = true;
                    step.with_send(grant_from_memory(k, a, mem, true))
                }
            }
            OpenKind::Modify(_) => {
                let holds = self.entries.get(&a).is_some_and(|e| e.owners.contains(k));
                if !holds || modified {
                    // Stale: the requester's copy was invalidated in
                    // flight. Deny; it will retry as a write miss.
                    return DirStep::done().with_send(mgranted(k, a, false));
                }
                let targets: Vec<CacheId> =
                    self.entries[&a].owners.iter().filter(|&i| i != k).collect();
                let mut step = DirStep::done();
                for i in targets {
                    step = step.with_send(Self::inv(a, i));
                }
                let e = self.entry(a);
                e.owners.clear();
                e.owners.insert(k);
                e.modified = true;
                step.with_send(mgranted(k, a, true))
            }
            OpenKind::WriteThrough(_) | OpenKind::DirectRead => {
                panic!("full-map directory serves only write-back caches (got {kind:?})")
            }
        }
    }

    fn supply(
        &mut self,
        a: BlockAddr,
        from: CacheId,
        version: Version,
        retains: bool,
        _mem: &MemoryImage,
    ) -> DirStep {
        let waiting = self
            .waiting
            .remove(&a)
            .expect("supply without a waiting transaction");
        let e = self.entry(a);
        e.owners.clear();
        if retains && !waiting.write {
            e.owners.insert(from);
        }
        e.owners.insert(waiting.k);
        e.modified = waiting.write;
        DirStep::done()
            .with_memory_write(a, version)
            .with_send(grant_forwarded(waiting.k, a, version, waiting.write))
    }

    fn eject_satisfies_wait(&self, a: BlockAddr, k: CacheId, wb: WritebackKind) -> bool {
        // Only a *dirty* eject from the very cache the purge targeted can
        // stand in for the purge response.
        wb == WritebackKind::Dirty
            && self.waiting.contains_key(&a)
            && self
                .entries
                .get(&a)
                .is_some_and(|e| e.modified && e.owners.contains(k))
    }

    fn eject_clean(&mut self, k: CacheId, a: BlockAddr) {
        if let Some(e) = self.entries.get_mut(&a) {
            e.owners.remove(k);
            if e.owners.is_empty() {
                self.entries.remove(&a);
            }
        }
    }

    fn eject_dirty(&mut self, k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        if let Some(e) = self.entries.get_mut(&a) {
            e.owners.remove(k);
            e.modified = false;
            if e.owners.is_empty() {
                self.entries.remove(&a);
            }
        }
        DirStep::done().with_memory_write(a, version)
    }

    fn awaiting(&self, a: BlockAddr) -> bool {
        self.waiting.contains_key(&a)
    }

    fn global_state(&self, a: BlockAddr) -> GlobalState {
        match self.view(a) {
            (0, _, _) => GlobalState::Absent,
            (_, true, _) => GlobalState::PresentM,
            (1, false, _) => GlobalState::Present1,
            (_, false, _) => GlobalState::PresentStar,
        }
    }

    fn holders(&self, a: BlockAddr) -> Option<OwnerSet> {
        Some(
            self.entries
                .get(&a)
                .map_or_else(|| OwnerSet::new(self.width), |e| e.owners.clone()),
        )
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(table())
    }

    fn check_consistency(
        &self,
        a: BlockAddr,
        clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        let (_, modified, _) = self.view(a);
        let recorded = self.holders(a).expect("full map always has a holder view");
        let mut actual = OwnerSet::new(self.width);
        for id in clean.iter().chain(dirty.iter()) {
            actual.insert(id);
        }
        if recorded != actual {
            return Err(format!(
                "presence vector {recorded} but actual holders {actual}"
            ));
        }
        if modified != (dirty.len() == 1) || dirty.len() > 1 {
            return Err(format!(
                "modified bit {modified} inconsistent with {} dirty copies",
                dirty.len()
            ));
        }
        if modified && !clean.is_empty() {
            return Err("modified block also has clean copies".to_string());
        }
        Ok(())
    }
}

/// The full-map transition table. Identities are always known, so every
/// non-initiator command is [`Delivery::Targeted`]; successor sets are
/// wider than two-bit's in places (a read miss may rejoin a holder whose
/// eject notice is in flight, a clean eject may or may not empty the
/// vector) because the presence vector, not a 2-bit code, is the state.
pub(crate) fn table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        use GlobalState as G;
        let targeted = Delivery::Targeted;
        TransitionTable {
            scheme: "full-map",
            tracks_state: true,
            events: vec![
                EventSpec::new(E::ReadMiss, StateSet::ALL, &[]),
                EventSpec::new(E::WriteMiss, StateSet::ALL, &[]),
                EventSpec::new(E::Modify, StateSet::ALL, &[Cond::Fresh]),
                EventSpec::new(
                    E::Supply,
                    StateSet::only(G::PresentM),
                    &[Cond::WaitWrite, Cond::Retains],
                ),
                EventSpec::new(E::EjectClean, StateSet::ALL, &[]),
                EventSpec::new(E::EjectDirty, StateSet::only(G::PresentM), &[]),
            ],
            rules: vec![
                crate::rule!("read-miss-absent", E::ReadMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::only(G::Present1)),
                crate::rule!("read-miss-shared", E::ReadMiss, StateSet::SHARED)
                    .action(A::Grant { exclusive: false })
                    .to(StateSet::SHARED),
                crate::rule!(
                    "read-miss-modified",
                    E::ReadMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: targeted })
                .awaits(),
                crate::rule!("write-miss-absent", E::WriteMiss, StateSet::only(G::Absent))
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!("write-miss-shared", E::WriteMiss, StateSet::SHARED)
                    .action(A::Invalidate { delivery: targeted })
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "write-miss-modified",
                    E::WriteMiss,
                    StateSet::only(G::PresentM)
                )
                .action(A::Recall { delivery: targeted })
                .awaits(),
                crate::rule!("modify-fresh", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, true)
                    .action(A::Invalidate { delivery: targeted })
                    .action(A::ModifyGrant { granted: true })
                    .to(StateSet::only(G::PresentM))
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!(
                    "modify-stale-state",
                    E::Modify,
                    StateSet::of(&[G::Absent, G::PresentM])
                )
                .action(A::ModifyGrant { granted: false }),
                crate::rule!("modify-stale-copy", E::Modify, StateSet::SHARED)
                    .requires(Cond::Fresh, false)
                    .action(A::ModifyGrant { granted: false }),
                crate::rule!("supply-write", E::Supply, StateSet::only(G::PresentM))
                    .requires(Cond::WaitWrite, true)
                    .action(A::WriteMemory)
                    .action(A::Grant { exclusive: true })
                    .to(StateSet::only(G::PresentM)),
                crate::rule!(
                    "supply-read-retained",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, true)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::PresentStar)),
                crate::rule!(
                    "supply-read-departed",
                    E::Supply,
                    StateSet::only(G::PresentM)
                )
                .requires(Cond::WaitWrite, false)
                .requires(Cond::Retains, false)
                .action(A::WriteMemory)
                .action(A::Grant { exclusive: false })
                .to(StateSet::only(G::Present1)),
                crate::rule!(
                    "eject-clean-absent",
                    E::EjectClean,
                    StateSet::only(G::Absent)
                ),
                crate::rule!(
                    "eject-clean-present1",
                    E::EjectClean,
                    StateSet::only(G::Present1)
                )
                .to(StateSet::of(&[G::Absent, G::Present1])),
                crate::rule!(
                    "eject-clean-pstar",
                    E::EjectClean,
                    StateSet::only(G::PresentStar)
                )
                .to(StateSet::SHARED),
                crate::rule!(
                    "eject-clean-modified",
                    E::EjectClean,
                    StateSet::only(G::PresentM)
                ),
                crate::rule!("eject-dirty", E::EjectDirty, StateSet::only(G::PresentM))
                    .action(A::WriteMemory)
                    .to(StateSet::only(G::Absent)),
            ],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    fn unicast_invs(step: &DirStep) -> Vec<CacheId> {
        step.sends
            .iter()
            .filter_map(|s| match s {
                DirSend::Unicast {
                    cmd: MemoryToCache::Inv { to, .. },
                    ..
                } => Some(*to),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn read_misses_accumulate_owners() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(1);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(2), a, OpenKind::ReadMiss, &mem);
        let holders = d.holders(a).unwrap();
        assert!(holders.contains(cid(0)) && holders.contains(cid(2)));
        assert_eq!(d.global_state(a), GlobalState::PresentStar);
    }

    #[test]
    fn write_miss_invalidates_exactly_the_holders() {
        let mut d = FullMapDirectory::new(8);
        let mem = MemoryImage::new();
        let a = blk(2);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        d.open(cid(5), a, OpenKind::ReadMiss, &mem);

        let s = d.open(cid(7), a, OpenKind::WriteMiss, &mem);
        assert!(s.completes);
        let mut invs = unicast_invs(&s);
        invs.sort();
        assert_eq!(
            invs,
            vec![cid(0), cid(1), cid(5)],
            "no broadcast, no extras"
        );
        assert_eq!(d.global_state(a), GlobalState::PresentM);
        assert_eq!(d.holders(a).unwrap().sole_member(), Some(cid(7)));
    }

    #[test]
    fn read_miss_on_modified_purges_the_known_owner() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(3);
        d.open(cid(1), a, OpenKind::WriteMiss, &mem);
        let s = d.open(cid(2), a, OpenKind::ReadMiss, &mem);
        assert!(!s.completes);
        assert_eq!(
            s.sends.len(),
            1,
            "exactly one targeted purge — the full map's advantage"
        );
        match &s.sends[0] {
            DirSend::Unicast {
                to,
                cmd: MemoryToCache::Purge { rw, .. },
                ..
            } => {
                assert_eq!(*to, cid(1));
                assert_eq!(*rw, AccessKind::Read);
            }
            other => panic!("expected PURGE, got {other:?}"),
        }
        let s = d.supply(a, cid(1), Version::new(4), true, &mem);
        assert!(s.completes);
        let holders = d.holders(a).unwrap();
        assert!(holders.contains(cid(1)) && holders.contains(cid(2)));
        assert_eq!(d.global_state(a), GlobalState::PresentStar);
    }

    #[test]
    fn supply_without_retention_drops_the_old_owner() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(4);
        d.open(cid(1), a, OpenKind::WriteMiss, &mem);
        d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        let s = d.supply(a, cid(1), Version::new(6), false, &mem);
        assert_eq!(s.write_memory, Some((a, Version::new(6))));
        assert_eq!(d.holders(a).unwrap().sole_member(), Some(cid(2)));
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn modify_grants_and_invalidates_other_holders_only() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(5);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        let s = d.open(cid(0), a, OpenKind::Modify(mem.read(a)), &mem);
        assert_eq!(unicast_invs(&s), vec![cid(1)]);
        assert_eq!(d.global_state(a), GlobalState::PresentM);
    }

    #[test]
    fn modify_from_sole_holder_sends_nothing_extra() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(6);
        d.open(cid(3), a, OpenKind::ReadMiss, &mem);
        let s = d.open(cid(3), a, OpenKind::Modify(mem.read(a)), &mem);
        assert_eq!(s.sends.len(), 1, "just the MGRANTED");
    }

    #[test]
    fn stale_modify_denied() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(7);
        // C1 never fetched the block: its MREQUEST is stale by definition.
        let s = d.open(cid(1), a, OpenKind::Modify(mem.read(a)), &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::MGranted { granted, .. },
                ..
            } => {
                assert!(!granted);
            }
            other => panic!("expected denial, got {other:?}"),
        }
    }

    #[test]
    fn ejects_keep_the_map_exact() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(8);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem);
        d.eject_clean(cid(0), a);
        assert_eq!(d.holders(a).unwrap().sole_member(), Some(cid(1)));
        assert_eq!(d.global_state(a), GlobalState::Present1);
        d.eject_clean(cid(1), a);
        assert_eq!(d.global_state(a), GlobalState::Absent);
    }

    #[test]
    fn dirty_eject_writes_back() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(9);
        d.open(cid(2), a, OpenKind::WriteMiss, &mem);
        let s = d.eject_dirty(cid(2), a, Version::new(11));
        assert_eq!(s.write_memory, Some((a, Version::new(11))));
        assert_eq!(d.global_state(a), GlobalState::Absent);
    }

    #[test]
    fn eject_satisfies_wait_only_for_the_purged_owner() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(10);
        d.open(cid(0), a, OpenKind::WriteMiss, &mem);
        d.open(cid(1), a, OpenKind::ReadMiss, &mem); // purge to C0 pending
        assert!(d.eject_satisfies_wait(a, cid(0), WritebackKind::Dirty));
        assert!(!d.eject_satisfies_wait(a, cid(2), WritebackKind::Dirty));
        assert!(!d.eject_satisfies_wait(a, cid(0), WritebackKind::Clean));
    }

    #[test]
    fn consistency_requires_exact_presence() {
        let mut d = FullMapDirectory::new(4);
        let mem = MemoryImage::new();
        let a = blk(11);
        d.open(cid(0), a, OpenKind::ReadMiss, &mem);
        let clean = OwnerSet::singleton(4, cid(0));
        let none = OwnerSet::new(4);
        assert!(d.check_consistency(a, &clean, &none).is_ok());
        // A copy the map does not know about is an error (unlike two-bit,
        // where Present* admits anything clean).
        let extra: OwnerSet = [cid(0), cid(1)].into_iter().collect();
        assert!(d.check_consistency(a, &extra, &none).is_err());
    }
}
