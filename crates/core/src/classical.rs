//! The section 2.2–2.3 comparator schemes, which keep **no** directory:
//!
//! * [`ClassicalDirectory`] — the "classical" solution (section 2.3):
//!   write-through caches; every store updates memory and is broadcast to
//!   all other caches for invalidation. Simple, software-compatible, and
//!   exactly as unscalable as the paper says.
//! * [`NullDirectory`] — the memory-side of the static software scheme
//!   (section 2.2): sharable-writeable blocks are never cached (the cache
//!   agent sends `DIRECTREAD`/`WRITETHRU` for them), private blocks are
//!   write-back cached with no coherence traffic at all.

use crate::directory::{
    grant_from_memory, DirSend, DirStep, DirectoryProtocol, OpenKind, SendCost,
};
use crate::memory::MemoryImage;
use crate::owner_set::OwnerSet;
use crate::transitions::{
    ActionKind, Delivery, EventKind, EventSpec, OrderGuarantee, StateSet, TransitionTable,
};
use std::sync::OnceLock;
use twobit_types::{
    BlockAddr, CacheId, Fingerprinter, GlobalState, MemoryToCache, Version, WritebackKind,
};

/// The classical write-through broadcast scheme's memory side.
#[derive(Debug, Default, Clone)]
pub struct ClassicalDirectory;

impl ClassicalDirectory {
    /// Creates the (stateless) classical controller logic.
    #[must_use]
    pub fn new() -> Self {
        ClassicalDirectory
    }
}

impl DirectoryProtocol for ClassicalDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(5); // scheme discriminant; no directory state to add
    }

    fn name(&self) -> &'static str {
        "classical-wt"
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        match kind {
            // Loads fill caches normally; memory is always current under
            // write-through, so data always comes from memory.
            OpenKind::ReadMiss => DirStep::done().with_send(grant_from_memory(k, a, mem, false)),
            // Every store: memory update plus an invalidation broadcast to
            // every other cache — "each cache broadcasts to all other
            // caches the address of the block being modified".
            OpenKind::WriteThrough(version) => DirStep::done()
                .with_memory_write(a, version)
                .with_send(DirSend::Broadcast {
                    cmd: MemoryToCache::BroadInv { a, exclude: k },
                    exclude: k,
                    cost: SendCost::Command,
                }),
            OpenKind::WriteMiss | OpenKind::Modify(_) | OpenKind::DirectRead => {
                panic!("write-through caches never send {kind:?}")
            }
        }
    }

    fn supply(
        &mut self,
        _a: BlockAddr,
        _from: CacheId,
        _version: Version,
        _retains: bool,
        _mem: &MemoryImage,
    ) -> DirStep {
        unreachable!("the classical scheme never waits for cache data")
    }

    fn eject_satisfies_wait(&self, _a: BlockAddr, _k: CacheId, _wb: WritebackKind) -> bool {
        false
    }

    fn eject_clean(&mut self, _k: CacheId, _a: BlockAddr) {
        // Write-through lines are never tracked; replacement is silent.
    }

    fn eject_dirty(&mut self, _k: CacheId, a: BlockAddr, _version: Version) -> DirStep {
        unreachable!("write-through caches hold no dirty line (block {a})")
    }

    fn awaiting(&self, _a: BlockAddr) -> bool {
        false
    }

    fn global_state(&self, _a: BlockAddr) -> GlobalState {
        // Memory is always up to date; the scheme tracks nothing.
        GlobalState::PresentStar
    }

    fn holders(&self, _a: BlockAddr) -> Option<OwnerSet> {
        None
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(classical_table())
    }

    fn check_consistency(
        &self,
        _a: BlockAddr,
        _clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        // The one thing write-through guarantees: no dirty copies, ever.
        if dirty.is_empty() {
            Ok(())
        } else {
            Err(format!("{} dirty copies under write-through", dirty.len()))
        }
    }
}

/// The classical write-through scheme's table. The scheme keeps no
/// directory state (`tracks_state = false`; the constant reported state
/// is `Present*`), so the relation is two rules: fills from memory, and
/// the per-store memory-update-plus-invalidate-broadcast that defines
/// the scheme.
pub(crate) fn classical_table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        let here = StateSet::only(GlobalState::PresentStar);
        TransitionTable {
            scheme: "classical-wt",
            tracks_state: false,
            events: vec![
                EventSpec::new(E::ReadMiss, here, &[]),
                EventSpec::new(E::WriteThrough, here, &[]),
                EventSpec::new(E::EjectClean, here, &[]),
            ],
            rules: vec![
                crate::rule!("read-miss", E::ReadMiss, here).action(A::Grant { exclusive: false }),
                // The write-through acknowledgment the distributed
                // deployment synthesizes for this rule is held behind the
                // inv-ack gate, ordering the invalidation broadcast before
                // the store's completion.
                crate::rule!("write-through", E::WriteThrough, here)
                    .action(A::WriteMemory)
                    .action(A::Invalidate {
                        delivery: Delivery::Broadcast,
                    })
                    .guarded_by(OrderGuarantee::AckBarrier),
                crate::rule!("eject-clean", E::EjectClean, here),
            ],
        }
    })
}

/// The memory side of the static software scheme: plain memory service,
/// no coherence bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct NullDirectory;

impl NullDirectory {
    /// Creates the (stateless) null controller logic.
    #[must_use]
    pub fn new() -> Self {
        NullDirectory
    }
}

impl DirectoryProtocol for NullDirectory {
    fn clone_box(&self) -> Box<dyn DirectoryProtocol> {
        Box::new(self.clone())
    }

    fn fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(6); // scheme discriminant; no directory state to add
    }

    fn name(&self) -> &'static str {
        "static-sw"
    }

    fn open(&mut self, k: CacheId, a: BlockAddr, kind: OpenKind, mem: &MemoryImage) -> DirStep {
        match kind {
            // Private-block misses: plain fills. Write misses fill
            // exclusively (the block is private; nobody else will care).
            OpenKind::ReadMiss => DirStep::done().with_send(grant_from_memory(k, a, mem, false)),
            OpenKind::WriteMiss => DirStep::done().with_send(grant_from_memory(k, a, mem, true)),
            // Public blocks: served straight from memory, never cached —
            // "the public data is always up-to-date in main memory".
            OpenKind::DirectRead => DirStep::done().with_send(grant_from_memory(k, a, mem, false)),
            OpenKind::WriteThrough(version) => DirStep::done().with_memory_write(a, version),
            OpenKind::Modify(_) => {
                panic!("static-scheme caches upgrade private lines silently, never MREQUEST")
            }
        }
    }

    fn supply(
        &mut self,
        _a: BlockAddr,
        _from: CacheId,
        _version: Version,
        _retains: bool,
        _mem: &MemoryImage,
    ) -> DirStep {
        unreachable!("the static scheme never waits for cache data")
    }

    fn eject_satisfies_wait(&self, _a: BlockAddr, _k: CacheId, _wb: WritebackKind) -> bool {
        false
    }

    fn eject_clean(&mut self, _k: CacheId, _a: BlockAddr) {}

    fn eject_dirty(&mut self, _k: CacheId, a: BlockAddr, version: Version) -> DirStep {
        // Private dirty blocks write back normally.
        DirStep::done().with_memory_write(a, version)
    }

    fn awaiting(&self, _a: BlockAddr) -> bool {
        false
    }

    fn global_state(&self, _a: BlockAddr) -> GlobalState {
        GlobalState::PresentStar
    }

    fn holders(&self, _a: BlockAddr) -> Option<OwnerSet> {
        None
    }

    fn transition_table(&self) -> Option<&'static TransitionTable> {
        Some(null_table())
    }

    fn check_consistency(
        &self,
        _a: BlockAddr,
        _clean: &OwnerSet,
        dirty: &OwnerSet,
    ) -> Result<(), String> {
        // Private data: at most one cache may hold a dirty copy (the
        // owner); the workload contract keeps private blocks per-CPU.
        if dirty.len() <= 1 {
            Ok(())
        } else {
            Err(format!(
                "{} dirty copies of a supposedly private block",
                dirty.len()
            ))
        }
    }
}

/// The static software scheme's table: plain memory service with no
/// coherence traffic whatsoever — the broadcast-necessity analysis
/// verifies the *absence* of invalidates and recalls here.
pub(crate) fn null_table() -> &'static TransitionTable {
    static TABLE: OnceLock<TransitionTable> = OnceLock::new();
    TABLE.get_or_init(|| {
        use ActionKind as A;
        use EventKind as E;
        let here = StateSet::only(GlobalState::PresentStar);
        TransitionTable {
            scheme: "static-sw",
            tracks_state: false,
            events: vec![
                EventSpec::new(E::ReadMiss, here, &[]),
                EventSpec::new(E::WriteMiss, here, &[]),
                EventSpec::new(E::DirectRead, here, &[]),
                EventSpec::new(E::WriteThrough, here, &[]),
                EventSpec::new(E::EjectClean, here, &[]),
                EventSpec::new(E::EjectDirty, here, &[]),
            ],
            rules: vec![
                crate::rule!("read-miss", E::ReadMiss, here).action(A::Grant { exclusive: false }),
                crate::rule!("write-miss", E::WriteMiss, here).action(A::Grant { exclusive: true }),
                crate::rule!("direct-read", E::DirectRead, here)
                    .action(A::Grant { exclusive: false }),
                crate::rule!("write-through", E::WriteThrough, here).action(A::WriteMemory),
                crate::rule!("eject-clean", E::EjectClean, here),
                crate::rule!("eject-dirty", E::EjectDirty, here).action(A::WriteMemory),
            ],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn cid(n: usize) -> CacheId {
        CacheId::new(n)
    }

    #[test]
    fn classical_write_broadcasts_and_updates_memory() {
        let mut d = ClassicalDirectory::new();
        let mem = MemoryImage::new();
        let s = d.open(
            cid(0),
            blk(1),
            OpenKind::WriteThrough(Version::new(4)),
            &mem,
        );
        assert!(s.completes);
        assert_eq!(s.write_memory, Some((blk(1), Version::new(4))));
        match &s.sends[0] {
            DirSend::Broadcast {
                cmd: MemoryToCache::BroadInv { exclude, .. },
                ..
            } => {
                assert_eq!(*exclude, cid(0));
            }
            other => panic!("expected broadcast invalidate, got {other:?}"),
        }
    }

    #[test]
    fn classical_read_miss_served_from_memory() {
        let mut d = ClassicalDirectory::new();
        let mut mem = MemoryImage::new();
        mem.write(blk(2), Version::new(9));
        let s = d.open(cid(1), blk(2), OpenKind::ReadMiss, &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd:
                    MemoryToCache::GetData {
                        version, exclusive, ..
                    },
                ..
            } => {
                assert_eq!(*version, Version::new(9));
                assert!(!exclusive);
            }
            other => panic!("expected grant, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "never send")]
    fn classical_rejects_write_miss() {
        let mut d = ClassicalDirectory::new();
        let mem = MemoryImage::new();
        d.open(cid(0), blk(1), OpenKind::WriteMiss, &mem);
    }

    #[test]
    fn classical_consistency_forbids_dirty_copies() {
        let d = ClassicalDirectory::new();
        let none = OwnerSet::new(4);
        let one = OwnerSet::singleton(4, cid(0));
        assert!(d.check_consistency(blk(0), &one, &none).is_ok());
        assert!(d.check_consistency(blk(0), &none, &one).is_err());
    }

    #[test]
    fn null_directory_serves_private_and_public_paths() {
        let mut d = NullDirectory::new();
        let mem = MemoryImage::new();
        let s = d.open(cid(0), blk(1), OpenKind::WriteMiss, &mem);
        match &s.sends[0] {
            DirSend::Unicast {
                cmd: MemoryToCache::GetData { exclusive, .. },
                ..
            } => {
                assert!(*exclusive);
            }
            other => panic!("expected exclusive grant, got {other:?}"),
        }
        let s = d.open(cid(0), blk(2), OpenKind::DirectRead, &mem);
        assert_eq!(s.sends.len(), 1);
        let s = d.open(
            cid(0),
            blk(2),
            OpenKind::WriteThrough(Version::new(3)),
            &mem,
        );
        assert_eq!(s.write_memory, Some((blk(2), Version::new(3))));
        assert!(
            s.sends.is_empty(),
            "no coherence traffic in the static scheme"
        );
    }

    #[test]
    fn null_directory_absorbs_private_writebacks() {
        let mut d = NullDirectory::new();
        let s = d.eject_dirty(cid(0), blk(7), Version::new(2));
        assert_eq!(s.write_memory, Some((blk(7), Version::new(2))));
    }
}
