//! A bounded model checker for the directory protocols.
//!
//! The paper closes with: "The protocols and associated hardware design
//! need to be refined (and proven correct)." This module is the
//! mechanized half of that refinement: it explores **message-delivery
//! interleavings** of a small system exhaustively (up to a node budget)
//! or by seeded random walks, checking on every complete execution that
//!
//! 1. the system reaches quiescence with every reference retired — no
//!    deadlock in any interleaving (the section 3.2.5 races are liveness
//!    bugs, and both of the windows this implementation closes were found
//!    as deadlocks);
//! 2. no component ever sees an impossible command (protocol error);
//! 3. at quiescence, all structural invariants hold (SWMR, directory
//!    conservatism/exactness — [`crate::invariants::check_system`]).
//!
//! The checker also *measures* (rather than asserts) the transient
//! staleness the paper's ack-free design admits: the controller "proceeds
//! with get(k,a)" right after sending `BROADINV`, without waiting for
//! invalidation acknowledgments, so a cache whose invalidation is still
//! in flight can momentarily hit on a stale copy. Exploration counts such
//! reads ([`Exploration::stale_reads_observed`]) so the window's size can
//! be studied; it is a property of the protocol as published, not an
//! implementation bug.
//!
//! Nondeterminism model: all channels are per-(source, destination) FIFO
//! queues (matching both network models in `twobit-interconnect`); an
//! enabled action is either "some idle processor issues its next scripted
//! reference" or "deliver the head of some nonempty channel". Every
//! reachable ordering of those actions is a distinct interleaving.

use crate::agent::CacheAgent;
use crate::controller::{Controller, CtrlEmit};
use crate::exec::{build_policy_for, build_protocol_for};
use crate::invariants;
use std::collections::BTreeMap;
use std::collections::HashMap;
use twobit_obs::{ActorId, NullTracer, SimEvent, Tracer};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheToMemory, ConfigError, MemRef, MemoryToCache, ModuleId,
    ProtocolError, SystemConfig, Version,
};

/// A channel endpoint (encoded for deterministic `BTreeMap` ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Node {
    Cache(u16),
    Module(u16),
}

/// An in-flight message.
#[derive(Debug, Clone)]
enum Msg {
    ToModule(CacheToMemory),
    ToCache(MemoryToCache),
}

/// One branchable system state.
#[derive(Clone)]
struct State {
    agents: Vec<CacheAgent>,
    controllers: Vec<Controller>,
    channels: BTreeMap<(Node, Node), Vec<Msg>>,
    cursor: Vec<usize>,
    version_counter: u64,
    /// Highest retired write version per block (for staleness counting).
    latest_write: HashMap<BlockAddr, Version>,
    stale_reads: u64,
    retired: usize,
}

/// An action enabled in a state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Issue(usize),
    Deliver(Node, Node),
}

/// Results of an exploration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Complete executions (quiescent leaves) verified.
    pub interleavings: u64,
    /// Total states expanded.
    pub states_visited: u64,
    /// Whether the node budget cut the exhaustive search short.
    pub truncated: bool,
    /// Reads that transiently observed a version older than the newest
    /// retired write — the ack-free invalidation window, measured.
    pub stale_reads_observed: u64,
}

/// The model checker: a system configuration plus a finite per-cache
/// reference script.
#[derive(Debug)]
pub struct ModelChecker {
    config: SystemConfig,
    script: Vec<Vec<MemRef>>,
}

impl ModelChecker {
    /// Creates a checker for `config` with one reference list per cache.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations, bus protocols
    /// (their bus serializes delivery, leaving nothing to interleave), or
    /// a script whose length does not match the cache count.
    pub fn new(config: SystemConfig, script: Vec<Vec<MemRef>>) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.protocol.is_bus_based() {
            return Err(ConfigError::new(
                "bus transactions are atomic; there are no interleavings to check",
            ));
        }
        if script.len() != config.caches {
            return Err(ConfigError::new(format!(
                "script has {} streams for {} caches",
                script.len(),
                config.caches
            )));
        }
        Ok(ModelChecker { config, script })
    }

    fn initial_state(&self) -> State {
        let agents = CacheId::all(self.config.caches)
            .map(|id| {
                let mut agent = CacheAgent::new(
                    id,
                    self.config.cache,
                    build_policy_for(
                        self.config.protocol,
                        crate::exec::DEFAULT_STATIC_SHARED_FROM,
                    ),
                    self.config.duplicate_directory,
                );
                agent.set_bias_entries(self.config.bias_entries);
                agent
            })
            .collect();
        let controllers = ModuleId::all(self.config.address_map.modules())
            .map(|m| {
                Controller::new(
                    m,
                    build_protocol_for(&self.config),
                    self.config.caches,
                    self.config.concurrency,
                )
            })
            .collect();
        State {
            agents,
            controllers,
            channels: BTreeMap::new(),
            cursor: vec![0; self.config.caches],
            version_counter: 0,
            latest_write: HashMap::new(),
            stale_reads: 0,
            retired: 0,
        }
    }

    fn total_refs(&self) -> usize {
        self.script.iter().map(Vec::len).sum()
    }

    fn enabled(&self, state: &State) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, agent) in state.agents.iter().enumerate() {
            if !agent.is_stalled() && state.cursor[i] < self.script[i].len() {
                actions.push(Action::Issue(i));
            }
        }
        for (&(src, dst), queue) in &state.channels {
            if !queue.is_empty() {
                actions.push(Action::Deliver(src, dst));
            }
        }
        actions
    }

    fn push_msg(state: &mut State, src: Node, dst: Node, msg: Msg) {
        state.channels.entry((src, dst)).or_default().push(msg);
    }

    fn send_to_memory(&self, state: &mut State, from: CacheId, sends: Vec<CacheToMemory>) {
        for cmd in sends {
            let module = self.config.address_map.module_of(cmd.block());
            Self::push_msg(
                state,
                Node::Cache(from.index() as u16),
                Node::Module(module.index() as u16),
                Msg::ToModule(cmd),
            );
        }
    }

    fn send_emits(&self, state: &mut State, module: ModuleId, emits: Vec<CtrlEmit>) {
        let src = Node::Module(module.index() as u16);
        for emit in emits {
            match emit {
                CtrlEmit::Unicast { to, cmd, .. } => {
                    Self::push_msg(
                        state,
                        src,
                        Node::Cache(to.index() as u16),
                        Msg::ToCache(cmd),
                    );
                }
                CtrlEmit::Broadcast { cmd, exclude, .. } => {
                    for cache in CacheId::all(self.config.caches) {
                        if cache != exclude {
                            Self::push_msg(
                                state,
                                src,
                                Node::Cache(cache.index() as u16),
                                Msg::ToCache(cmd),
                            );
                        }
                    }
                }
            }
        }
    }

    fn record_retirement(state: &mut State, op: MemRef, observed: Version) {
        state.retired += 1;
        match op.kind {
            AccessKind::Write => {
                let slot = state.latest_write.entry(op.addr.block).or_default();
                if observed > *slot {
                    *slot = observed;
                }
            }
            AccessKind::Read => {
                let latest = state
                    .latest_write
                    .get(&op.addr.block)
                    .copied()
                    .unwrap_or_default();
                if observed < latest {
                    state.stale_reads += 1;
                }
            }
        }
    }

    /// Applies one action; returns the successor state.
    fn step(&self, mut state: State, action: Action) -> Result<State, ProtocolError> {
        match action {
            Action::Issue(i) => {
                let op = self.script[i][state.cursor[i]];
                state.cursor[i] += 1;
                let version = match op.kind {
                    AccessKind::Write => {
                        state.version_counter += 1;
                        Version::new(state.version_counter)
                    }
                    AccessKind::Read => Version::initial(),
                };
                let outcome = state.agents[i].start(op, version);
                if let Some(c) = outcome.completed {
                    Self::record_retirement(&mut state, c.op, c.observed);
                }
                self.send_to_memory(&mut state, CacheId::new(i), outcome.sends);
            }
            Action::Deliver(src, dst) => {
                let msg = {
                    let queue = state
                        .channels
                        .get_mut(&(src, dst))
                        .expect("enabled channel exists");
                    let msg = queue.remove(0);
                    if queue.is_empty() {
                        state.channels.remove(&(src, dst));
                    }
                    msg
                };
                match (dst, msg) {
                    (Node::Module(m), Msg::ToModule(cmd)) => {
                        let emits = state.controllers[m as usize].submit(cmd)?;
                        self.send_emits(&mut state, ModuleId::new(m as usize), emits);
                    }
                    (Node::Cache(c), Msg::ToCache(cmd)) => {
                        let out = state.agents[c as usize].on_network(cmd)?;
                        if let Some(completion) = out.completed {
                            Self::record_retirement(&mut state, completion.op, completion.observed);
                        }
                        self.send_to_memory(&mut state, CacheId::new(c as usize), out.sends);
                    }
                    (node, msg) => unreachable!("misrouted {msg:?} at {node:?}"),
                }
            }
        }
        Ok(state)
    }

    /// Verifies a quiescent leaf.
    fn check_leaf(&self, state: &State) -> Result<(), ProtocolError> {
        if state.retired != self.total_refs() {
            return Err(ProtocolError::UnexpectedCommand {
                state: format!(
                    "quiescent with {}/{} retired",
                    state.retired,
                    self.total_refs()
                ),
                command: "deadlock: no enabled actions remain".to_string(),
            });
        }
        for controller in &state.controllers {
            if controller.busy() {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("{} busy at quiescence", controller.module()),
                    command: "liveness violation".to_string(),
                });
            }
        }
        invariants::check_system(&state.agents, &state.controllers, self.config.address_map)
    }

    /// Exhaustive depth-first exploration of every interleaving, up to
    /// `node_budget` expanded states. Returns statistics; any violated
    /// property in any interleaving is an error.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProtocolError`] found on any path: a deadlock,
    /// an impossible command, or a quiescent invariant violation.
    pub fn explore_exhaustive(&self, node_budget: u64) -> Result<Exploration, ProtocolError> {
        self.explore_exhaustive_traced(node_budget, &mut NullTracer)
    }

    /// [`explore_exhaustive`](ModelChecker::explore_exhaustive), recording
    /// every applied action into `tracer`. The checker has no clock, so
    /// events are stamped with a running action counter; when a violation
    /// is returned, a bounded [`twobit_obs::RingTracer`] therefore ends on
    /// the actions leading up to it (across DFS branches — the last
    /// recorded event is always the offending one).
    ///
    /// # Errors
    ///
    /// Exactly as [`explore_exhaustive`](ModelChecker::explore_exhaustive).
    pub fn explore_exhaustive_traced(
        &self,
        node_budget: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Exploration, ProtocolError> {
        let mut result = Exploration::default();
        let mut stack = vec![self.initial_state()];
        let mut steps: u64 = 0;
        while let Some(state) = stack.pop() {
            result.states_visited += 1;
            if result.states_visited > node_budget {
                result.truncated = true;
                break;
            }
            let actions = self.enabled(&state);
            if actions.is_empty() {
                if let Err(e) = self.check_leaf(&state) {
                    if tracer.enabled() {
                        tracer.record(SimEvent::new(
                            steps,
                            ActorId::Network,
                            BlockAddr::new(0),
                            format!("leaf check failed: {e}"),
                        ));
                    }
                    return Err(e);
                }
                result.interleavings += 1;
                result.stale_reads_observed += state.stale_reads;
                continue;
            }
            for action in actions {
                steps += 1;
                if tracer.enabled() {
                    self.trace_action(&state, action, steps, tracer);
                }
                stack.push(self.step(state.clone(), action)?);
            }
        }
        Ok(result)
    }

    /// Records `action` (about to be applied to `state`) as a trace event.
    fn trace_action(&self, state: &State, action: Action, t: u64, tracer: &mut dyn Tracer) {
        match action {
            Action::Issue(i) => {
                let op = self.script[i][state.cursor[i]];
                tracer.record(SimEvent::new(
                    t,
                    ActorId::Cache(CacheId::new(i)),
                    op.addr.block,
                    format!("issue {op}"),
                ));
            }
            Action::Deliver(src, dst) => {
                let msg = &state.channels[&(src, dst)][0];
                let (actor, block, text, class) = match (dst, msg) {
                    (Node::Module(m), Msg::ToModule(cmd)) => (
                        ActorId::Module(ModuleId::new(m as usize)),
                        cmd.block(),
                        cmd.to_string(),
                        cmd.class(),
                    ),
                    (Node::Cache(c), Msg::ToCache(cmd)) => (
                        ActorId::Cache(CacheId::new(c as usize)),
                        cmd.block(),
                        cmd.to_string(),
                        cmd.class(),
                    ),
                    (node, msg) => unreachable!("misrouted {msg:?} at {node:?}"),
                };
                tracer.record(SimEvent::new(t, actor, block, text).class(class));
            }
        }
    }

    /// Seeded random-walk exploration: `walks` complete executions, each
    /// choosing uniformly among enabled actions (xorshift; fully
    /// deterministic per seed). Scales to scripts exhaustive search
    /// cannot cover.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProtocolError`] found on any walk.
    pub fn explore_random(&self, walks: u64, seed: u64) -> Result<Exploration, ProtocolError> {
        let mut result = Exploration::default();
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..walks {
            let mut state = self.initial_state();
            loop {
                result.states_visited += 1;
                let actions = self.enabled(&state);
                if actions.is_empty() {
                    self.check_leaf(&state)?;
                    result.interleavings += 1;
                    result.stale_reads_observed += state.stale_reads;
                    break;
                }
                let pick = (next() % actions.len() as u64) as usize;
                state = self.step(state, actions[pick])?;
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{ProtocolKind, WordAddr};

    fn rd(b: u64) -> MemRef {
        MemRef::read(WordAddr::new(b, 0))
    }

    fn wr(b: u64) -> MemRef {
        MemRef::write(WordAddr::new(b, 0))
    }

    fn checker(protocol: ProtocolKind, script: Vec<Vec<MemRef>>) -> ModelChecker {
        let config = SystemConfig::with_defaults(script.len()).with_protocol(protocol);
        ModelChecker::new(config, script).unwrap()
    }

    const PROTOCOLS: [ProtocolKind; 4] = [
        ProtocolKind::TwoBit,
        ProtocolKind::TwoBitTlb { entries: 2 },
        ProtocolKind::FullMap,
        ProtocolKind::FullMapLocal,
    ];

    /// The section 3.2.5 scenario, exhaustively: both caches read then
    /// both write the same block — every delivery order must stay live
    /// and consistent.
    #[test]
    fn write_race_is_deadlock_free_in_all_interleavings() {
        for protocol in PROTOCOLS {
            let mc = checker(protocol, vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]]);
            let result = mc.explore_exhaustive(2_000_000).unwrap();
            assert!(!result.truncated, "{protocol}: exploration must complete");
            assert!(
                result.interleavings > 10,
                "{protocol}: expected many interleavings, got {}",
                result.interleavings
            );
        }
    }

    /// The replacement/recall race: one cache dirties a block and evicts
    /// it (by touching a conflicting block) while the other cache misses
    /// on it. Every ordering of the write-back vs. the BROADQUERY must
    /// resolve.
    #[test]
    fn replacement_recall_race_is_live() {
        // Direct conflict: a 2-set cache makes blocks 1 and 9 collide
        // (1 % 2 == 9 % 2) only if direct-mapped; use sets=2, assoc=1.
        for protocol in PROTOCOLS {
            let mut config = SystemConfig::with_defaults(2).with_protocol(protocol);
            config.cache = twobit_types::CacheOrg::new(2, 1, 4).unwrap();
            let mc = ModelChecker::new(config, vec![vec![wr(1), rd(9)], vec![rd(1)]]).unwrap();
            let result = mc.explore_exhaustive(2_000_000).unwrap();
            assert!(!result.truncated, "{protocol}");
            assert!(result.interleavings > 0, "{protocol}");
        }
    }

    /// Three caches, upgrade storm on one block. The full interleaving
    /// tree is enormous; a bounded prefix still verifies hundreds of
    /// thousands of distinct orderings (every *completed* path is fully
    /// checked), and the random-walk test below covers the deep tail.
    #[test]
    fn three_way_upgrade_storm_bounded() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)], vec![rd(1)]],
        );
        let result = mc.explore_exhaustive(150_000).unwrap();
        assert!(result.interleavings > 100, "got {}", result.interleavings);
        // The staleness window of the ack-free design is measurable here;
        // we record rather than assert it (it depends on ordering luck).
        let _ = result.stale_reads_observed;
    }

    /// Random walks scale the same checks to longer scripts.
    #[test]
    fn random_walks_cover_longer_scripts() {
        for protocol in PROTOCOLS {
            let mc = checker(
                protocol,
                vec![
                    vec![rd(1), wr(2), rd(1), wr(1), rd(2)],
                    vec![wr(1), rd(2), wr(2), rd(1), wr(1)],
                    vec![rd(2), rd(1), wr(1), rd(2), wr(2)],
                ],
            );
            let result = mc.explore_random(300, 0xdecade).unwrap();
            assert_eq!(result.interleavings, 300, "{protocol}");
        }
    }

    /// Determinism: the same seed explores the same walks.
    #[test]
    fn random_exploration_is_deterministic() {
        let mc = checker(ProtocolKind::TwoBit, vec![vec![rd(1), wr(1)], vec![wr(1)]]);
        let a = mc.explore_random(50, 7).unwrap();
        let b = mc.explore_random(50, 7).unwrap();
        assert_eq!(a, b);
    }

    /// Budget truncation is reported, not silent.
    #[test]
    fn budget_truncation_is_flagged() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1), rd(2)], vec![rd(1), wr(1), rd(2)]],
        );
        let result = mc.explore_exhaustive(100).unwrap();
        assert!(result.truncated);
    }

    #[test]
    fn constructor_validates() {
        let config = SystemConfig::with_defaults(2);
        assert!(
            ModelChecker::new(config, vec![vec![rd(1)]]).is_err(),
            "stream count"
        );
        let mut bus = SystemConfig::with_defaults(2).with_protocol(ProtocolKind::Illinois);
        bus.address_map = twobit_types::AddressMap::interleaved(1);
        assert!(
            ModelChecker::new(bus, vec![vec![], vec![]]).is_err(),
            "bus protocols"
        );
    }
}
