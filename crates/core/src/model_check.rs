//! A bounded model checker for the directory protocols.
//!
//! The paper closes with: "The protocols and associated hardware design
//! need to be refined (and proven correct)." This module is the
//! mechanized half of that refinement: it explores **message-delivery
//! interleavings** of a small system, checking on every complete
//! execution that
//!
//! 1. the system reaches quiescence with every reference retired — no
//!    deadlock in any interleaving (the section 3.2.5 races are liveness
//!    bugs, and both of the windows this implementation closes were found
//!    as deadlocks);
//! 2. no component ever sees an impossible command (protocol error);
//! 3. at quiescence, all structural invariants hold (SWMR, directory
//!    conservatism/exactness — [`crate::invariants::check_system`]).
//!
//! Three explorers share those checks:
//!
//! * [`ModelChecker::explore_dedup`] — the workhorse: a parallel,
//!   state-deduplicating breadth-first search over the interleaving
//!   **DAG**. Each state is reduced to a canonical 128-bit fingerprint
//!   (replacement clocks rank-reduced, maps sorted, statistics excluded)
//!   so states reached along many interleavings are expanded once;
//!   per-state path counts keep the interleaving totals exact. Any
//!   violation comes back as a [`Counterexample`]: the exact action path
//!   from the initial state, replayable step-by-step.
//! * [`ModelChecker::explore_exhaustive`] — the original depth-first
//!   *tree* search, kept as the differential baseline the DAG search is
//!   tested against (and for budgets small enough that dedup overhead
//!   does not pay).
//! * [`ModelChecker::explore_random`] — seeded random walks for scripts
//!   beyond either exhaustive mode.
//!
//! The checker also *measures* (rather than asserts) the transient
//! staleness the paper's ack-free design admits: the controller "proceeds
//! with get(k,a)" right after sending `BROADINV`, without waiting for
//! invalidation acknowledgments, so a cache whose invalidation is still
//! in flight can momentarily hit on a stale copy. Exploration counts such
//! reads ([`Exploration::stale_reads_observed`]) so the window's size can
//! be studied; it is a property of the protocol as published, not an
//! implementation bug. [`ModelChecker::fail_on_stale_reads`] flips that
//! measurement into an injected violation, turning any staleness window
//! into a concrete replayable counterexample.
//!
//! Nondeterminism model: all channels are per-(source, destination) FIFO
//! queues (matching both network models in `twobit-interconnect`); an
//! enabled action is either "some idle processor issues its next scripted
//! reference" or "deliver the head of some nonempty channel". Every
//! reachable ordering of those actions is a distinct interleaving.

use crate::agent::CacheAgent;
use crate::controller::{Controller, CtrlEmit};
use crate::exec::{build_policy_for, build_protocol_for};
use crate::invariants;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::HashMap;
use twobit_obs::{ActorId, Metrics, NullTracer, RingTracer, SimEvent, Tracer};
use twobit_types::{
    AccessKind, BlockAddr, CacheId, CacheToMemory, ConfigError, Fingerprint, Fingerprinter,
    GlobalState, MemRef, MemoryToCache, ModuleId, ProtocolError, SystemConfig, Version,
};

/// A channel endpoint (encoded for deterministic `BTreeMap` ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Node {
    /// Cache `C_k` (by index).
    Cache(u16),
    /// Memory-module controller `K_j` (by index).
    Module(u16),
}

/// An in-flight message.
#[derive(Debug, Clone)]
enum Msg {
    ToModule(CacheToMemory),
    ToCache(MemoryToCache),
}

/// One branchable system state. Opaque: obtained from
/// [`ModelChecker::initial_state`] and advanced with
/// [`ModelChecker::step`]; the accessors expose the retirement
/// bookkeeping counterexample replays want to assert on.
#[derive(Clone)]
pub struct State {
    agents: Vec<CacheAgent>,
    controllers: Vec<Controller>,
    channels: BTreeMap<(Node, Node), Vec<Msg>>,
    cursor: Vec<usize>,
    version_counter: u64,
    /// Highest retired write version per block (for staleness counting).
    latest_write: HashMap<BlockAddr, Version>,
    stale_reads: u64,
    retired: usize,
}

impl State {
    /// References retired so far along this path.
    #[must_use]
    pub fn retired(&self) -> usize {
        self.retired
    }

    /// Reads so far that observed a version older than the newest retired
    /// write (the ack-free staleness window).
    #[must_use]
    pub fn stale_reads(&self) -> u64 {
        self.stale_reads
    }
}

/// An action enabled in a state: either a processor issues its next
/// scripted reference, or one channel delivers its head message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Cache `i`'s processor issues its next scripted reference.
    Issue(usize),
    /// The (source, destination) channel delivers its head message.
    Deliver(Node, Node),
}

/// Results of an exploration.
///
/// The tree and random explorers leave the dedup-only fields
/// (`distinct_states`, `dedup_hits`, `peak_frontier`, `max_depth`,
/// `depth_conflicts`) at zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Exploration {
    /// Complete executions (quiescent leaves) verified. The dedup search
    /// counts these exactly — the number of root-to-leaf action paths in
    /// the explored DAG, computed by a paths-to-leaf recurrence over the
    /// recorded edges (saturating at `u64::MAX` for scripts whose
    /// interleaving count overflows).
    pub interleavings: u64,
    /// States actually expanded (enabled-action fan-out or leaf check) —
    /// never more than the node budget.
    pub states_visited: u64,
    /// Whether the node budget cut the exhaustive search short.
    pub truncated: bool,
    /// Reads that transiently observed a version older than the newest
    /// retired write — the ack-free invalidation window, measured.
    pub stale_reads_observed: u64,
    /// States discovered but never expanded when the budget truncated
    /// the search (0 when `truncated` is false).
    pub abandoned_frontier: u64,
    /// Dedup search: distinct states discovered (root included).
    pub distinct_states: u64,
    /// Dedup search: successor arrivals pruned because the state was
    /// already known. `dedup_hits / (dedup_hits + distinct_states - 1)`
    /// is the hit rate — the fraction of the interleaving tree the DAG
    /// view collapsed.
    pub dedup_hits: u64,
    /// Dedup search: largest breadth-first frontier.
    pub peak_frontier: u64,
    /// Dedup search: deepest layer expanded (= longest action path).
    pub max_depth: u64,
    /// Dedup search: rediscoveries of a state at a *different* depth than
    /// its first discovery — i.e. states reachable along action paths of
    /// unequal length (a BROADQUERY round-trip happening on one path but
    /// not another, say). Diagnostic only: the path counting runs over
    /// the full recorded DAG, so `interleavings` and
    /// `stale_reads_observed` stay exact regardless.
    pub depth_conflicts: u64,
}

/// The coarse class of one in-flight message, exposed to guided-search
/// predicates ([`ModelChecker::probe_channels`]). Collapses the
/// broadcast/unicast shapes the flow analyses already abstract over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightMsg {
    /// `GETDATA` toward a cache; `exclusive` carries write permission.
    Grant {
        /// Whether the fill grants write permission.
        exclusive: bool,
    },
    /// `MGRANTED` toward a cache (granted or denied).
    UpgradeAck,
    /// `INV`/`BROADINV` toward a cache.
    Inv,
    /// `PURGE`/`BROADQUERY` toward a cache.
    Recall,
    /// Any cache→memory command.
    Command,
}

/// Outcome of a guided best-first search
/// ([`ModelChecker::explore_guided`]).
#[derive(Debug, Clone, Default)]
pub struct GuidedSearch {
    /// Action path from the initial state to the first discovered state
    /// matching the target predicate (not necessarily the shortest such
    /// path), or `None` if the budget drained without a hit.
    pub hit: Option<Vec<Action>>,
    /// A protocol violation stumbled on while steering, if any. The
    /// guided search stops at the first one, like the dedup search.
    pub violation: Option<Box<Counterexample>>,
    /// States expanded.
    pub states_visited: u64,
    /// `true` when the node budget drained with candidate states still
    /// pooled.
    pub truncated: bool,
}

/// A protocol violation with the exact action path that reaches it from
/// the initial state. Produced by [`ModelChecker::explore_dedup`];
/// replay it with [`ModelChecker::replay`] or render it with
/// [`ModelChecker::render_counterexample`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The violated property.
    pub error: ProtocolError,
    /// Actions from the initial state to the violation. For a step
    /// violation the final action is the one that fails; for a quiescent
    /// leaf violation the path ends at the offending leaf state.
    pub path: Vec<Action>,
}

/// What one parallel worker returns for its chunk of a frontier layer.
#[derive(Default)]
struct ChunkOut {
    /// One entry per (state, enabled action) edge expanded:
    /// (successor fp, parent fp, action, successor state).
    successors: Vec<(Fingerprint, Fingerprint, Action, State)>,
    expanded: u64,
    /// Quiescent leaves checked OK: (leaf fp, its `stale_reads`).
    leaves: Vec<(Fingerprint, u64)>,
    /// First violation in chunk order: (state fp, failing action if a
    /// step failed — `None` for a quiescent-leaf violation, error).
    violation: Option<(Fingerprint, Option<Action>, ProtocolError)>,
}

/// Runs `f` over every input in parallel across up to `threads` scoped
/// workers (the `twobit-bench` sweep idiom: shared work list, outputs
/// keyed by input index so aggregation order is independent of
/// scheduling). `f` must be deterministic per input.
fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let threads = threads.max(1).min(inputs.len());
    if threads <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..inputs.len()).map(|_| None).collect());
    let work: Mutex<Vec<(usize, I)>> = Mutex::new(inputs.into_iter().enumerate().rev().collect());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let item = work.lock().pop();
                let Some((index, input)) = item else { break };
                let output = f(input);
                results.lock()[index] = Some(output);
            });
        }
    })
    .expect("model-check worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every chunk produces an output"))
        .collect()
}

/// The model checker: a system configuration plus a finite per-cache
/// reference script.
#[derive(Debug)]
pub struct ModelChecker {
    config: SystemConfig,
    script: Vec<Vec<MemRef>>,
    fail_on_stale: bool,
    reconcile: Option<crate::transitions::ViolationSink>,
}

impl ModelChecker {
    /// Creates a checker for `config` with one reference list per cache.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations, bus protocols
    /// (their bus serializes delivery, leaving nothing to interleave), or
    /// a script whose length does not match the cache count.
    pub fn new(config: SystemConfig, script: Vec<Vec<MemRef>>) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.protocol.is_bus_based() {
            return Err(ConfigError::new(
                "bus transactions are atomic; there are no interleavings to check",
            ));
        }
        if script.len() != config.caches {
            return Err(ConfigError::new(format!(
                "script has {} streams for {} caches",
                script.len(),
                config.caches
            )));
        }
        Ok(ModelChecker {
            config,
            script,
            fail_on_stale: false,
            reconcile: None,
        })
    }

    /// Arms fault injection: a read retiring with a version older than
    /// the newest retired write — normally *measured* as the ack-free
    /// staleness window — becomes a [`ProtocolError::StaleRead`] at the
    /// action that retires it. With the dedup search this turns the
    /// paper's section 3.2.5 window into an exact, replayable
    /// counterexample path.
    pub fn fail_on_stale_reads(&mut self, fail: bool) {
        self.fail_on_stale = fail;
    }

    /// Arms differential table reconciliation: every directory protocol
    /// instance in every explored state is wrapped in a
    /// [`Reconciled`](crate::transitions::Reconciled) decorator, so each
    /// DAG edge's `open`/`supply`/eject decision is replayed against the
    /// scheme's declarative [`TransitionTable`](crate::transitions::TransitionTable).
    /// Returns the shared sink; after exploration, an empty sink proves
    /// table/implementation agreement over every edge visited.
    pub fn reconcile_tables(&mut self) -> crate::transitions::ViolationSink {
        let sink = crate::transitions::ViolationSink::new();
        self.reconcile = Some(sink.clone());
        sink
    }

    /// The pre-exploration system state: empty caches, absent directory
    /// entries, no messages in flight.
    #[must_use]
    pub fn initial_state(&self) -> State {
        let agents = CacheId::all(self.config.caches)
            .map(|id| {
                let mut agent = CacheAgent::new(
                    id,
                    self.config.cache,
                    build_policy_for(
                        self.config.protocol,
                        crate::exec::DEFAULT_STATIC_SHARED_FROM,
                    ),
                    self.config.duplicate_directory,
                );
                agent.set_bias_entries(self.config.bias_entries);
                agent
            })
            .collect();
        let controllers = ModuleId::all(self.config.address_map.modules())
            .map(|m| {
                let mut protocol = build_protocol_for(&self.config);
                if let Some(sink) = &self.reconcile {
                    protocol = crate::transitions::Reconciled::wrap(protocol, sink.clone());
                }
                Controller::new(m, protocol, self.config.caches, self.config.concurrency)
            })
            .collect();
        State {
            agents,
            controllers,
            channels: BTreeMap::new(),
            cursor: vec![0; self.config.caches],
            version_counter: 0,
            latest_write: HashMap::new(),
            stale_reads: 0,
            retired: 0,
        }
    }

    fn total_refs(&self) -> usize {
        self.script.iter().map(Vec::len).sum()
    }

    /// The actions enabled in `state`, in deterministic order (issues by
    /// cache index, then deliveries by channel key).
    #[must_use]
    pub fn enabled(&self, state: &State) -> Vec<Action> {
        let mut actions = Vec::new();
        for (i, agent) in state.agents.iter().enumerate() {
            if !agent.is_stalled() && state.cursor[i] < self.script[i].len() {
                actions.push(Action::Issue(i));
            }
        }
        for (&(src, dst), queue) in &state.channels {
            if !queue.is_empty() {
                actions.push(Action::Deliver(src, dst));
            }
        }
        actions
    }

    /// Canonical 128-bit fingerprint of `state` for the visited-set.
    ///
    /// Everything future-relevant is folded in — agents (tag stores with
    /// replacement clocks rank-reduced, BIAS, pending), controllers
    /// (directory, memory, bookkeeping, queue), channel contents, script
    /// cursors, version counter, retirement bookkeeping — in a canonical
    /// order (the channel `BTreeMap` is already sorted; unordered maps
    /// are sorted by the component encoders). Pure statistics are
    /// excluded. `stale_reads` *is* included: two paths that differ only
    /// in observed staleness must stay distinct for the per-leaf stale
    /// totals to reconcile exactly with the tree search.
    #[must_use]
    pub fn fingerprint(&self, state: &State) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        for agent in &state.agents {
            agent.fingerprint(&mut fp);
        }
        for controller in &state.controllers {
            controller.fingerprint(&mut fp);
        }
        fp.write_usize(state.channels.len());
        for (&(src, dst), queue) in &state.channels {
            fp.write_tag(Self::node_tag(src));
            fp.write_tag(Self::node_tag(dst));
            fp.write_usize(queue.len());
            for msg in queue {
                match msg {
                    Msg::ToModule(cmd) => {
                        fp.write_tag(0);
                        crate::fp::cache_to_memory(cmd, &mut fp);
                    }
                    Msg::ToCache(cmd) => {
                        fp.write_tag(1);
                        crate::fp::memory_to_cache(cmd, &mut fp);
                    }
                }
            }
        }
        for &c in &state.cursor {
            fp.write_usize(c);
        }
        fp.write_u64(state.version_counter);
        let mut latest: Vec<(u64, u64)> = state
            .latest_write
            .iter()
            .map(|(a, v)| (a.number(), v.raw()))
            .collect();
        latest.sort_unstable();
        fp.write_usize(latest.len());
        for (a, v) in latest {
            fp.write_u64(a);
            fp.write_u64(v);
        }
        fp.write_u64(state.stale_reads);
        fp.write_usize(state.retired);
        fp.finish()
    }

    fn node_tag(n: Node) -> u64 {
        match n {
            Node::Cache(c) => u64::from(c) << 1,
            Node::Module(m) => (u64::from(m) << 1) | 1,
        }
    }

    fn push_msg(state: &mut State, src: Node, dst: Node, msg: Msg) {
        state.channels.entry((src, dst)).or_default().push(msg);
    }

    fn send_to_memory(&self, state: &mut State, from: CacheId, sends: Vec<CacheToMemory>) {
        for cmd in sends {
            let module = self.config.address_map.module_of(cmd.block());
            Self::push_msg(
                state,
                Node::Cache(from.index() as u16),
                Node::Module(module.index() as u16),
                Msg::ToModule(cmd),
            );
        }
    }

    fn send_emits(&self, state: &mut State, module: ModuleId, emits: Vec<CtrlEmit>) {
        let src = Node::Module(module.index() as u16);
        for emit in emits {
            match emit {
                CtrlEmit::Unicast { to, cmd, .. } => {
                    Self::push_msg(
                        state,
                        src,
                        Node::Cache(to.index() as u16),
                        Msg::ToCache(cmd),
                    );
                }
                CtrlEmit::Broadcast { cmd, exclude, .. } => {
                    for cache in CacheId::all(self.config.caches) {
                        if cache != exclude {
                            Self::push_msg(
                                state,
                                src,
                                Node::Cache(cache.index() as u16),
                                Msg::ToCache(cmd),
                            );
                        }
                    }
                }
            }
        }
    }

    /// Books a retirement; returns the staleness evidence `(block,
    /// observed, expected)` when a read landed inside the ack-free
    /// window.
    fn record_retirement(state: &mut State, op: MemRef, observed: Version) -> Option<(u64, u64)> {
        state.retired += 1;
        match op.kind {
            AccessKind::Write => {
                let slot = state.latest_write.entry(op.addr.block).or_default();
                if observed > *slot {
                    *slot = observed;
                }
                None
            }
            AccessKind::Read => {
                let latest = state
                    .latest_write
                    .get(&op.addr.block)
                    .copied()
                    .unwrap_or_default();
                if observed < latest {
                    state.stale_reads += 1;
                    Some((observed.raw(), latest.raw()))
                } else {
                    None
                }
            }
        }
    }

    fn stale_error(reader: usize, a: BlockAddr, observed: u64, expected: u64) -> ProtocolError {
        ProtocolError::StaleRead {
            a,
            reader: CacheId::new(reader),
            observed,
            expected,
        }
    }

    /// Applies one action; returns the successor state.
    ///
    /// Public so counterexamples can be replayed step-by-step from
    /// [`ModelChecker::initial_state`]; `action` must be enabled in
    /// `state` (an element of [`ModelChecker::enabled`]).
    ///
    /// # Errors
    ///
    /// Returns the [`ProtocolError`] the action provokes: an impossible
    /// command at its recipient, or — with
    /// [`ModelChecker::fail_on_stale_reads`] armed — a stale read
    /// retiring.
    ///
    /// # Panics
    ///
    /// Panics if `action` is not enabled in `state`.
    pub fn step(&self, mut state: State, action: Action) -> Result<State, ProtocolError> {
        match action {
            Action::Issue(i) => {
                let op = self.script[i][state.cursor[i]];
                state.cursor[i] += 1;
                let version = match op.kind {
                    AccessKind::Write => {
                        state.version_counter += 1;
                        Version::new(state.version_counter)
                    }
                    AccessKind::Read => Version::initial(),
                };
                let outcome = state.agents[i].start(op, version);
                if let Some(c) = outcome.completed {
                    if let Some((observed, expected)) =
                        Self::record_retirement(&mut state, c.op, c.observed)
                    {
                        if self.fail_on_stale {
                            return Err(Self::stale_error(i, c.op.addr.block, observed, expected));
                        }
                    }
                }
                self.send_to_memory(&mut state, CacheId::new(i), outcome.sends);
            }
            Action::Deliver(src, dst) => {
                let msg = {
                    let queue = state
                        .channels
                        .get_mut(&(src, dst))
                        .expect("enabled channel exists");
                    let msg = queue.remove(0);
                    if queue.is_empty() {
                        state.channels.remove(&(src, dst));
                    }
                    msg
                };
                match (dst, msg) {
                    (Node::Module(m), Msg::ToModule(cmd)) => {
                        let emits = state.controllers[m as usize].submit(cmd)?;
                        self.send_emits(&mut state, ModuleId::new(m as usize), emits);
                    }
                    (Node::Cache(c), Msg::ToCache(cmd)) => {
                        let out = state.agents[c as usize].on_network(cmd)?;
                        if let Some(completion) = out.completed {
                            if let Some((observed, expected)) = Self::record_retirement(
                                &mut state,
                                completion.op,
                                completion.observed,
                            ) {
                                if self.fail_on_stale {
                                    return Err(Self::stale_error(
                                        c as usize,
                                        completion.op.addr.block,
                                        observed,
                                        expected,
                                    ));
                                }
                            }
                        }
                        self.send_to_memory(&mut state, CacheId::new(c as usize), out.sends);
                    }
                    (node, msg) => unreachable!("misrouted {msg:?} at {node:?}"),
                }
            }
        }
        Ok(state)
    }

    /// Verifies a quiescent leaf.
    fn check_leaf(&self, state: &State) -> Result<(), ProtocolError> {
        if state.retired != self.total_refs() {
            return Err(ProtocolError::UnexpectedCommand {
                state: format!(
                    "quiescent with {}/{} retired",
                    state.retired,
                    self.total_refs()
                ),
                command: "deadlock: no enabled actions remain".to_string(),
            });
        }
        for controller in &state.controllers {
            if controller.busy() {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("{} busy at quiescence", controller.module()),
                    command: "liveness violation".to_string(),
                });
            }
        }
        invariants::check_system(&state.agents, &state.controllers, self.config.address_map)
    }

    /// The directory state and awaiting flag of block `a` at its home
    /// module — a probe for guided-search predicates.
    #[must_use]
    pub fn probe_directory(&self, state: &State, a: BlockAddr) -> (GlobalState, bool) {
        let module = self.config.address_map.module_of(a);
        let protocol = state.controllers[module.index()].protocol();
        (protocol.global_state(a), protocol.awaiting(a))
    }

    /// Every nonempty channel with the coarse classes of its queued
    /// messages in delivery order, in deterministic channel-key order —
    /// a probe for guided-search predicates (e.g. "some module→cache
    /// link holds a grant with a recall queued behind it").
    #[must_use]
    pub fn probe_channels(&self, state: &State) -> Vec<((Node, Node), Vec<FlightMsg>)> {
        state
            .channels
            .iter()
            .map(|(&key, queue)| {
                let kinds = queue
                    .iter()
                    .map(|msg| match msg {
                        Msg::ToModule(_) => FlightMsg::Command,
                        Msg::ToCache(cmd) => match cmd {
                            MemoryToCache::GetData { exclusive, .. } => FlightMsg::Grant {
                                exclusive: *exclusive,
                            },
                            MemoryToCache::MGranted { .. } => FlightMsg::UpgradeAck,
                            MemoryToCache::Inv { .. } | MemoryToCache::BroadInv { .. } => {
                                FlightMsg::Inv
                            }
                            MemoryToCache::Purge { .. } | MemoryToCache::BroadQuery { .. } => {
                                FlightMsg::Recall
                            }
                        },
                    })
                    .collect();
                (key, kinds)
            })
            .collect()
    }

    /// Guided best-first search: expands states in descending `score`
    /// order (FIFO among equal scores) until a state satisfying
    /// `target` is found or `node_budget` states have been expanded.
    /// This is the static analyses' confirmation hook — a flow-level
    /// finding names implicated directory states and in-flight message
    /// shapes, and the guided search steers the same DAG the dedup
    /// search explores toward them, returning a replayable action path
    /// as dynamic evidence.
    ///
    /// Both callbacks receive the checker (for its probes) and a
    /// candidate state; they must be deterministic. The hit path is the
    /// discovery path, not necessarily the shortest. For a fixed
    /// `(node_budget, jobs)` the result is deterministic across runs;
    /// changing `jobs` changes the batch size and may change which hit
    /// is discovered first (never whether one exists within budget).
    #[must_use]
    pub fn explore_guided(
        &self,
        node_budget: u64,
        jobs: usize,
        score: &(dyn Fn(&ModelChecker, &State) -> u64 + Sync),
        target: &(dyn Fn(&ModelChecker, &State) -> bool + Sync),
    ) -> GuidedSearch {
        let jobs = jobs.max(1);
        let mut out = GuidedSearch::default();
        let initial = self.initial_state();
        let root_fp = self.fingerprint(&initial);
        if target(self, &initial) {
            out.hit = Some(Vec::new());
            return out;
        }
        let mut parents: HashMap<Fingerprint, (Fingerprint, Action)> = HashMap::new();
        let mut known: std::collections::HashSet<Fingerprint> =
            std::collections::HashSet::from([root_fp]);
        // The candidate pool: (score, discovery sequence, fp, state).
        let mut pool: Vec<(u64, u64, Fingerprint, State)> =
            vec![(score(self, &initial), 0, root_fp, initial)];
        let mut seq: u64 = 1;
        while !pool.is_empty() && out.states_visited < node_budget {
            pool.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let batch_n = pool
                .len()
                .min((jobs * 8).max(16))
                .min((node_budget - out.states_visited) as usize)
                .max(1);
            let batch: Vec<(Fingerprint, State)> = pool
                .drain(..batch_n)
                .map(|(_, _, fp, st)| (fp, st))
                .collect();
            let chunk_size = batch.len().div_ceil(jobs).max(1);
            let mut chunks: Vec<Vec<(Fingerprint, State)>> = Vec::new();
            let mut rest = batch;
            while !rest.is_empty() {
                let tail = rest.split_off(chunk_size.min(rest.len()));
                chunks.push(std::mem::replace(&mut rest, tail));
            }
            let outs = parallel_map(chunks, jobs, |chunk| self.expand_chunk(chunk));
            for o in outs {
                out.states_visited += o.expanded;
                if let Some((at_fp, action, error)) = o.violation {
                    if out.violation.is_none() {
                        let mut path = Self::path_to(&parents, root_fp, at_fp);
                        if let Some(a) = action {
                            path.push(a);
                        }
                        out.violation = Some(Box::new(Counterexample { error, path }));
                    }
                    continue;
                }
                for (sfp, pfp, action, succ) in o.successors {
                    if !known.insert(sfp) {
                        continue;
                    }
                    parents.insert(sfp, (pfp, action));
                    if out.hit.is_none() && target(self, &succ) {
                        out.hit = Some(Self::path_to(&parents, root_fp, sfp));
                    }
                    pool.push((score(self, &succ), seq, sfp, succ));
                    seq += 1;
                }
            }
            if out.hit.is_some() || out.violation.is_some() {
                return out;
            }
        }
        out.truncated = !pool.is_empty();
        out
    }

    /// Parallel, state-deduplicating exhaustive search over the
    /// interleaving **DAG**, expanding at most `node_budget` distinct
    /// states across up to `jobs` worker threads.
    ///
    /// States are deduplicated by canonical fingerprint
    /// ([`ModelChecker::fingerprint`]), so a state reachable along
    /// millions of interleavings is expanded once. The search records the
    /// DAG's edges; a paths-to-leaf recurrence over them afterwards keeps
    /// [`Exploration::interleavings`] and
    /// [`Exploration::stale_reads_observed`] exactly what the tree search
    /// would report. The search is level-synchronous and its aggregation
    /// is keyed by submission order, so results — including which
    /// violation is reported — are identical for every `jobs` value.
    ///
    /// # Errors
    ///
    /// The first violated property in deterministic search order, as a
    /// [`Counterexample`] carrying the exact action path from the
    /// initial state.
    pub fn explore_dedup(
        &self,
        node_budget: u64,
        jobs: usize,
    ) -> Result<Exploration, Box<Counterexample>> {
        self.explore_dedup_observed(node_budget, jobs, None)
    }

    /// [`explore_dedup`](ModelChecker::explore_dedup), additionally
    /// surfacing search statistics through a [`Metrics`] registry: the
    /// frontier-size-per-depth gauge (`Metrics::frontier`) and the
    /// dedup/throughput counters ([`Metrics::record_search`]).
    ///
    /// # Errors
    ///
    /// Exactly as [`explore_dedup`](ModelChecker::explore_dedup).
    pub fn explore_dedup_observed(
        &self,
        node_budget: u64,
        jobs: usize,
        mut metrics: Option<&mut Metrics>,
    ) -> Result<Exploration, Box<Counterexample>> {
        let jobs = jobs.max(1);
        let started = std::time::Instant::now();
        let mut result = Exploration::default();
        let initial = self.initial_state();
        let root_fp = self.fingerprint(&initial);
        // Per-fingerprint bookkeeping; full states live only in the
        // current frontier. `parents` holds the first (deterministic)
        // discovery edge for counterexample reconstruction; `edges` holds
        // *every* expanded (state, action) edge as a child list, with
        // duplicates preserved (two actions reaching the same successor
        // are two distinct interleaving steps), for exact path counting.
        let mut parents: HashMap<Fingerprint, (Fingerprint, Action)> = HashMap::new();
        let mut depths: HashMap<Fingerprint, u64> = HashMap::new();
        let mut edges: HashMap<Fingerprint, Vec<Fingerprint>> = HashMap::new();
        let mut leaf_stale: HashMap<Fingerprint, u64> = HashMap::new();
        depths.insert(root_fp, 0);
        result.distinct_states = 1;
        let mut frontier: Vec<(Fingerprint, State)> = vec![(root_fp, initial)];
        let mut depth: u64 = 0;
        while !frontier.is_empty() {
            result.peak_frontier = result.peak_frontier.max(frontier.len() as u64);
            if let Some(m) = metrics.as_deref_mut() {
                m.frontier.observe(depth, frontier.len() as u64);
            }
            let remaining = node_budget.saturating_sub(result.states_visited);
            let expand_n = (frontier.len() as u64).min(remaining) as usize;
            let overflow = frontier.split_off(expand_n);
            if !overflow.is_empty() {
                result.truncated = true;
            }
            if expand_n > 0 {
                result.max_depth = result.max_depth.max(depth);
            }
            let chunk_size = frontier.len().div_ceil(jobs * 4).max(1);
            let mut chunks: Vec<Vec<(Fingerprint, State)>> = Vec::new();
            while !frontier.is_empty() {
                let rest = frontier.split_off(chunk_size.min(frontier.len()));
                chunks.push(std::mem::replace(&mut frontier, rest));
            }
            let outs = parallel_map(chunks, jobs, |chunk| self.expand_chunk(chunk));

            // Deterministic sequential merge, in chunk order.
            let mut next: Vec<(Fingerprint, State)> = Vec::new();
            let mut seen_next: std::collections::HashSet<Fingerprint> =
                std::collections::HashSet::new();
            for out in outs {
                result.states_visited += out.expanded;
                for (fp, stale) in out.leaves {
                    leaf_stale.insert(fp, stale);
                }
                if let Some((at_fp, action, error)) = out.violation {
                    let mut path = Self::path_to(&parents, root_fp, at_fp);
                    if let Some(a) = action {
                        path.push(a);
                    }
                    return Err(Box::new(Counterexample { error, path }));
                }
                for (sfp, pfp, action, succ) in out.successors {
                    edges.entry(pfp).or_default().push(sfp);
                    if seen_next.contains(&sfp) {
                        result.dedup_hits += 1;
                    } else if let Some(&d) = depths.get(&sfp) {
                        result.dedup_hits += 1;
                        if d != depth + 1 {
                            result.depth_conflicts += 1;
                        }
                    } else {
                        depths.insert(sfp, depth + 1);
                        parents.insert(sfp, (pfp, action));
                        seen_next.insert(sfp);
                        next.push((sfp, succ));
                        result.distinct_states += 1;
                    }
                }
            }
            if !overflow.is_empty() {
                result.abandoned_frontier = overflow.len() as u64 + next.len() as u64;
                break;
            }
            frontier = next;
            depth += 1;
        }
        let (interleavings, stale) = Self::count_paths(root_fp, &edges, &leaf_stale);
        result.interleavings = u64::try_from(interleavings).unwrap_or(u64::MAX);
        result.stale_reads_observed = u64::try_from(stale).unwrap_or(u64::MAX);
        if let Some(m) = metrics {
            m.record_search(twobit_obs::SearchStats {
                states_expanded: result.states_visited,
                distinct_states: result.distinct_states,
                dedup_hits: result.dedup_hits,
                max_depth: result.max_depth,
                elapsed_secs: started.elapsed().as_secs_f64(),
            });
        }
        Ok(result)
    }

    /// Expands one chunk of a frontier layer (runs on a worker thread).
    fn expand_chunk(&self, chunk: Vec<(Fingerprint, State)>) -> ChunkOut {
        let mut out = ChunkOut::default();
        for (fp, state) in chunk {
            if out.violation.is_some() {
                break;
            }
            out.expanded += 1;
            let actions = self.enabled(&state);
            if actions.is_empty() {
                match self.check_leaf(&state) {
                    Ok(()) => out.leaves.push((fp, state.stale_reads)),
                    Err(e) => out.violation = Some((fp, None, e)),
                }
                continue;
            }
            let last = actions.len() - 1;
            let mut state = Some(state);
            for (ai, action) in actions.into_iter().enumerate() {
                // The final branch consumes the state instead of cloning.
                let branch = if ai == last {
                    state
                        .take()
                        .expect("state consumed only by the last branch")
                } else {
                    state
                        .as_ref()
                        .expect("state present before last branch")
                        .clone()
                };
                match self.step(branch, action) {
                    Ok(succ) => {
                        let sfp = self.fingerprint(&succ);
                        out.successors.push((sfp, fp, action, succ));
                    }
                    Err(e) => {
                        out.violation = Some((fp, Some(action), e));
                        break;
                    }
                }
            }
        }
        out
    }

    /// Exact interleaving accounting over the explored DAG: returns
    /// `(paths, stale)` where `paths` counts root-to-leaf action paths
    /// and `stale` sums, over every such path, the `stale_reads` of its
    /// leaf — precisely what enumerating the interleaving tree would
    /// tally. Computed by the recurrence `f(v) = Σ f(child)` (leaves:
    /// `f = 1`) in iterative post-order; states with no recorded edges
    /// that are not leaves (a truncated search's abandoned frontier)
    /// contribute 0. Saturating in `u128`.
    ///
    /// The state graph is acyclic — every action either advances a script
    /// cursor or consumes an in-flight message the finite execution must
    /// eventually drain (the tree search terminating on these scripts is
    /// the empirical witness) — so the post-order always completes.
    fn count_paths(
        root: Fingerprint,
        edges: &HashMap<Fingerprint, Vec<Fingerprint>>,
        leaf_stale: &HashMap<Fingerprint, u64>,
    ) -> (u128, u128) {
        let mut memo: HashMap<Fingerprint, (u128, u128)> = HashMap::new();
        let mut stack: Vec<(Fingerprint, bool)> = vec![(root, false)];
        while let Some((fp, ready)) = stack.pop() {
            if ready {
                let value = if let Some(&stale) = leaf_stale.get(&fp) {
                    (1u128, u128::from(stale))
                } else {
                    let mut f = 0u128;
                    let mut g = 0u128;
                    for child in edges.get(&fp).map(Vec::as_slice).unwrap_or_default() {
                        let &(cf, cg) = memo.get(child).unwrap_or(&(0, 0));
                        f = f.saturating_add(cf);
                        g = g.saturating_add(cg);
                    }
                    (f, g)
                };
                memo.insert(fp, value);
            } else if !memo.contains_key(&fp) {
                stack.push((fp, true));
                for &child in edges.get(&fp).map(Vec::as_slice).unwrap_or_default() {
                    if !memo.contains_key(&child) {
                        stack.push((child, false));
                    }
                }
            }
        }
        memo.get(&root).copied().unwrap_or((0, 0))
    }

    /// Walks the parent-pointer map from `target` back to `root`.
    fn path_to(
        parents: &HashMap<Fingerprint, (Fingerprint, Action)>,
        root: Fingerprint,
        target: Fingerprint,
    ) -> Vec<Action> {
        let mut path = Vec::new();
        let mut cur = target;
        while cur != root {
            let &(parent, action) = parents
                .get(&cur)
                .expect("parent chain reaches the initial state");
            path.push(action);
            cur = parent;
        }
        path.reverse();
        path
    }

    /// Replays an action path from the initial state through
    /// [`ModelChecker::step`], recording each action into `tracer`
    /// (events are stamped 1..=n with the action's position). If the
    /// path ends at quiescence, the leaf checks run too — so replaying a
    /// [`Counterexample::path`] reproduces its
    /// [`Counterexample::error`].
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] the path provokes, if any.
    ///
    /// # Panics
    ///
    /// Panics if an action in `path` is not enabled when reached.
    pub fn replay_traced(
        &self,
        path: &[Action],
        tracer: &mut dyn Tracer,
    ) -> Result<(), ProtocolError> {
        let mut state = self.initial_state();
        for (i, &action) in path.iter().enumerate() {
            if tracer.enabled() {
                self.trace_action(&state, action, (i + 1) as u64, tracer);
            }
            state = self.step(state, action)?;
        }
        if self.enabled(&state).is_empty() {
            self.check_leaf(&state)?;
        }
        Ok(())
    }

    /// [`replay_traced`](ModelChecker::replay_traced) without tracing.
    ///
    /// # Errors
    ///
    /// The [`ProtocolError`] the path provokes, if any.
    pub fn replay(&self, path: &[Action]) -> Result<(), ProtocolError> {
        self.replay_traced(path, &mut NullTracer)
    }

    /// Renders a counterexample as per-block `twobit-obs` timelines of
    /// its exact action path — one coherent story from the initial
    /// state, unlike a ring-buffer dump of a branching search, which
    /// interleaves events from unrelated branches.
    #[must_use]
    pub fn render_counterexample(&self, cex: &Counterexample) -> String {
        use std::fmt::Write as _;
        let mut ring = RingTracer::new(cex.path.len().max(1));
        let outcome = self.replay_traced(&cex.path, &mut ring);
        let events: Vec<SimEvent> = ring.events().into_iter().cloned().collect();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "counterexample: {} action(s) from the initial state",
            cex.path.len()
        );
        let mut blocks: Vec<BlockAddr> = Vec::new();
        for e in &events {
            if !blocks.contains(&e.block) {
                blocks.push(e.block);
            }
        }
        for block in blocks {
            out.push_str(&twobit_obs::render_block_timeline(&events, block));
        }
        match outcome {
            Err(e) => {
                let _ = writeln!(out, "violation: {e}");
            }
            Ok(()) => {
                let _ = writeln!(
                    out,
                    "warning: replay did not reproduce the recorded violation ({})",
                    cex.error
                );
            }
        }
        out
    }

    /// Exhaustive depth-first **tree** exploration of every interleaving
    /// (no state deduplication), expanding up to `node_budget` states.
    /// Kept as the differential baseline for
    /// [`explore_dedup`](ModelChecker::explore_dedup), which must agree
    /// with it on every completed script.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProtocolError`] found on any path: a deadlock,
    /// an impossible command, or a quiescent invariant violation.
    pub fn explore_exhaustive(&self, node_budget: u64) -> Result<Exploration, ProtocolError> {
        self.explore_exhaustive_traced(node_budget, &mut NullTracer)
    }

    /// [`explore_exhaustive`](ModelChecker::explore_exhaustive), recording
    /// every applied action into `tracer`. The checker has no clock, so
    /// events are stamped with a running action counter. Note the events
    /// cross DFS branches; for a coherent single-path rendering of a
    /// failure, use [`explore_dedup`](ModelChecker::explore_dedup) and
    /// [`render_counterexample`](ModelChecker::render_counterexample).
    ///
    /// # Errors
    ///
    /// Exactly as [`explore_exhaustive`](ModelChecker::explore_exhaustive).
    pub fn explore_exhaustive_traced(
        &self,
        node_budget: u64,
        tracer: &mut dyn Tracer,
    ) -> Result<Exploration, ProtocolError> {
        let mut result = Exploration::default();
        let mut stack = vec![self.initial_state()];
        let mut steps: u64 = 0;
        while let Some(state) = stack.pop() {
            if result.states_visited >= node_budget {
                // The popped state and everything still stacked are
                // abandoned unexpanded; report them instead of silently
                // over-counting the breaching state as visited.
                result.truncated = true;
                result.abandoned_frontier = stack.len() as u64 + 1;
                break;
            }
            result.states_visited += 1;
            let actions = self.enabled(&state);
            if actions.is_empty() {
                if let Err(e) = self.check_leaf(&state) {
                    if tracer.enabled() {
                        tracer.record(SimEvent::new(
                            steps,
                            ActorId::Network,
                            BlockAddr::new(0),
                            format!("leaf check failed: {e}"),
                        ));
                    }
                    return Err(e);
                }
                result.interleavings += 1;
                result.stale_reads_observed += state.stale_reads;
                continue;
            }
            for action in actions {
                steps += 1;
                if tracer.enabled() {
                    self.trace_action(&state, action, steps, tracer);
                }
                stack.push(self.step(state.clone(), action)?);
            }
        }
        Ok(result)
    }

    /// Records `action` (about to be applied to `state`) as a trace event.
    fn trace_action(&self, state: &State, action: Action, t: u64, tracer: &mut dyn Tracer) {
        match action {
            Action::Issue(i) => {
                let op = self.script[i][state.cursor[i]];
                tracer.record(SimEvent::new(
                    t,
                    ActorId::Cache(CacheId::new(i)),
                    op.addr.block,
                    format!("issue {op}"),
                ));
            }
            Action::Deliver(src, dst) => {
                let msg = &state.channels[&(src, dst)][0];
                let (actor, block, text, class) = match (dst, msg) {
                    (Node::Module(m), Msg::ToModule(cmd)) => (
                        ActorId::Module(ModuleId::new(m as usize)),
                        cmd.block(),
                        cmd.to_string(),
                        cmd.class(),
                    ),
                    (Node::Cache(c), Msg::ToCache(cmd)) => (
                        ActorId::Cache(CacheId::new(c as usize)),
                        cmd.block(),
                        cmd.to_string(),
                        cmd.class(),
                    ),
                    (node, msg) => unreachable!("misrouted {msg:?} at {node:?}"),
                };
                tracer.record(SimEvent::new(t, actor, block, text).class(class));
            }
        }
    }

    /// Seeded random-walk exploration: `walks` complete executions, each
    /// choosing uniformly among enabled actions (splitmix64-mixed seed
    /// feeding an xorshift stream; fully deterministic per seed, and
    /// distinct — including adjacent — seeds produce distinct streams).
    /// Scales to scripts exhaustive search cannot cover.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProtocolError`] found on any walk.
    pub fn explore_random(&self, walks: u64, seed: u64) -> Result<Exploration, ProtocolError> {
        let mut result = Exploration::default();
        // splitmix64 the seed before the xorshift loop: xorshift state
        // must be nonzero, and the previous `seed | 1` fix-up collapsed
        // seeds 2k and 2k+1 onto the same walk sequence.
        let mut rng = {
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            if z == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                z
            }
        };
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for _ in 0..walks {
            let mut state = self.initial_state();
            loop {
                result.states_visited += 1;
                let actions = self.enabled(&state);
                if actions.is_empty() {
                    self.check_leaf(&state)?;
                    result.interleavings += 1;
                    result.stale_reads_observed += state.stale_reads;
                    break;
                }
                let pick = (next() % actions.len() as u64) as usize;
                state = self.step(state, actions[pick])?;
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{ProtocolKind, WordAddr};

    fn rd(b: u64) -> MemRef {
        MemRef::read(WordAddr::new(b, 0))
    }

    fn wr(b: u64) -> MemRef {
        MemRef::write(WordAddr::new(b, 0))
    }

    fn checker(protocol: ProtocolKind, script: Vec<Vec<MemRef>>) -> ModelChecker {
        let config = SystemConfig::with_defaults(script.len()).with_protocol(protocol);
        ModelChecker::new(config, script).unwrap()
    }

    const PROTOCOLS: [ProtocolKind; 4] = [
        ProtocolKind::TwoBit,
        ProtocolKind::TwoBitTlb { entries: 2 },
        ProtocolKind::FullMap,
        ProtocolKind::FullMapLocal,
    ];

    /// The section 3.2.5 scenario, exhaustively: both caches read then
    /// both write the same block — every delivery order must stay live
    /// and consistent.
    #[test]
    fn write_race_is_deadlock_free_in_all_interleavings() {
        for protocol in PROTOCOLS {
            let mc = checker(protocol, vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]]);
            let result = mc.explore_exhaustive(2_000_000).unwrap();
            assert!(!result.truncated, "{protocol}: exploration must complete");
            assert!(
                result.interleavings > 10,
                "{protocol}: expected many interleavings, got {}",
                result.interleavings
            );
        }
    }

    /// With reconciliation armed, every DAG edge of the write race is
    /// explained by the scheme's declarative transition table.
    #[test]
    fn reconcile_tables_agrees_on_the_write_race() {
        for protocol in PROTOCOLS {
            let mut mc = checker(protocol, vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]]);
            let sink = mc.reconcile_tables();
            let result = mc.explore_dedup(2_000_000, 2).unwrap();
            assert!(!result.truncated, "{protocol}");
            assert!(
                sink.is_empty(),
                "{protocol}: table disagrees with implementation: {:#?}",
                sink.snapshot()
            );
        }
    }

    /// The replacement/recall race: one cache dirties a block and evicts
    /// it (by touching a conflicting block) while the other cache misses
    /// on it. Every ordering of the write-back vs. the BROADQUERY must
    /// resolve.
    #[test]
    fn replacement_recall_race_is_live() {
        // Direct conflict: a 2-set cache makes blocks 1 and 9 collide
        // (1 % 2 == 9 % 2) only if direct-mapped; use sets=2, assoc=1.
        for protocol in PROTOCOLS {
            let mut config = SystemConfig::with_defaults(2).with_protocol(protocol);
            config.cache = twobit_types::CacheOrg::new(2, 1, 4).unwrap();
            let mc = ModelChecker::new(config, vec![vec![wr(1), rd(9)], vec![rd(1)]]).unwrap();
            let result = mc.explore_exhaustive(2_000_000).unwrap();
            assert!(!result.truncated, "{protocol}");
            assert!(result.interleavings > 0, "{protocol}");
        }
    }

    /// Three caches, upgrade storm on one block. The full interleaving
    /// tree is enormous; a bounded prefix still verifies hundreds of
    /// thousands of distinct orderings (every *completed* path is fully
    /// checked), and the deduplicated search covers it exhaustively.
    #[test]
    fn three_way_upgrade_storm_bounded() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)], vec![rd(1)]],
        );
        let result = mc.explore_exhaustive(150_000).unwrap();
        assert!(result.interleavings > 100, "got {}", result.interleavings);
        // The staleness window of the ack-free design is measurable here;
        // we record rather than assert it (it depends on ordering luck).
        let _ = result.stale_reads_observed;
    }

    /// The deduplicated search agrees exactly with the tree search on a
    /// script both can finish: same interleaving count, same staleness
    /// total — and strictly fewer expansions.
    #[test]
    fn dedup_search_agrees_with_tree_search() {
        for protocol in PROTOCOLS {
            let mc = checker(protocol, vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]]);
            let tree = mc.explore_exhaustive(2_000_000).unwrap();
            let dag = mc.explore_dedup(2_000_000, 2).unwrap();
            assert!(!dag.truncated, "{protocol}");
            assert_eq!(dag.interleavings, tree.interleavings, "{protocol}");
            assert_eq!(
                dag.stale_reads_observed, tree.stale_reads_observed,
                "{protocol}"
            );
            assert!(
                dag.states_visited < tree.states_visited,
                "{protocol}: dedup must shrink the search ({} vs {})",
                dag.states_visited,
                tree.states_visited
            );
        }
    }

    /// The dedup search's deterministic aggregation: identical results
    /// regardless of worker count.
    #[test]
    fn dedup_search_is_deterministic_across_jobs() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)], vec![rd(1)]],
        );
        let one = mc.explore_dedup(500_000, 1).unwrap();
        let four = mc.explore_dedup(500_000, 4).unwrap();
        assert_eq!(one, four);
    }

    /// Armed staleness injection turns the section 3.2.5 ack-free window
    /// into a counterexample whose path replays step-by-step through
    /// `step` to exactly the reported violation.
    #[test]
    fn stale_read_injection_yields_replayable_counterexample() {
        let mut mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), rd(1)]],
        );
        mc.fail_on_stale_reads(true);
        let cex = mc.explore_dedup(1_000_000, 2).unwrap_err();
        assert!(
            matches!(cex.error, ProtocolError::StaleRead { .. }),
            "expected an injected stale read, got {}",
            cex.error
        );
        // Replay manually through the public step API: every prefix
        // action applies cleanly, the final action reproduces the error.
        let mut state = mc.initial_state();
        for (i, &action) in cex.path.iter().enumerate() {
            assert!(
                mc.enabled(&state).contains(&action),
                "action {i} of the path must be enabled"
            );
            match mc.step(state, action) {
                Ok(next) => {
                    assert!(i + 1 < cex.path.len(), "only the last action may fail");
                    state = next;
                }
                Err(e) => {
                    assert_eq!(i + 1, cex.path.len(), "violation is the path's last action");
                    assert_eq!(e, cex.error);
                    // And the packaged replay agrees.
                    assert_eq!(mc.replay(&cex.path), Err(cex.error.clone()));
                    return;
                }
            }
        }
        panic!("replay completed without reproducing the violation");
    }

    /// The rendered counterexample is a coherent single-path timeline.
    #[test]
    fn counterexample_renders_a_timeline() {
        let mut mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), rd(1)]],
        );
        mc.fail_on_stale_reads(true);
        let cex = mc.explore_dedup(1_000_000, 2).unwrap_err();
        let rendered = mc.render_counterexample(&cex);
        assert!(rendered.contains("counterexample:"));
        assert!(rendered.contains("violation: stale read"));
    }

    /// Random walks scale the same checks to longer scripts.
    #[test]
    fn random_walks_cover_longer_scripts() {
        for protocol in PROTOCOLS {
            let mc = checker(
                protocol,
                vec![
                    vec![rd(1), wr(2), rd(1), wr(1), rd(2)],
                    vec![wr(1), rd(2), wr(2), rd(1), wr(1)],
                    vec![rd(2), rd(1), wr(1), rd(2), wr(2)],
                ],
            );
            let result = mc.explore_random(300, 0xdecade).unwrap();
            assert_eq!(result.interleavings, 300, "{protocol}");
        }
    }

    /// Determinism: the same seed explores the same walks.
    #[test]
    fn random_exploration_is_deterministic() {
        let mc = checker(ProtocolKind::TwoBit, vec![vec![rd(1), wr(1)], vec![wr(1)]]);
        let a = mc.explore_random(50, 7).unwrap();
        let b = mc.explore_random(50, 7).unwrap();
        assert_eq!(a, b);
    }

    /// Regression for the `seed | 1` aliasing bug: adjacent seeds (2k,
    /// 2k+1) must diverge, not silently explore identical walks.
    #[test]
    fn adjacent_seeds_diverge() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![
                vec![rd(1), wr(2), rd(1), wr(1), rd(2)],
                vec![wr(1), rd(2), wr(2), rd(1), wr(1)],
                vec![rd(2), rd(1), wr(1), rd(2), wr(2)],
            ],
        );
        for seed in [0u64, 6, 0xdeca_de00] {
            let even = mc.explore_random(50, seed).unwrap();
            let odd = mc.explore_random(50, seed + 1).unwrap();
            assert_ne!(even, odd, "seeds {seed} and {} alias", seed + 1);
        }
    }

    /// Budget truncation is reported, not silent — and exactly: visited
    /// states never exceed the budget, and the abandoned frontier is
    /// accounted for.
    #[test]
    fn budget_truncation_is_flagged() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1), rd(2)], vec![rd(1), wr(1), rd(2)]],
        );
        let result = mc.explore_exhaustive(100).unwrap();
        assert!(result.truncated);
        assert_eq!(
            result.states_visited, 100,
            "exactly the budget is expanded, not budget + 1"
        );
        assert!(
            result.abandoned_frontier > 0,
            "truncation abandons stacked states"
        );

        let dag = mc.explore_dedup(100, 2).unwrap();
        assert!(dag.truncated);
        assert!(dag.states_visited <= 100);
        assert!(dag.abandoned_frontier > 0);
    }

    #[test]
    fn constructor_validates() {
        let config = SystemConfig::with_defaults(2);
        assert!(
            ModelChecker::new(config, vec![vec![rd(1)]]).is_err(),
            "stream count"
        );
        let mut bus = SystemConfig::with_defaults(2).with_protocol(ProtocolKind::Illinois);
        bus.address_map = twobit_types::AddressMap::interleaved(1);
        assert!(
            ModelChecker::new(bus, vec![vec![], vec![]]).is_err(),
            "bus protocols"
        );
    }

    /// The guided search steers toward an implicated in-flight shape —
    /// here, an invalidation queued on some module→cache channel while
    /// the home directory holds the block present-modified — and the
    /// discovery path it returns replays cleanly.
    #[test]
    fn guided_search_reaches_an_implicated_shape() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1)], vec![rd(1), wr(1)]],
        );
        let block = BlockAddr::new(1);
        let score = |mc: &ModelChecker, s: &State| -> u64 {
            let in_flight: usize = mc.probe_channels(s).iter().map(|(_, q)| q.len()).sum();
            in_flight as u64
        };
        let target = |mc: &ModelChecker, s: &State| -> bool {
            let (dir, _) = mc.probe_directory(s, block);
            dir == GlobalState::PresentM
                && mc.probe_channels(s).iter().any(|((_, dst), q)| {
                    matches!(dst, Node::Cache(_)) && q.contains(&FlightMsg::Inv)
                })
        };
        let found = mc.explore_guided(500_000, 2, &score, &target);
        assert!(found.violation.is_none());
        let hit = found.hit.expect("the write race puts an Inv in flight");
        assert!(!hit.is_empty());
        mc.replay(&hit).expect("discovery path replays");
        // Deterministic for fixed (budget, jobs).
        let again = mc.explore_guided(500_000, 2, &score, &target);
        assert_eq!(again.hit, Some(hit));
    }

    /// An unsatisfiable target drains the budget and is flagged as
    /// truncated rather than reported as a miss on a complete search.
    #[test]
    fn guided_search_flags_truncation() {
        let mc = checker(
            ProtocolKind::TwoBit,
            vec![vec![rd(1), wr(1), rd(2)], vec![rd(1), wr(1), rd(2)]],
        );
        let never = |_: &ModelChecker, _: &State| false;
        let flat = |_: &ModelChecker, _: &State| 0u64;
        let out = mc.explore_guided(50, 1, &flat, &never);
        assert!(out.hit.is_none());
        assert!(out.truncated, "frontier was abandoned");
        assert!(out.states_visited >= 50);

        // The same predicate over the full DAG completes un-truncated.
        let full = mc.explore_guided(2_000_000, 2, &flat, &never);
        assert!(full.hit.is_none());
        assert!(!full.truncated, "search exhausted the DAG");
    }

    /// Fingerprints separate distinct states and identify equal ones.
    #[test]
    fn fingerprints_are_canonical() {
        let mc = checker(ProtocolKind::TwoBit, vec![vec![rd(1), wr(1)], vec![rd(2)]]);
        let s0 = mc.initial_state();
        let fp0 = mc.fingerprint(&s0);
        assert_eq!(fp0, mc.fingerprint(&mc.initial_state()), "deterministic");
        let s1 = mc.step(s0.clone(), Action::Issue(0)).unwrap();
        assert_ne!(fp0, mc.fingerprint(&s1), "issuing changes the state");
        // Two independent issues commute to the same state: the DAG
        // property the dedup search exploits.
        let a01 = mc
            .step(
                mc.step(s0.clone(), Action::Issue(0)).unwrap(),
                Action::Issue(1),
            )
            .unwrap();
        let a10 = mc
            .step(mc.step(s0, Action::Issue(1)).unwrap(), Action::Issue(0))
            .unwrap();
        assert_eq!(mc.fingerprint(&a01), mc.fingerprint(&a10));
    }
}
