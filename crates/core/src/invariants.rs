//! System-wide invariant checking at quiescence.
//!
//! Three families of invariants (DESIGN.md section 4):
//!
//! 1. **SWMR** — at most one cache holds a block dirty, and a dirty copy
//!    excludes all other valid copies;
//! 2. **Directory soundness** — each protocol's
//!    [`check_consistency`](crate::DirectoryProtocol::check_consistency)
//!    accepts the ground truth (conservative for two-bit, exact for the
//!    full maps);
//! 3. **Single residence** — a block appears at most once per cache
//!    (enforced by the tag store, re-verified here).

use crate::agent::CacheAgent;
use crate::controller::Controller;
use crate::local::LocalState;
use crate::owner_set::OwnerSet;
use std::collections::HashMap;
use twobit_types::{AddressMap, BlockAddr, CacheId, ProtocolError};

/// Ground truth about one block gathered from all caches.
#[derive(Debug, Clone)]
pub struct BlockTruth {
    /// Caches holding a clean (Shared or Exclusive) copy.
    pub clean: OwnerSet,
    /// Caches holding a dirty copy.
    pub dirty: OwnerSet,
}

/// Gathers the ground truth for every block resident in any cache.
#[must_use]
pub fn gather_truth(agents: &[CacheAgent]) -> HashMap<BlockAddr, BlockTruth> {
    let n = agents.len();
    let mut truth: HashMap<BlockAddr, BlockTruth> = HashMap::new();
    for agent in agents {
        for line in agent.cache().valid_lines() {
            let entry = truth.entry(line.addr).or_insert_with(|| BlockTruth {
                clean: OwnerSet::new(n),
                dirty: OwnerSet::new(n),
            });
            match line.state {
                LocalState::Dirty => {
                    entry.dirty.insert(agent.id());
                }
                LocalState::Shared | LocalState::Exclusive => {
                    entry.clean.insert(agent.id());
                }
                LocalState::Invalid => unreachable!("valid_lines yields valid lines"),
            }
        }
    }
    truth
}

/// Checks SWMR and directory soundness for the whole system.
///
/// Must be called at quiescence (no in-flight messages); mid-transaction
/// the directories legitimately disagree with the caches.
///
/// # Errors
///
/// Returns the first violation found as a [`ProtocolError`].
pub fn check_system(
    agents: &[CacheAgent],
    controllers: &[Controller],
    map: AddressMap,
) -> Result<(), ProtocolError> {
    let truth = gather_truth(agents);

    for (&a, t) in &truth {
        // SWMR.
        if t.dirty.len() > 1 {
            let mut it = t.dirty.iter();
            let first = it.next().expect("len > 1");
            let second = it.next().expect("len > 1");
            return Err(ProtocolError::DuplicateOwner { a, first, second });
        }
        if t.dirty.len() == 1 && !t.clean.is_empty() {
            return Err(ProtocolError::DirectoryInconsistent {
                a,
                detail: format!(
                    "dirty at {} but clean copies at {}",
                    t.dirty.sole_member().expect("len == 1"),
                    t.clean
                ),
            });
        }
    }

    // Directory soundness — including blocks the caches have entirely
    // dropped (the directory must still admit the empty holder set where
    // it claims Absent/Present1 exactness... conservative states may
    // overclaim, each protocol decides).
    for controller in controllers {
        // Every block this module is responsible for that is cached
        // anywhere, plus everything it has written, is checked.
        let empty = BlockTruth {
            clean: OwnerSet::new(agents.len()),
            dirty: OwnerSet::new(agents.len()),
        };
        let mut checked: Vec<BlockAddr> = Vec::new();
        for (&a, t) in &truth {
            if map.module_of(a) == controller.module() {
                controller
                    .protocol()
                    .check_consistency(a, &t.clean, &t.dirty)
                    .map_err(|detail| ProtocolError::DirectoryInconsistent { a, detail })?;
                checked.push(a);
            }
        }
        for (a, _) in controller.memory().written_blocks() {
            if checked.contains(&a) {
                continue;
            }
            controller
                .protocol()
                .check_consistency(a, &empty.clean, &empty.dirty)
                .map_err(|detail| ProtocolError::DirectoryInconsistent { a, detail })?;
        }
    }
    Ok(())
}

/// The set of caches holding block `a` in any valid state — ground truth
/// for per-block assertions in tests.
#[must_use]
pub fn holders_of(agents: &[CacheAgent], a: BlockAddr) -> Vec<CacheId> {
    agents
        .iter()
        .filter(|agent| agent.cache().contains(a))
        .map(CacheAgent::id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::AgentPolicy;
    use crate::two_bit::TwoBitDirectory;
    use twobit_types::{CacheOrg, ControllerConcurrency, ModuleId, Version};

    fn agent(id: usize) -> CacheAgent {
        CacheAgent::new(
            CacheId::new(id),
            CacheOrg::new(4, 2, 4).unwrap(),
            AgentPolicy::WriteBack {
                use_exclusive: false,
            },
            false,
        )
    }

    #[test]
    fn truth_gathers_states_by_kind() {
        let mut a0 = agent(0);
        let mut a1 = agent(1);
        // Fill via the network path to keep agents consistent.
        a0.start(
            twobit_types::MemRef::read(twobit_types::WordAddr::new(1, 0)),
            Version::initial(),
        );
        a0.on_network(twobit_types::MemoryToCache::GetData {
            k: CacheId::new(0),
            a: BlockAddr::new(1),
            version: Version::initial(),
            exclusive: false,
        })
        .unwrap();
        a1.start(
            twobit_types::MemRef::write(twobit_types::WordAddr::new(2, 0)),
            Version::new(1),
        );
        a1.on_network(twobit_types::MemoryToCache::GetData {
            k: CacheId::new(1),
            a: BlockAddr::new(2),
            version: Version::initial(),
            exclusive: true,
        })
        .unwrap();
        let truth = gather_truth(&[a0, a1]);
        assert!(truth[&BlockAddr::new(1)].clean.contains(CacheId::new(0)));
        assert!(truth[&BlockAddr::new(2)].dirty.contains(CacheId::new(1)));
    }

    #[test]
    fn clean_system_passes() {
        let agents = vec![agent(0), agent(1)];
        let controllers = vec![Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            2,
            ControllerConcurrency::PerBlock,
        )];
        check_system(&agents, &controllers, AddressMap::interleaved(1)).unwrap();
    }

    #[test]
    fn directory_overclaim_is_caught() {
        // Directory says Present1 on a block, but two caches hold it.
        let mut c = Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            2,
            ControllerConcurrency::PerBlock,
        );
        // Make the directory believe only C0 read block 1.
        c.submit(twobit_types::CacheToMemory::Request {
            k: CacheId::new(0),
            a: BlockAddr::new(1),
            rw: twobit_types::AccessKind::Read,
        })
        .unwrap();
        // But fabricate copies in both caches (fault injection).
        let mut a0 = agent(0);
        let mut a1 = agent(1);
        for (agent, id) in [(&mut a0, 0usize), (&mut a1, 1)] {
            agent.start(
                twobit_types::MemRef::read(twobit_types::WordAddr::new(1, 0)),
                Version::initial(),
            );
            agent
                .on_network(twobit_types::MemoryToCache::GetData {
                    k: CacheId::new(id),
                    a: BlockAddr::new(1),
                    version: Version::initial(),
                    exclusive: false,
                })
                .unwrap();
        }
        let err = check_system(&[a0, a1], &[c], AddressMap::interleaved(1)).unwrap_err();
        assert!(matches!(err, ProtocolError::DirectoryInconsistent { .. }));
    }

    #[test]
    fn duplicate_dirty_owners_are_caught() {
        let mut a0 = agent(0);
        let mut a1 = agent(1);
        for (agent, id) in [(&mut a0, 0usize), (&mut a1, 1)] {
            agent.start(
                twobit_types::MemRef::write(twobit_types::WordAddr::new(3, 0)),
                Version::new(1),
            );
            agent
                .on_network(twobit_types::MemoryToCache::GetData {
                    k: CacheId::new(id),
                    a: BlockAddr::new(3),
                    version: Version::initial(),
                    exclusive: true,
                })
                .unwrap();
        }
        let controllers = vec![Controller::new(
            ModuleId::new(0),
            Box::new(TwoBitDirectory::new()),
            2,
            ControllerConcurrency::PerBlock,
        )];
        let err = check_system(&[a0, a1], &controllers, AddressMap::interleaved(1)).unwrap_err();
        assert!(matches!(err, ProtocolError::DuplicateOwner { .. }));
    }

    #[test]
    fn holders_of_reports_ground_truth() {
        let mut a0 = agent(0);
        a0.start(
            twobit_types::MemRef::read(twobit_types::WordAddr::new(9, 0)),
            Version::initial(),
        );
        a0.on_network(twobit_types::MemoryToCache::GetData {
            k: CacheId::new(0),
            a: BlockAddr::new(9),
            version: Version::initial(),
            exclusive: false,
        })
        .unwrap();
        let agents = [a0, agent(1)];
        assert_eq!(
            holders_of(&agents, BlockAddr::new(9)),
            vec![CacheId::new(0)]
        );
        assert!(holders_of(&agents, BlockAddr::new(10)).is_empty());
    }
}
