//! Canonical fingerprint encoders for the Table 3-1 command set.
//!
//! Every in-flight command is part of the model checker's system state:
//! two states that differ only in a queued or undelivered command can
//! diverge arbitrarily, so channel contents and controller queues feed
//! the visited-set fingerprint through these encoders. Each variant is
//! framed by a distinct tag before its fields, so commands with
//! overlapping field values (e.g. `REQUEST` vs `DIRECTREAD` of the same
//! block) cannot alias.

use twobit_types::{AccessKind, CacheToMemory, Fingerprinter, MemoryToCache, WritebackKind};

#[inline]
fn rw_tag(rw: AccessKind) -> u64 {
    match rw {
        AccessKind::Read => 0,
        AccessKind::Write => 1,
    }
}

/// Absorbs a cache→memory command.
pub(crate) fn cache_to_memory(cmd: &CacheToMemory, fp: &mut Fingerprinter) {
    match *cmd {
        CacheToMemory::Request { k, a, rw } => {
            fp.write_tag(0);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
            fp.write_tag(rw_tag(rw));
        }
        CacheToMemory::MRequest { k, a, version } => {
            fp.write_tag(1);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
            fp.write_u64(version.raw());
        }
        CacheToMemory::Eject { k, olda, wb } => {
            fp.write_tag(2);
            fp.write_usize(k.index());
            fp.write_u64(olda.number());
            fp.write_tag(match wb {
                WritebackKind::Clean => 0,
                WritebackKind::Dirty => 1,
            });
        }
        CacheToMemory::PutData { from, a, version } => {
            fp.write_tag(3);
            fp.write_usize(from.index());
            fp.write_u64(a.number());
            fp.write_u64(version.raw());
        }
        CacheToMemory::WriteThrough { k, a, version } => {
            fp.write_tag(4);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
            fp.write_u64(version.raw());
        }
        CacheToMemory::DirectRead { k, a } => {
            fp.write_tag(5);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
        }
    }
}

/// Absorbs a memory→cache command.
pub(crate) fn memory_to_cache(cmd: &MemoryToCache, fp: &mut Fingerprinter) {
    match *cmd {
        MemoryToCache::GetData {
            k,
            a,
            version,
            exclusive,
        } => {
            fp.write_tag(0);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
            fp.write_u64(version.raw());
            fp.write_bool(exclusive);
        }
        MemoryToCache::BroadInv { a, exclude } => {
            fp.write_tag(1);
            fp.write_u64(a.number());
            fp.write_usize(exclude.index());
        }
        MemoryToCache::BroadQuery { a, rw } => {
            fp.write_tag(2);
            fp.write_u64(a.number());
            fp.write_tag(rw_tag(rw));
        }
        MemoryToCache::MGranted { k, a, granted } => {
            fp.write_tag(3);
            fp.write_usize(k.index());
            fp.write_u64(a.number());
            fp.write_bool(granted);
        }
        MemoryToCache::Inv { a, to } => {
            fp.write_tag(4);
            fp.write_u64(a.number());
            fp.write_usize(to.index());
        }
        MemoryToCache::Purge { a, to, rw } => {
            fp.write_tag(5);
            fp.write_u64(a.number());
            fp.write_usize(to.index());
            fp.write_tag(rw_tag(rw));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{BlockAddr, CacheId, Version};

    #[test]
    fn variant_tags_prevent_aliasing() {
        let k = CacheId::new(0);
        let a = BlockAddr::new(7);
        let mut f1 = Fingerprinter::new();
        cache_to_memory(
            &CacheToMemory::Request {
                k,
                a,
                rw: AccessKind::Read,
            },
            &mut f1,
        );
        let mut f2 = Fingerprinter::new();
        cache_to_memory(&CacheToMemory::DirectRead { k, a }, &mut f2);
        assert_ne!(f1.finish(), f2.finish());

        let mut f3 = Fingerprinter::new();
        memory_to_cache(&MemoryToCache::Inv { a, to: k }, &mut f3);
        let mut f4 = Fingerprinter::new();
        memory_to_cache(&MemoryToCache::BroadInv { a, exclude: k }, &mut f4);
        assert_ne!(f3.finish(), f4.finish());

        let mut f5 = Fingerprinter::new();
        cache_to_memory(
            &CacheToMemory::PutData {
                from: k,
                a,
                version: Version::new(3),
            },
            &mut f5,
        );
        let mut f6 = Fingerprinter::new();
        cache_to_memory(
            &CacheToMemory::WriteThrough {
                k,
                a,
                version: Version::new(3),
            },
            &mut f6,
        );
        assert_ne!(f5.finish(), f6.finish());
    }
}
