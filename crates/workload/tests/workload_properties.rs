//! Property-based tests of the workload generators: determinism, address
//! discipline, and statistical conformance.

use proptest::prelude::*;
use twobit_types::CacheId;
use twobit_workload::scenarios::{
    IndependentProcesses, LockContention, Migratory, ProcessMigration, ProducerConsumer,
};
use twobit_workload::{SharingModel, SharingParams, Trace, Workload, SHARED_BASE};

proptest! {
    /// Every generator is deterministic per seed and produces addresses
    /// in its declared regions.
    #[test]
    fn generators_are_deterministic(seed in any::<u64>(), pick in 0usize..6) {
        let make = |seed: u64| -> Box<dyn Workload> {
            match pick {
                0 => Box::new(SharingModel::new(SharingParams::moderate(), 3, seed).unwrap()),
                1 => Box::new(IndependentProcesses::new(3, 32, seed).unwrap()),
                2 => Box::new(ProducerConsumer::new(3, 8, seed).unwrap()),
                3 => Box::new(LockContention::new(3, 2, seed).unwrap()),
                4 => Box::new(Migratory::new(3, 4, 16, seed).unwrap()),
                _ => Box::new(ProcessMigration::new(3, 16, 32, seed).unwrap()),
            }
        };
        let mut a = make(seed);
        let mut b = make(seed);
        for i in 0..200 {
            let k = CacheId::new(i % 3);
            prop_assert_eq!(a.next_ref(k), b.next_ref(k));
        }
    }

    /// Trace round-trips survive arbitrary contents.
    #[test]
    fn trace_roundtrip(
        entries in prop::collection::vec((0usize..16, any::<u64>(), any::<bool>()), 0..200),
    ) {
        let mut t = Trace::new();
        for (cpu, block, write) in entries {
            let addr = twobit_types::WordAddr::new(block, 0);
            let op = if write {
                twobit_types::MemRef::write(addr)
            } else {
                twobit_types::MemRef::read(addr)
            };
            t.push(CacheId::new(cpu), op);
        }
        let decoded = Trace::decode(t.encode()).unwrap();
        prop_assert_eq!(t, decoded);
    }

    /// The sharing model's empirical q converges to the configured q.
    #[test]
    fn q_converges(q_hundredths in 1u32..50) {
        let q = f64::from(q_hundredths) / 100.0;
        let params = SharingParams { q, ..SharingParams::moderate() };
        let mut w = SharingModel::new(params, 1, 99).unwrap();
        let n = 20_000;
        let shared = (0..n)
            .filter(|_| {
                w.next_ref(CacheId::new(0)).addr.block.number() >= SHARED_BASE
            })
            .count();
        let emp = shared as f64 / f64::from(n);
        prop_assert!((emp - q).abs() < 0.02, "q={q}, empirical {emp}");
    }

    /// Workload addresses never collide across private regions: two
    /// different CPUs' private streams are disjoint.
    #[test]
    fn private_streams_are_disjoint(seed in any::<u64>()) {
        let mut w = IndependentProcesses::new(4, 64, seed).unwrap();
        let mut seen: Vec<std::collections::HashSet<u64>> = vec![Default::default(); 4];
        for i in 0..400 {
            let k = i % 4;
            let b = w.next_ref(CacheId::new(k)).addr.block.number();
            seen[k].insert(b);
        }
        for i in 0..4 {
            for j in i + 1..4 {
                prop_assert!(seen[i].is_disjoint(&seen[j]), "cpus {i} and {j} collide");
            }
        }
    }
}
