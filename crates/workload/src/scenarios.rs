//! Concrete sharing scenarios.
//!
//! Where [`SharingModel`](crate::SharingModel) draws references from a
//! parameterized distribution, these scenarios reproduce the *patterns*
//! the paper's introduction worries about — each one stresses a specific
//! protocol path:
//!
//! * [`IndependentProcesses`] — no write sharing at all: the
//!   multiprogramming case for which the paper judges the two-bit scheme
//!   "acceptable with up to 64 processors";
//! * [`ProducerConsumer`] — one writer, many readers: exercises
//!   `BROADQUERY(read)` / owner-downgrade on every handoff;
//! * [`LockContention`] — test-and-set on a handful of lock blocks:
//!   exercises `MREQUEST`/`BROADINV` storms and the section 3.2.5 race;
//! * [`Migratory`] — read-modify-write ownership migrating around the
//!   machine: exercises `BROADQUERY(write)` chains.
//!
//! Each mixes its sharing pattern with a private-reference background so
//! hit ratios stay realistic.

use crate::model::{SharingModel, Workload, SHARED_BASE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twobit_types::{CacheId, ConfigError, MemRef, WordAddr};

fn private_ref(rng: &mut StdRng, k: CacheId, pool: u64, write_prob: f64) -> MemRef {
    let idx = rng.gen_range(0..pool);
    let addr = WordAddr {
        block: SharingModel::private_block(k, idx),
        offset: 0,
    };
    if rng.gen_bool(write_prob) {
        MemRef::write(addr)
    } else {
        MemRef::read(addr)
    }
}

fn shared_addr(i: u64) -> WordAddr {
    WordAddr {
        block: twobit_types::BlockAddr::new(SHARED_BASE + i),
        offset: 0,
    }
}

/// Pure multiprogramming: every reference is private (`q = 0`).
#[derive(Debug)]
pub struct IndependentProcesses {
    rngs: Vec<StdRng>,
    pool: u64,
    write_prob: f64,
}

impl IndependentProcesses {
    /// `pool` private blocks per CPU, with the given write probability.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero CPUs or an empty pool.
    pub fn new(cpus: usize, pool: u64, seed: u64) -> Result<Self, ConfigError> {
        if cpus == 0 || pool == 0 {
            return Err(ConfigError::new(
                "independent-processes needs cpus and a pool",
            ));
        }
        Ok(IndependentProcesses {
            rngs: (0..cpus)
                .map(|i| StdRng::seed_from_u64(seed ^ (i as u64) << 32))
                .collect(),
            pool,
            write_prob: 0.3,
        })
    }
}

impl Workload for IndependentProcesses {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let pool = self.pool;
        let wp = self.write_prob;
        private_ref(&mut self.rngs[k.index()], k, pool, wp)
    }

    fn name(&self) -> &'static str {
        "independent-processes"
    }
}

/// CPU 0 produces into a circular buffer of shared blocks; the others
/// consume. `sharing_fraction` of references touch the buffer.
#[derive(Debug)]
pub struct ProducerConsumer {
    rngs: Vec<StdRng>,
    buffer_blocks: u64,
    sharing_fraction: f64,
    produce_cursor: u64,
    consume_cursors: Vec<u64>,
    private_pool: u64,
}

impl ProducerConsumer {
    /// A `buffer_blocks`-deep buffer shared by `cpus` CPUs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for fewer than two CPUs or an empty buffer.
    pub fn new(cpus: usize, buffer_blocks: u64, seed: u64) -> Result<Self, ConfigError> {
        if cpus < 2 {
            return Err(ConfigError::new(
                "producer/consumer needs at least two cpus",
            ));
        }
        if buffer_blocks == 0 {
            return Err(ConfigError::new("buffer must be nonempty"));
        }
        Ok(ProducerConsumer {
            rngs: (0..cpus)
                .map(|i| StdRng::seed_from_u64(seed ^ (i as u64) << 32))
                .collect(),
            buffer_blocks,
            sharing_fraction: 0.2,
            produce_cursor: 0,
            consume_cursors: vec![0; cpus],
            private_pool: 96,
        })
    }
}

impl Workload for ProducerConsumer {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let frac = self.sharing_fraction;
        let pool = self.private_pool;
        let shared = self.rngs[k.index()].gen_bool(frac);
        if !shared {
            return private_ref(&mut self.rngs[k.index()], k, pool, 0.3);
        }
        if k.index() == 0 {
            // Produce: write the next slot.
            let slot = self.produce_cursor % self.buffer_blocks;
            self.produce_cursor += 1;
            MemRef::write(shared_addr(slot))
        } else {
            // Consume: read my next slot.
            let cursor = &mut self.consume_cursors[k.index()];
            let slot = *cursor % self.buffer_blocks;
            *cursor += 1;
            MemRef::read(shared_addr(slot))
        }
    }

    fn name(&self) -> &'static str {
        "producer-consumer"
    }
}

/// Test-and-set contention on a few lock blocks: a "lock acquire" is a
/// read of the lock block immediately followed (on the next reference)
/// by a write to it — the write-hit-on-unmodified-block path of
/// section 3.2.4, from many CPUs at once.
#[derive(Debug)]
pub struct LockContention {
    rngs: Vec<StdRng>,
    locks: u64,
    lock_fraction: f64,
    pending_write: Vec<Option<u64>>,
    private_pool: u64,
}

impl LockContention {
    /// `locks` lock blocks contended by `cpus` CPUs.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero CPUs or zero locks.
    pub fn new(cpus: usize, locks: u64, seed: u64) -> Result<Self, ConfigError> {
        if cpus == 0 || locks == 0 {
            return Err(ConfigError::new("lock contention needs cpus and locks"));
        }
        Ok(LockContention {
            rngs: (0..cpus)
                .map(|i| StdRng::seed_from_u64(seed ^ (i as u64) << 32))
                .collect(),
            locks,
            lock_fraction: 0.1,
            pending_write: vec![None; cpus],
            private_pool: 96,
        })
    }
}

impl Workload for LockContention {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        // Second half of a test-and-set?
        if let Some(lock) = self.pending_write[k.index()].take() {
            return MemRef::write(shared_addr(lock));
        }
        let frac = self.lock_fraction;
        let pool = self.private_pool;
        if self.rngs[k.index()].gen_bool(frac) {
            let lock = self.rngs[k.index()].gen_range(0..self.locks);
            self.pending_write[k.index()] = Some(lock);
            MemRef::read(shared_addr(lock))
        } else {
            private_ref(&mut self.rngs[k.index()], k, pool, 0.3)
        }
    }

    fn name(&self) -> &'static str {
        "lock-contention"
    }
}

/// Migratory ownership: a region of shared blocks is read-modified-
/// written by one CPU at a time, ownership rotating every `phase_len`
/// references.
#[derive(Debug)]
pub struct Migratory {
    rngs: Vec<StdRng>,
    region_blocks: u64,
    phase_len: u64,
    counters: Vec<u64>,
    cpus: usize,
    private_pool: u64,
}

impl Migratory {
    /// A `region_blocks` migratory region over `cpus` CPUs with ownership
    /// phases of `phase_len` references.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero CPUs, an empty region, or a zero
    /// phase length.
    pub fn new(
        cpus: usize,
        region_blocks: u64,
        phase_len: u64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if cpus == 0 || region_blocks == 0 || phase_len == 0 {
            return Err(ConfigError::new(
                "migratory needs cpus, a region, and a phase",
            ));
        }
        Ok(Migratory {
            rngs: (0..cpus)
                .map(|i| StdRng::seed_from_u64(seed ^ (i as u64) << 32))
                .collect(),
            region_blocks,
            phase_len,
            counters: vec![0; cpus],
            cpus,
            private_pool: 96,
        })
    }

    /// Which CPU owns the region during `my_count`-th reference of CPU k.
    fn owner_at(&self, count: u64) -> usize {
        ((count / self.phase_len) % self.cpus as u64) as usize
    }
}

impl Workload for Migratory {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let count = self.counters[k.index()];
        self.counters[k.index()] += 1;
        let owner = self.owner_at(count);
        let pool = self.private_pool;
        if owner == k.index() {
            // My phase: read-modify-write the region.
            let slot = count % self.region_blocks;
            if count.is_multiple_of(2) {
                MemRef::read(shared_addr(slot))
            } else {
                MemRef::write(shared_addr(slot))
            }
        } else {
            private_ref(&mut self.rngs[k.index()], k, pool, 0.3)
        }
    }

    fn name(&self) -> &'static str {
        "migratory"
    }
}

/// Process migration: each *process* owns a private working set, but
/// processes rotate across CPUs every `phase_len` references.
///
/// After a migration, the new host CPU touches blocks still dirty in the
/// previous host's cache — pure coherence traffic with **no logical
/// sharing at all**. This is the effect section 2.2 warns about ("this
/// software solution is not sufficient by itself if we allow process
/// migration") and section 4.2 folds into the sharing level ("effects due
/// to process migration are not included but could be accounted for by
/// adjusting the level of sharing"). Directory schemes handle it
/// transparently; the static software scheme, which assumes private data
/// never moves, becomes **incoherent** under it — a property the test
/// suite demonstrates.
#[derive(Debug)]
pub struct ProcessMigration {
    rngs: Vec<StdRng>,
    phase_len: u64,
    counters: Vec<u64>,
    cpus: usize,
    working_set: u64,
    write_prob: f64,
}

impl ProcessMigration {
    /// `cpus` processes on `cpus` CPUs, rotating every `phase_len`
    /// references, each with a `working_set`-block private region.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on zero CPUs, an empty working set, or a
    /// zero phase length.
    pub fn new(
        cpus: usize,
        working_set: u64,
        phase_len: u64,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        if cpus == 0 || working_set == 0 || phase_len == 0 {
            return Err(ConfigError::new(
                "migration needs cpus, a working set, and a phase",
            ));
        }
        Ok(ProcessMigration {
            rngs: (0..cpus)
                .map(|i| StdRng::seed_from_u64(seed ^ (i as u64) << 32))
                .collect(),
            phase_len,
            counters: vec![0; cpus],
            cpus,
            working_set,
            write_prob: 0.3,
        })
    }

    /// The process currently hosted on CPU `k` after `count` references.
    fn process_on(&self, k: CacheId, count: u64) -> usize {
        let phase = count / self.phase_len;
        (k.index() + self.cpus - (phase as usize % self.cpus)) % self.cpus
    }
}

impl Workload for ProcessMigration {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let count = self.counters[k.index()];
        self.counters[k.index()] += 1;
        let process = self.process_on(k, count);
        // The process's working set lives in *its* region, regardless of
        // which CPU currently runs it.
        let idx = self.rngs[k.index()].gen_range(0..self.working_set);
        let block = SharingModel::private_block(CacheId::new(process), idx);
        let addr = WordAddr { block, offset: 0 };
        if self.rngs[k.index()].gen_bool(self.write_prob) {
            MemRef::write(addr)
        } else {
            MemRef::read(addr)
        }
    }

    fn name(&self) -> &'static str {
        "process-migration"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::AccessKind;

    #[test]
    fn independent_processes_never_share() {
        let mut w = IndependentProcesses::new(4, 64, 1).unwrap();
        for i in 0..4 {
            for _ in 0..500 {
                let r = w.next_ref(CacheId::new(i));
                assert!(!SharingModel::is_shared(r.addr.block));
            }
        }
    }

    #[test]
    fn producer_writes_consumers_read() {
        let mut w = ProducerConsumer::new(3, 8, 2).unwrap();
        for _ in 0..2000 {
            let r = w.next_ref(CacheId::new(0));
            if SharingModel::is_shared(r.addr.block) {
                assert_eq!(r.kind, AccessKind::Write, "producer only writes the buffer");
            }
            for i in 1..3 {
                let r = w.next_ref(CacheId::new(i));
                if SharingModel::is_shared(r.addr.block) {
                    assert_eq!(r.kind, AccessKind::Read, "consumers only read the buffer");
                }
            }
        }
    }

    #[test]
    fn producer_covers_all_buffer_slots() {
        let mut w = ProducerConsumer::new(2, 4, 3).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let r = w.next_ref(CacheId::new(0));
            if SharingModel::is_shared(r.addr.block) {
                seen.insert(r.addr.block.number() - SHARED_BASE);
            }
        }
        assert_eq!(seen.len(), 4, "all slots produced: {seen:?}");
    }

    #[test]
    fn lock_acquire_is_read_then_write_of_same_block() {
        let mut w = LockContention::new(2, 2, 4).unwrap();
        let k = CacheId::new(0);
        let mut last: Option<MemRef> = None;
        let mut acquisitions = 0;
        for _ in 0..5000 {
            let r = w.next_ref(k);
            if let Some(prev) = last.take() {
                if SharingModel::is_shared(prev.addr.block) && prev.kind == AccessKind::Read {
                    assert_eq!(r.addr.block, prev.addr.block, "write follows its read");
                    assert_eq!(r.kind, AccessKind::Write);
                    acquisitions += 1;
                }
            }
            last = Some(r);
        }
        assert!(
            acquisitions > 100,
            "locks were contended {acquisitions} times"
        );
    }

    #[test]
    fn migratory_ownership_rotates() {
        let mut w = Migratory::new(3, 4, 10, 5).unwrap();
        // During CPU 1's phase (counts 10..20), only CPU 1 touches shared.
        for count in 0..30u64 {
            for i in 0..3usize {
                let r = w.next_ref(CacheId::new(i));
                let owner = ((count / 10) % 3) as usize;
                if SharingModel::is_shared(r.addr.block) {
                    assert_eq!(i, owner, "count {count}: only the owner touches the region");
                }
            }
        }
    }

    #[test]
    fn constructors_validate() {
        assert!(IndependentProcesses::new(0, 4, 1).is_err());
        assert!(ProducerConsumer::new(1, 4, 1).is_err());
        assert!(LockContention::new(2, 0, 1).is_err());
        assert!(Migratory::new(2, 4, 0, 1).is_err());
        assert!(ProcessMigration::new(2, 0, 8, 1).is_err());
    }

    #[test]
    fn migration_rotates_processes_across_cpus() {
        let mut w = ProcessMigration::new(2, 4, 10, 3).unwrap();
        // Phase 0: cpu 0 runs process 0. Phase 1: cpu 0 runs process 1.
        let phase0: Vec<u64> = (0..10)
            .map(|_| w.next_ref(CacheId::new(0)).addr.block.number())
            .collect();
        let phase1: Vec<u64> = (0..10)
            .map(|_| w.next_ref(CacheId::new(0)).addr.block.number())
            .collect();
        let region = |b: u64| b >> 20; // PRIVATE_REGION_STRIDE = 1 << 20
        assert!(
            phase0.iter().all(|&b| region(b) == 0),
            "phase 0 runs process 0"
        );
        assert!(
            phase1.iter().all(|&b| region(b) == 1),
            "phase 1 runs process 1"
        );
    }

    #[test]
    fn migration_never_touches_shared_region() {
        let mut w = ProcessMigration::new(3, 8, 5, 7).unwrap();
        for i in 0..300 {
            let r = w.next_ref(CacheId::new(i % 3));
            assert!(
                !SharingModel::is_shared(r.addr.block),
                "migration data is logically private"
            );
        }
    }
}
