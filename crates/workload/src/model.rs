//! The merged private/shared reference stream (section 4.2's model).

use crate::params::SharingParams;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use twobit_types::{BlockAddr, CacheId, ConfigError, MemRef, WordAddr};

/// First shared (public, writeable) block number. Blocks below are
/// per-CPU private; the static software scheme uses this very threshold
/// as its compile-time tag.
pub const SHARED_BASE: u64 = 1 << 32;

/// Stride between consecutive CPUs' private regions.
const PRIVATE_REGION_STRIDE: u64 = 1 << 20;

/// A source of memory references, one stream per CPU.
///
/// Implementations must be deterministic given their construction seed:
/// every experiment in the repository is replayable.
pub trait Workload {
    /// Produces the next reference for CPU `k`.
    fn next_ref(&mut self, k: CacheId) -> MemRef;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

impl<W: Workload + ?Sized> Workload for Box<W> {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        (**self).next_ref(k)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

impl<W: Workload + ?Sized> Workload for &mut W {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        (**self).next_ref(k)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The paper's parameterized sharing workload.
///
/// Per reference: with probability `q` pick a block from the global
/// shared pool (uniform or Zipf) and write it with probability `w`;
/// otherwise pick from the CPU's private pool (uniform) and write it with
/// probability `private_write_prob`.
#[derive(Debug, Clone)]
pub struct SharingModel {
    params: SharingParams,
    zipf: Option<Zipf>,
    rngs: Vec<StdRng>,
}

impl SharingModel {
    /// Builds the model for `cpus` processors with a deterministic `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the parameters are invalid, `cpus` is
    /// zero, or a private pool cannot fit its region.
    pub fn new(params: SharingParams, cpus: usize, seed: u64) -> Result<Self, ConfigError> {
        params.validate()?;
        if cpus == 0 {
            return Err(ConfigError::new("a workload needs at least one cpu"));
        }
        if params.private_blocks > PRIVATE_REGION_STRIDE {
            return Err(ConfigError::new(format!(
                "private pool {} exceeds the per-cpu region of {PRIVATE_REGION_STRIDE} blocks",
                params.private_blocks
            )));
        }
        if SHARED_BASE / PRIVATE_REGION_STRIDE < cpus as u64 {
            return Err(ConfigError::new(
                "too many cpus for the private address layout",
            ));
        }
        let zipf = params
            .shared_zipf_s
            .map(|s| Zipf::new(params.shared_blocks as usize, s));
        // One RNG per CPU, decorrelated by a large odd multiplier, so a
        // CPU's stream does not depend on how streams are interleaved.
        let rngs = (0..cpus)
            .map(|i| StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
            .collect();
        Ok(SharingModel { params, zipf, rngs })
    }

    /// The model's parameters.
    #[must_use]
    pub fn params(&self) -> &SharingParams {
        &self.params
    }

    /// The shared block with pool index `i`.
    #[must_use]
    pub fn shared_block(i: u64) -> BlockAddr {
        BlockAddr::new(SHARED_BASE + i)
    }

    /// The private block with pool index `i` belonging to CPU `k`.
    #[must_use]
    pub fn private_block(k: CacheId, i: u64) -> BlockAddr {
        BlockAddr::new((k.index() as u64) * PRIVATE_REGION_STRIDE + i)
    }

    /// `true` if `a` is in the shared region.
    #[must_use]
    pub fn is_shared(a: BlockAddr) -> bool {
        a.number() >= SHARED_BASE
    }
}

impl Workload for SharingModel {
    fn next_ref(&mut self, k: CacheId) -> MemRef {
        let params = self.params;
        let rng = &mut self.rngs[k.index()];
        let shared = rng.gen_bool(params.q);
        let (block, write) = if shared {
            let idx = match &self.zipf {
                Some(z) => z.sample(rng) as u64,
                None => rng.gen_range(0..params.shared_blocks),
            };
            (Self::shared_block(idx), rng.gen_bool(params.w))
        } else {
            let idx = rng.gen_range(0..params.private_blocks);
            (
                Self::private_block(k, idx),
                rng.gen_bool(params.private_write_prob),
            )
        };
        let addr = WordAddr { block, offset: 0 };
        if write {
            MemRef::write(addr)
        } else {
            MemRef::read(addr)
        }
    }

    fn name(&self) -> &'static str {
        "sharing-model"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::AccessKind;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SharingModel::new(SharingParams::moderate(), 2, 7).unwrap();
        let mut b = SharingModel::new(SharingParams::moderate(), 2, 7).unwrap();
        for i in 0..1000 {
            let k = CacheId::new(i % 2);
            assert_eq!(a.next_ref(k), b.next_ref(k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SharingModel::new(SharingParams::moderate(), 1, 1).unwrap();
        let mut b = SharingModel::new(SharingParams::moderate(), 1, 2).unwrap();
        let k = CacheId::new(0);
        let same = (0..100).filter(|_| a.next_ref(k) == b.next_ref(k)).count();
        assert!(same < 100, "identical streams from different seeds");
    }

    #[test]
    fn cpu_streams_are_independent_of_interleaving() {
        let mut together = SharingModel::new(SharingParams::high(), 2, 3).unwrap();
        let mut alone = SharingModel::new(SharingParams::high(), 2, 3).unwrap();
        // Drive CPU 0 with CPU 1 interleaved vs. CPU 0 alone.
        let mut seq_a = Vec::new();
        for _ in 0..100 {
            seq_a.push(together.next_ref(CacheId::new(0)));
            together.next_ref(CacheId::new(1));
        }
        let seq_b: Vec<_> = (0..100).map(|_| alone.next_ref(CacheId::new(0))).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn shared_fraction_approximates_q() {
        let params = SharingParams {
            q: 0.10,
            ..SharingParams::high()
        };
        let mut w = SharingModel::new(params, 1, 11).unwrap();
        let k = CacheId::new(0);
        let n = 50_000;
        let shared = (0..n)
            .filter(|_| SharingModel::is_shared(w.next_ref(k).addr.block))
            .count();
        let frac = shared as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "shared fraction {frac}");
    }

    #[test]
    fn write_fraction_of_shared_refs_approximates_w() {
        let params = SharingParams {
            q: 0.5,
            w: 0.3,
            ..SharingParams::high()
        };
        let mut wl = SharingModel::new(params, 1, 13).unwrap();
        let k = CacheId::new(0);
        let mut shared = 0usize;
        let mut shared_writes = 0usize;
        for _ in 0..50_000 {
            let r = wl.next_ref(k);
            if SharingModel::is_shared(r.addr.block) {
                shared += 1;
                if r.kind == AccessKind::Write {
                    shared_writes += 1;
                }
            }
        }
        let frac = shared_writes as f64 / shared as f64;
        assert!((frac - 0.3).abs() < 0.02, "shared write fraction {frac}");
    }

    #[test]
    fn private_regions_are_disjoint_per_cpu() {
        let mut w = SharingModel::new(SharingParams::low(), 4, 5).unwrap();
        for i in 0..4usize {
            let k = CacheId::new(i);
            for _ in 0..200 {
                let r = w.next_ref(k);
                let b = r.addr.block;
                if !SharingModel::is_shared(b) {
                    let region = b.number() / PRIVATE_REGION_STRIDE;
                    assert_eq!(region as usize, i, "cpu {i} touched region {region}");
                }
            }
        }
    }

    #[test]
    fn shared_pool_is_bounded() {
        let params = SharingParams {
            q: 1.0,
            shared_blocks: 16,
            ..SharingParams::high()
        };
        let mut w = SharingModel::new(params, 1, 17).unwrap();
        for _ in 0..1000 {
            let b = w.next_ref(CacheId::new(0)).addr.block.number();
            assert!((SHARED_BASE..SHARED_BASE + 16).contains(&b));
        }
    }

    #[test]
    fn zipf_pool_prefers_popular_blocks() {
        let params = SharingParams {
            q: 1.0,
            shared_zipf_s: Some(1.2),
            ..SharingParams::high()
        };
        let mut w = SharingModel::new(params, 1, 19).unwrap();
        let mut first = 0usize;
        for _ in 0..5000 {
            if w.next_ref(CacheId::new(0)).addr.block.number() == SHARED_BASE {
                first += 1;
            }
        }
        assert!(
            first > 5000 / 16,
            "block 0 should be over-represented, got {first}"
        );
    }

    #[test]
    fn construction_validates() {
        assert!(SharingModel::new(SharingParams::low(), 0, 1).is_err());
        let bad = SharingParams {
            q: 2.0,
            ..SharingParams::low()
        };
        assert!(SharingModel::new(bad, 1, 1).is_err());
    }
}
