//! The sharing-model parameters of section 4.2.

use serde::{Deserialize, Serialize};
use twobit_types::ConfigError;

/// Parameters of the merged private/shared reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingParams {
    /// Probability the next reference is to a shared block (the paper's
    /// `q`).
    pub q: f64,
    /// Probability a shared reference is a write (the paper's `w`).
    pub w: f64,
    /// Probability a *private* reference is a write (does not affect
    /// coherence overhead; present for realistic traffic).
    pub private_write_prob: f64,
    /// Size of the shared-writeable block pool.
    pub shared_blocks: u64,
    /// Size of each CPU's private block pool.
    pub private_blocks: u64,
    /// Zipf skew for shared-block selection; `None` means uniform —
    /// Table 4-2 uses uniform ("the probability that a shared block
    /// reference is to a particular shared block is 1/16").
    pub shared_zipf_s: Option<f64>,
}

impl SharingParams {
    /// The paper's **low sharing** case (section 4.3 case 1):
    /// `q = 0.01`, workload otherwise tuned so shared hits are plentiful.
    #[must_use]
    pub fn low() -> Self {
        SharingParams {
            q: 0.01,
            w: 0.2,
            private_write_prob: 0.3,
            shared_blocks: 16,
            private_blocks: 96,
            shared_zipf_s: None,
        }
    }

    /// The paper's **moderate sharing** case (section 4.3 case 2):
    /// `q = 0.05`.
    #[must_use]
    pub fn moderate() -> Self {
        SharingParams {
            q: 0.05,
            ..SharingParams::low()
        }
    }

    /// The paper's **high sharing** case (section 4.3 case 3):
    /// `q = 0.10`.
    #[must_use]
    pub fn high() -> Self {
        SharingParams {
            q: 0.10,
            ..SharingParams::low()
        }
    }

    /// The Table 4-2 configuration: 16 shared blocks, uniform access,
    /// with the given `q` and `w`.
    #[must_use]
    pub fn table4_2(q: f64, w: f64) -> Self {
        SharingParams {
            q,
            w,
            private_write_prob: 0.3,
            shared_blocks: 16,
            private_blocks: 96,
            shared_zipf_s: None,
        }
    }

    /// Same parameters with a different write fraction `w`.
    #[must_use]
    pub fn with_w(mut self, w: f64) -> Self {
        self.w = w;
        self
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any probability is outside `[0, 1]` or a
    /// pool is empty.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (name, p) in [
            ("q", self.q),
            ("w", self.w),
            ("private_write_prob", self.private_write_prob),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(ConfigError::new(format!(
                    "{name} = {p} is not a probability"
                )));
            }
        }
        if self.shared_blocks == 0 {
            return Err(ConfigError::new("shared pool must be nonempty"));
        }
        if self.private_blocks == 0 {
            return Err(ConfigError::new("private pools must be nonempty"));
        }
        if let Some(s) = self.shared_zipf_s {
            if !s.is_finite() || s < 0.0 {
                return Err(ConfigError::new(format!(
                    "zipf skew {s} must be finite and >= 0"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_q_values() {
        assert_eq!(SharingParams::low().q, 0.01);
        assert_eq!(SharingParams::moderate().q, 0.05);
        assert_eq!(SharingParams::high().q, 0.10);
        for p in [
            SharingParams::low(),
            SharingParams::moderate(),
            SharingParams::high(),
        ] {
            p.validate().unwrap();
        }
    }

    #[test]
    fn table4_2_pool_is_sixteen_uniform() {
        let p = SharingParams::table4_2(0.05, 0.2);
        assert_eq!(p.shared_blocks, 16);
        assert!(p.shared_zipf_s.is_none());
        p.validate().unwrap();
    }

    #[test]
    fn with_w_overrides() {
        assert_eq!(SharingParams::low().with_w(0.4).w, 0.4);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SharingParams {
            q: 1.5,
            ..SharingParams::low()
        }
        .validate()
        .is_err());
        assert!(SharingParams {
            w: -0.1,
            ..SharingParams::low()
        }
        .validate()
        .is_err());
        assert!(SharingParams {
            shared_blocks: 0,
            ..SharingParams::low()
        }
        .validate()
        .is_err());
        assert!(SharingParams {
            private_blocks: 0,
            ..SharingParams::low()
        }
        .validate()
        .is_err());
        assert!(SharingParams {
            shared_zipf_s: Some(f64::NAN),
            ..SharingParams::low()
        }
        .validate()
        .is_err());
    }
}
