//! Synthetic memory-reference workloads for the coherence studies.
//!
//! The paper's evaluation model (section 4.2, after Dubois–Briggs) views
//! each processor's reference stream as "the merging of a stream of
//! references to private or read-only shared blocks … with a stream of
//! references to writeable shared blocks", governed by three parameters:
//!
//! * `q` — probability the next reference is to a shared block,
//! * `w` — probability a shared reference is a write,
//! * `h` — hit ratio of shared blocks (emergent in simulation; an input
//!   to the closed forms).
//!
//! [`SharingModel`] implements exactly that stream, with presets matching
//! the paper's three sharing cases and the Table 4-2 configuration
//! (16 shared blocks, uniform 1/16 access). [`scenarios`] adds concrete
//! sharing patterns (producer/consumer, lock contention, migratory
//! ownership) that stress specific protocol paths, and [`trace`] provides
//! a compact binary trace format so runs are replayable byte-for-byte.
//!
//! # Address layout
//!
//! Shared blocks live at [`SHARED_BASE`] and above; each CPU's private
//! blocks live in a disjoint region below it. The static software scheme
//! (section 2.2) distinguishes public from private data by exactly this
//! address threshold — the "tag appended at compile or link time".
//!
//! # Example
//!
//! ```
//! use twobit_workload::{SharingModel, SharingParams, Workload};
//! use twobit_types::CacheId;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut w = SharingModel::new(SharingParams::moderate(), 4, 42)?;
//! let r = w.next_ref(CacheId::new(0));
//! assert!(r.addr.block.number() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod params;
pub mod scenarios;
pub mod trace;
mod zipf;

pub use model::{SharingModel, Workload, SHARED_BASE};
pub use params::SharingParams;
pub use trace::{Trace, TraceEntry};
pub use zipf::Zipf;
