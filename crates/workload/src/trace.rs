//! A compact binary trace format, so experiment inputs are replayable
//! artifacts rather than re-derived streams.
//!
//! Layout: an 8-byte magic/version header, then one 12-byte record per
//! reference: `cpu: u16`, `flags: u16` (bit 0 = write), `block: u64`.
//! Encoding uses little-endian via the `bytes` crate.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use twobit_types::{BlockAddr, CacheId, ConfigError, MemRef, WordAddr};

const MAGIC: u64 = 0x5457_4f42_4954_0001; // "TWOBIT" + version 1

/// One traced reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Issuing CPU.
    pub cpu: CacheId,
    /// The reference.
    pub op: MemRef,
}

/// An in-memory trace, encodable to/from the binary format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends one reference.
    pub fn push(&mut self, cpu: CacheId, op: MemRef) {
        self.entries.push(TraceEntry { cpu, op });
    }

    /// The recorded entries.
    #[must_use]
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no references are recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries as `(cpu, op)` pairs (the executor-facing shape).
    pub fn iter(&self) -> impl Iterator<Item = (CacheId, MemRef)> + '_ {
        self.entries.iter().map(|e| (e.cpu, e.op))
    }

    /// Encodes to the binary format.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + 12 * self.entries.len());
        buf.put_u64_le(MAGIC);
        for e in &self.entries {
            buf.put_u16_le(e.cpu.index() as u16);
            buf.put_u16_le(u16::from(e.op.kind.is_write()));
            buf.put_u64_le(e.op.addr.block.number());
        }
        buf.freeze()
    }

    /// Decodes from the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for a bad magic number or truncated data.
    pub fn decode(mut data: Bytes) -> Result<Self, ConfigError> {
        if data.remaining() < 8 {
            return Err(ConfigError::new("trace shorter than its header"));
        }
        if data.get_u64_le() != MAGIC {
            return Err(ConfigError::new("not a twobit trace (bad magic)"));
        }
        if !data.remaining().is_multiple_of(12) {
            return Err(ConfigError::new("trace payload is not whole records"));
        }
        let mut entries = Vec::with_capacity(data.remaining() / 12);
        while data.has_remaining() {
            let cpu = CacheId::new(data.get_u16_le() as usize);
            let flags = data.get_u16_le();
            let block = data.get_u64_le();
            let addr = WordAddr {
                block: BlockAddr::new(block),
                offset: 0,
            };
            let op = if flags & 1 == 1 {
                MemRef::write(addr)
            } else {
                MemRef::read(addr)
            };
            entries.push(TraceEntry { cpu, op });
        }
        Ok(Trace { entries })
    }

    /// Records `n` references per CPU from `workload`, round-robin — the
    /// canonical way experiments materialize their inputs.
    #[must_use]
    pub fn record<W: crate::Workload + ?Sized>(
        workload: &mut W,
        cpus: usize,
        refs_per_cpu: usize,
    ) -> Self {
        let mut trace = Trace::new();
        for _ in 0..refs_per_cpu {
            for k in CacheId::all(cpus) {
                trace.push(k, workload.next_ref(k));
            }
        }
        trace
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Trace {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEntry;
    type IntoIter = std::slice::Iter<'a, TraceEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SharingModel, SharingParams};

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(CacheId::new(0), MemRef::read(WordAddr::new(5, 0)));
        t.push(CacheId::new(3), MemRef::write(WordAddr::new(1 << 40, 0)));
        t
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = sample();
        let decoded = Trace::decode(t.encode()).unwrap();
        assert_eq!(t, decoded);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Trace::decode(Bytes::from_static(b"short")).is_err());
        let mut bad = BytesMut::new();
        bad.put_u64_le(0xdead_beef);
        assert!(Trace::decode(bad.freeze()).is_err());
        let mut truncated = BytesMut::new();
        truncated.put_u64_le(super::MAGIC);
        truncated.put_u8(1);
        assert!(Trace::decode(truncated.freeze()).is_err());
    }

    #[test]
    fn record_interleaves_round_robin() {
        let mut w = SharingModel::new(SharingParams::moderate(), 3, 9).unwrap();
        let t = Trace::record(&mut w, 3, 5);
        assert_eq!(t.len(), 15);
        let cpus: Vec<usize> = t.entries().iter().map(|e| e.cpu.index()).collect();
        assert_eq!(&cpus[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn iter_yields_executor_pairs() {
        let t = sample();
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, CacheId::new(0));
    }

    #[test]
    fn collects_from_iterator() {
        let t: Trace = sample().entries().to_vec().into_iter().collect();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
