//! A small Zipf-distributed index sampler (inverse-CDF over a
//! precomputed table), for skewed shared-block popularity.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (i + 1)^s`. `s = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` items with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one item");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf skew must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler covers a single item.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // construction guarantees n > 0
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point: first index whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_skew_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "counts {counts:?} not uniform"
            );
        }
    }

    #[test]
    fn skew_favors_low_indices() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[3] && counts[3] > counts[7], "{counts:?}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
