//! The sharded parallel engine: cycle-barrier execution of the
//! directory simulation, partitioned by home memory module.
//!
//! # Partitioning
//!
//! Blocks are owned by their home module (the address map), so all
//! directory state for a block lives in exactly one controller. The
//! engine partitions *both* controllers and caches round-robin over `S`
//! shards (module `j` → shard `j mod S`, cache `k` → shard `k mod S`);
//! every agent, controller, pending-transaction slot, and per-cpu
//! counter is then owned by exactly one shard, and a shard's event
//! handlers touch only shard-local state. `S` is fixed by the
//! configuration alone (the module count), never by the worker count —
//! which is what makes the results identical for any `--jobs`.
//!
//! # Conservative windows
//!
//! Every cross-actor interaction rides the network, and the crossbar's
//! cheapest hop costs `W = min(net_command, net_data)` cycles, so an
//! event processed at cycle `t` can only influence other actors at
//! `t + W` or later. Shards therefore run classic conservative PDES
//! rounds: process every local event in the window `[T, T + W)`,
//! buffering *all* sends (even shard-local ones) as [`OutMsg`]s; flush
//! outboxes into per-shard mailboxes; barrier; drain the own mailbox —
//! sorted by the sender-side canonical key — scheduling each message on
//! the shard's own crossbar and enqueueing its arrival; reduce the
//! global minimum next event time through an atomic; barrier; advance
//! `T`. When the reduced minimum is `u64::MAX` every queue is empty and
//! the run is complete. `W == 0` (a zero-latency network) collapses to
//! one shard, which processes and drains per event — the legacy order
//! exactly.
//!
//! # Why this is *exactly* the single-threaded simulation
//!
//! The legacy engine pops events in canonical [`EventKey`] order and its
//! only order-sensitive shared resource is the crossbar's
//! per-destination port clock, which advances in `schedule()` *call*
//! order. Within a window, shards process disjoint state, so only the
//! schedule-call order at each destination matters; draining mailboxes
//! sorted by `(cause key, sub)` — the canonical key of the event that
//! sent the message, then the send's index within that event — restores
//! precisely the call order the legacy loop would have used. Arrival
//! times, event counts, per-cache statistics, latency histograms, and
//! version/transaction numbering (already interleaved per-cpu) are
//! therefore bit-for-bit identical for any shard or worker count. The
//! only divergence is the sampled gauges (`queue_depth`, `outstanding`):
//! each shard samples only the actors it owns, so with `S > 1` their
//! peaks/means are per-shard views (exact again at `S == 1`). Trace
//! events are buffered per shard keyed by `(cause, sub, minor)` and
//! merge-sorted at the end, so a traced sharded run emits the legacy
//! event stream in the legacy order.

use crate::calendar::ShardQueue;
use crate::directory_sim::{DirectorySim, PendingTxn};
use crate::engine::{Event, EventKey};
use crate::report::Report;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use twobit_core::{CacheAgent, Controller, CtrlEmit, SendCost};
use twobit_interconnect::{Crossbar, MessageSize, Network, NodeId};
use twobit_obs::{ActorId, Metrics, Profiler, SimEvent, Tracer, TxnClass};
use twobit_types::{
    AccessKind, CacheId, CacheToMemory, MemoryToCache, ModuleId, ProtocolError, SystemConfig,
    TxnId, Version,
};
use twobit_workload::Workload;

/// Total order on buffered trace records: the canonical key of the event
/// being processed when the record was made, the record's reserved slot
/// within that event, and a minor counter for multi-record slots.
type TraceKey = (EventKey, u32, u32);

/// A per-shard trace sink that buffers events with their global ordering
/// key instead of writing them, so per-shard streams can be merge-sorted
/// into the legacy single-threaded order after the run.
///
/// The `sub` counter doubles as the interleaving position for *sends*:
/// reserving a slot for each buffered [`OutMsg`] keeps the destination
/// shard's drain — and any trace records the drain-side network
/// scheduling emits under the reserved slot — in the exact position the
/// legacy loop would have produced them.
#[derive(Debug)]
struct BufTracer {
    on: bool,
    cause: EventKey,
    sub: u32,
    minor: u32,
    fixed: Option<u32>,
    buf: Vec<(TraceKey, SimEvent)>,
}

impl BufTracer {
    fn new(on: bool) -> Self {
        BufTracer {
            on,
            cause: EventKey {
                time: 0,
                class: 0,
                actor: 0,
            },
            sub: 0,
            minor: 0,
            fixed: None,
            buf: Vec::new(),
        }
    }

    /// Starts a new ordering scope for processing the event with `cause`.
    fn begin_event(&mut self, cause: EventKey) {
        self.cause = cause;
        self.sub = 0;
        self.minor = 0;
        self.fixed = None;
    }

    /// Claims the next interleaving slot (for a buffered send).
    fn reserve_sub(&mut self) -> u32 {
        let s = self.sub;
        self.sub += 1;
        s
    }

    /// Pins subsequent records to a reserved slot of a (possibly remote)
    /// cause — used while draining that send at its destination.
    fn begin_drain(&mut self, cause: EventKey, sub: u32) {
        self.cause = cause;
        self.fixed = Some(sub);
        self.minor = 0;
    }

    fn end_drain(&mut self) {
        self.fixed = None;
    }
}

impl Tracer for BufTracer {
    fn enabled(&self) -> bool {
        self.on
    }

    fn record(&mut self, event: SimEvent) {
        let key = match self.fixed {
            Some(sub) => {
                let k = (self.cause, sub, self.minor);
                self.minor += 1;
                k
            }
            None => (self.cause, self.reserve_sub(), 0),
        };
        self.buf.push((key, event));
    }

    fn flush(&mut self) {}
}

/// A send buffered during window processing, delivered to the
/// destination shard at the round barrier.
#[derive(Debug)]
struct OutMsg {
    /// Canonical key of the event whose handler produced this send.
    cause: EventKey,
    /// The send's reserved interleaving slot within that event.
    sub: u32,
    /// Network injection cycle (handler base time plus controller or
    /// memory latency, exactly as the legacy dispatch computes it).
    inject: u64,
    size: MessageSize,
    kind: MsgKind,
}

#[derive(Debug)]
enum MsgKind {
    ToModule {
        src: CacheId,
        module: ModuleId,
        cmd: CacheToMemory,
    },
    ToCache {
        module: ModuleId,
        cache: CacheId,
        cmd: MemoryToCache,
    },
}

/// One shard: the agents and controllers it owns, their per-cpu
/// bookkeeping, a local calendar queue, a local crossbar (tracking only
/// the ports of destinations this shard owns), and per-shard metrics /
/// trace / profiler sinks that merge after the run.
///
/// Global cache `k` lives at local index `k / n_shards` of shard
/// `k % n_shards`; modules likewise.
struct Shard<W> {
    id: usize,
    n_shards: usize,
    config: SystemConfig,
    workload: W,
    agents: Vec<CacheAgent>,
    controllers: Vec<Controller>,
    pending: Vec<Option<PendingTxn>>,
    version_counters: Vec<u64>,
    txn_counters: Vec<u64>,
    refs_done: Vec<u64>,
    refs_target: u64,
    budget: u64,
    queue: ShardQueue,
    network: Crossbar,
    metrics: Metrics,
    tracer: BufTracer,
    profiler: Profiler,
    outboxes: Vec<Vec<OutMsg>>,
    now: u64,
    events: u64,
}

impl<W: Workload> Shard<W> {
    fn local_cache(&self, k: CacheId) -> usize {
        debug_assert_eq!(k.index() % self.n_shards, self.id);
        k.index() / self.n_shards
    }

    fn local_module(&self, m: ModuleId) -> usize {
        debug_assert_eq!(m.index() % self.n_shards, self.id);
        m.index() / self.n_shards
    }

    /// Processes every local event strictly before `end`.
    fn process_window(&mut self, end: u64) -> Result<(), (EventKey, ProtocolError)> {
        loop {
            self.profiler.begin("engine.pop");
            let popped = self.queue.pop_in(end);
            self.profiler.end("engine.pop");
            let Some((time, event)) = popped else {
                return Ok(());
            };
            self.step(time, event)?;
        }
    }

    /// The single-shard (serial) loop: process and immediately deliver,
    /// event by event — the legacy engine's exact behavior, used when the
    /// network lookahead is zero.
    fn run_serial(&mut self) -> Result<(), (EventKey, ProtocolError)> {
        loop {
            self.profiler.begin("engine.pop");
            let popped = self.queue.pop_in(u64::MAX);
            self.profiler.end("engine.pop");
            let Some((time, event)) = popped else {
                return Ok(());
            };
            self.step(time, event)?;
            let msgs = std::mem::take(&mut self.outboxes[0]);
            self.apply(msgs);
        }
    }

    /// Mirrors one iteration of the legacy event loop.
    fn step(&mut self, time: u64, event: Event) -> Result<(), (EventKey, ProtocolError)> {
        debug_assert!(time >= self.now, "time went backwards");
        let key = event.key(time);
        self.now = time;
        self.events += 1;
        if self.now > self.budget {
            return Err((
                key,
                ProtocolError::UnexpectedCommand {
                    state: format!("cycle {}", self.now),
                    command: "liveness budget exhausted — the system is wedged".to_string(),
                },
            ));
        }
        self.tracer.begin_event(key);
        self.handle(event).map_err(|e| (key, e))
    }

    fn handle(&mut self, event: Event) -> Result<(), ProtocolError> {
        match event {
            Event::ProcessorIssue { cpu } => {
                let li = self.local_cache(cpu);
                if self.refs_done[li] >= self.refs_target {
                    return Ok(());
                }
                self.profiler.begin("event.issue");
                let op = self.workload.next_ref(cpu);
                let version = match op.kind {
                    AccessKind::Write => self.fresh_version(cpu),
                    AccessKind::Read => Version::initial(),
                };
                self.profiler.begin("agent.start");
                let outcome = self.agents[li].start(op, version);
                self.profiler.end("agent.start");
                let base = self.now;
                let txn = if outcome.completed.is_some() {
                    None
                } else {
                    let class = DirectorySim::classify_open(&outcome.sends, op.kind);
                    let id = self.open_txn(cpu, class, base);
                    let outstanding = self.pending.iter().filter(|p| p.is_some()).count() as u64;
                    self.metrics.outstanding.observe(base, outstanding);
                    Some(id)
                };
                if self.tracer.enabled() {
                    let mut ev = SimEvent::new(
                        base,
                        ActorId::Cache(cpu),
                        op.addr.block,
                        format!("issue {op}"),
                    );
                    if let Some(id) = txn {
                        ev = ev.txn(id);
                    }
                    self.tracer.record(ev);
                }
                self.buffer_to_memory(cpu, outcome.sends, base);
                if outcome.completed.is_some() {
                    self.refs_done[li] += 1;
                    self.schedule_next_issue(cpu, base);
                }
                self.profiler.end("event.issue");
            }
            Event::DeliverToCache { cache, msg } => {
                let li = self.local_cache(cache);
                self.profiler.begin("event.deliver_cache");
                let useless_before = self.agents[li].stats().useless_commands.get();
                let local_before = if self.tracer.enabled() {
                    Some(
                        self.agents[li]
                            .cache()
                            .state_of(msg.block())
                            .as_line_state(),
                    )
                } else {
                    None
                };
                self.profiler.begin("agent.on_network");
                let out = self.agents[li].on_network(msg)?;
                self.profiler.end("agent.on_network");
                let base = self.now
                    + if out.counted {
                        self.config.latency.snoop_service
                    } else {
                        0
                    };
                let useless =
                    out.counted && self.agents[li].stats().useless_commands.get() > useless_before;
                if out.counted {
                    self.metrics.record_command(cache, useless);
                }
                let finished = if out.completed.is_some() {
                    self.pending[li].take()
                } else {
                    None
                };
                if let Some(p) = finished {
                    self.metrics
                        .record_latency(p.class, base.saturating_sub(p.start));
                    let outstanding = self.pending.iter().filter(|p| p.is_some()).count() as u64;
                    self.metrics.outstanding.observe(base, outstanding);
                }
                if self.tracer.enabled() {
                    let local_after = self.agents[li]
                        .cache()
                        .state_of(msg.block())
                        .as_line_state();
                    let mut ev = SimEvent::new(
                        self.now,
                        ActorId::Cache(cache),
                        msg.block(),
                        msg.to_string(),
                    )
                    .class(msg.class())
                    .useless(useless);
                    if let Some(before) = local_before {
                        if before != local_after {
                            ev = ev.local(before, local_after);
                        }
                    }
                    if let Some(p) = finished {
                        ev = ev.txn(p.id);
                    }
                    self.tracer.record(ev);
                }
                self.buffer_to_memory(cache, out.sends, base);
                if out.completed.is_some() {
                    self.refs_done[li] += 1;
                    self.schedule_next_issue(cache, base);
                }
                self.profiler.end("event.deliver_cache");
            }
            Event::DeliverToModule { module, cmd } => {
                let lj = self.local_module(module);
                self.profiler.begin("event.deliver_module");
                let emits = self.controllers[lj].submit_observed(
                    cmd,
                    self.now,
                    &mut self.tracer,
                    &mut self.profiler,
                )?;
                self.metrics.queue_depth.observe(
                    self.now,
                    self.controllers.iter().map(|c| c.queued() as u64).sum(),
                );
                let base = self.now;
                self.buffer_emits(module, emits, base);
                self.profiler.end("event.deliver_module");
            }
        }
        Ok(())
    }

    /// Per-cpu version token; same interleaved formula as the legacy
    /// engine, so the value depends only on the cpu's own stream.
    fn fresh_version(&mut self, cpu: CacheId) -> Version {
        let n = self.config.caches as u64;
        let count = &mut self.version_counters[cpu.index() / self.n_shards];
        *count += 1;
        Version::new((*count - 1) * n + cpu.index() as u64 + 1)
    }

    fn open_txn(&mut self, cpu: CacheId, class: TxnClass, start: u64) -> TxnId {
        let n = self.config.caches as u64;
        let li = cpu.index() / self.n_shards;
        let count = &mut self.txn_counters[li];
        *count += 1;
        let id = TxnId::new((*count - 1) * n + cpu.index() as u64 + 1);
        self.pending[li] = Some(PendingTxn { class, start, id });
        id
    }

    fn schedule_next_issue(&mut self, cpu: CacheId, base: u64) {
        if self.refs_done[self.local_cache(cpu)] < self.refs_target {
            let delay = self.config.latency.cache_hit + self.config.think_time;
            self.queue.push(base + delay, Event::ProcessorIssue { cpu });
        }
    }

    /// Buffers cache→module sends (the sharded `dispatch_to_memory`).
    fn buffer_to_memory(&mut self, from: CacheId, sends: Vec<CacheToMemory>, base: u64) {
        self.profiler.begin("net.dispatch");
        for cmd in sends {
            let module = self.config.address_map.module_of(cmd.block());
            let size = match cmd {
                CacheToMemory::PutData { .. } => MessageSize::Data,
                _ => MessageSize::Command,
            };
            self.network.note_injection(size);
            let sub = self.tracer.reserve_sub();
            self.outboxes[module.index() % self.n_shards].push(OutMsg {
                cause: self.tracer.cause,
                sub,
                inject: base,
                size,
                kind: MsgKind::ToModule {
                    src: from,
                    module,
                    cmd,
                },
            });
        }
        self.profiler.end("net.dispatch");
    }

    /// Buffers module→cache sends (the sharded `dispatch_emits`).
    fn buffer_emits(&mut self, module: ModuleId, emits: Vec<CtrlEmit>, base: u64) {
        self.profiler.begin("net.dispatch");
        for emit in emits {
            match emit {
                CtrlEmit::Unicast { to, cmd, cost } => {
                    let (size, extra) = match cost {
                        SendCost::Command => (MessageSize::Command, 0),
                        SendCost::DataFromMemory => (MessageSize::Data, self.config.latency.memory),
                        SendCost::DataForwarded => (MessageSize::Data, 0),
                    };
                    self.network.note_injection(size);
                    let inject = base + self.config.latency.controller + extra;
                    let sub = self.tracer.reserve_sub();
                    self.outboxes[to.index() % self.n_shards].push(OutMsg {
                        cause: self.tracer.cause,
                        sub,
                        inject,
                        size,
                        kind: MsgKind::ToCache {
                            module,
                            cache: to,
                            cmd,
                        },
                    });
                }
                CtrlEmit::Broadcast { cmd, exclude, cost } => {
                    let size = match cost {
                        SendCost::Command => MessageSize::Command,
                        _ => MessageSize::Data,
                    };
                    self.network.note_injection(size);
                    let inject = base + self.config.latency.controller;
                    if self.tracer.enabled() {
                        self.tracer.record(SimEvent::new(
                            inject,
                            ActorId::Network,
                            cmd.block(),
                            format!(
                                "fanout {cmd} from {module} to {} caches",
                                self.config.caches - 1
                            ),
                        ));
                    }
                    for cache in CacheId::all(self.config.caches) {
                        if cache == exclude {
                            continue;
                        }
                        let sub = self.tracer.reserve_sub();
                        self.outboxes[cache.index() % self.n_shards].push(OutMsg {
                            cause: self.tracer.cause,
                            sub,
                            inject,
                            size,
                            kind: MsgKind::ToCache { module, cache, cmd },
                        });
                    }
                }
            }
        }
        self.profiler.end("net.dispatch");
    }

    /// Delivers a batch of incoming sends: sorts by the sender-side
    /// canonical order, reserves the destination port on the shard-local
    /// crossbar (reproducing the legacy schedule-call order, hence the
    /// legacy arrival times), and enqueues the arrivals.
    fn apply(&mut self, mut msgs: Vec<OutMsg>) {
        msgs.sort_unstable_by_key(|m| (m.cause, m.sub));
        for msg in msgs {
            self.tracer.begin_drain(msg.cause, msg.sub);
            match msg.kind {
                MsgKind::ToModule { src, module, cmd } => {
                    let arrival = self.network.schedule_profiled(
                        NodeId::Cache(src),
                        NodeId::Module(module),
                        msg.size,
                        msg.inject,
                        cmd.block(),
                        &mut self.tracer,
                        &mut self.profiler,
                    );
                    // The replacement "transaction" never stalls the
                    // processor; its latency is injection-to-delivery,
                    // recorded here where the arrival time is known.
                    if matches!(cmd, CacheToMemory::Eject { .. }) {
                        self.metrics
                            .record_latency(TxnClass::Replacement, arrival - msg.inject);
                    }
                    self.queue
                        .push(arrival, Event::DeliverToModule { module, cmd });
                }
                MsgKind::ToCache { module, cache, cmd } => {
                    let arrival = self.network.schedule_profiled(
                        NodeId::Module(module),
                        NodeId::Cache(cache),
                        msg.size,
                        msg.inject,
                        cmd.block(),
                        &mut self.tracer,
                        &mut self.profiler,
                    );
                    self.queue
                        .push(arrival, Event::DeliverToCache { cache, msg: cmd });
                }
            }
        }
        self.tracer.end_drain();
    }
}

/// Shared coordination state for one sharded run.
struct Coordinator {
    mailboxes: Vec<Mutex<Vec<OutMsg>>>,
    mail_flags: Vec<AtomicBool>,
    barrier_a: Barrier,
    barrier_b: Barrier,
    /// Double-buffered min-reduction cells for the next window start;
    /// round `r` reduces into cell `r % 2` while resetting the other.
    min_cells: [AtomicU64; 2],
    abort: AtomicBool,
    failure: Mutex<Option<(EventKey, ProtocolError)>>,
}

impl Coordinator {
    fn new(n_shards: usize, n_workers: usize) -> Self {
        Coordinator {
            mailboxes: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
            mail_flags: (0..n_shards).map(|_| AtomicBool::new(false)).collect(),
            barrier_a: Barrier::new(n_workers),
            barrier_b: Barrier::new(n_workers),
            min_cells: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Records a failure; the canonically-earliest failure wins, which is
    /// exactly the error the legacy loop (stopping at its first error)
    /// would have returned.
    fn report_failure(&self, key: EventKey, err: ProtocolError) {
        let mut slot = self.failure.lock().expect("failure lock");
        if slot.as_ref().is_none_or(|(k, _)| key < *k) {
            *slot = Some((key, err));
        }
        self.abort.store(true, Ordering::Release);
    }

    /// One worker's round loop over the shards it owns.
    fn worker_loop<W: Workload>(&self, my: &mut [Shard<W>], mut t: u64, window: u64) {
        let mut round: usize = 0;
        while t != u64::MAX {
            let end = t.saturating_add(window);
            for shard in my.iter_mut() {
                if let Err((key, err)) = shard.process_window(end) {
                    self.report_failure(key, err);
                }
                for (dst, out) in shard.outboxes.iter_mut().enumerate() {
                    if out.is_empty() {
                        continue;
                    }
                    self.mailboxes[dst]
                        .lock()
                        .expect("mailbox lock")
                        .append(out);
                    self.mail_flags[dst].store(true, Ordering::Release);
                }
            }
            self.barrier_a.wait();
            // All workers observe the same abort verdict at the same
            // round boundary, so none is left waiting at a barrier.
            if self.abort.load(Ordering::Acquire) {
                return;
            }
            let mut local_min = u64::MAX;
            for shard in my.iter_mut() {
                if self.mail_flags[shard.id].swap(false, Ordering::AcqRel) {
                    let msgs =
                        std::mem::take(&mut *self.mailboxes[shard.id].lock().expect("mailbox"));
                    shard.apply(msgs);
                }
                local_min = local_min.min(shard.queue.min_time().unwrap_or(u64::MAX));
            }
            self.min_cells[round % 2].fetch_min(local_min, Ordering::AcqRel);
            self.min_cells[(round + 1) % 2].store(u64::MAX, Ordering::Release);
            self.barrier_b.wait();
            t = self.min_cells[round % 2].load(Ordering::Acquire);
            round += 1;
        }
    }
}

impl DirectorySim {
    /// Runs the simulation on the sharded engine with up to `workers`
    /// OS threads.
    ///
    /// Produces the same [`Report`] — same cycle count, event count,
    /// statistics, latency histograms, versions, transaction ids, and
    /// (if a tracer is installed) the same trace in the same order — as
    /// [`run`](DirectorySim::run), for **any** worker count; see the
    /// module docs of [`crate::sharded`] for the argument. The gauge
    /// summaries (`peak_queue_depth`, `peak_outstanding`) are per-shard
    /// views when the configuration has more than one memory module.
    ///
    /// # Errors
    ///
    /// Exactly as [`run`](DirectorySim::run): the canonically-first
    /// protocol/liveness error of the equivalent single-threaded run.
    pub fn run_jobs<W>(
        &mut self,
        workload: W,
        refs_per_cpu: u64,
        workers: usize,
    ) -> Result<Report, ProtocolError>
    where
        W: Workload + Clone + Send,
    {
        self.refs_target = refs_per_cpu;
        let budget = self.now.saturating_add(
            refs_per_cpu
                .saturating_mul(10_000)
                .saturating_add(1_000_000),
        );
        // The conservative lookahead: the cheapest possible network hop.
        let lookahead = self
            .config
            .latency
            .net_command
            .min(self.config.latency.net_data);
        let n_shards = if lookahead == 0 {
            1 // No lookahead: fall back to serial per-event delivery.
        } else {
            self.config.address_map.modules()
        };
        let n_workers = workers.clamp(1, n_shards);

        let mut shards = self.make_shards(workload, n_shards, refs_per_cpu, budget);
        let coord = Coordinator::new(n_shards, n_workers);

        if n_shards == 1 {
            if let Err((key, err)) = shards[0].run_serial() {
                coord.report_failure(key, err);
            }
        } else {
            let t0 = shards
                .iter()
                .map(|s| s.queue.min_time().unwrap_or(u64::MAX))
                .min()
                .unwrap_or(u64::MAX);
            let mut assignments: Vec<Vec<Shard<W>>> = (0..n_workers).map(|_| Vec::new()).collect();
            for (i, shard) in shards.into_iter().enumerate() {
                assignments[i % n_workers].push(shard);
            }
            let coord_ref = &coord;
            shards = std::thread::scope(|scope| {
                let handles: Vec<_> = assignments
                    .into_iter()
                    .map(|mut mine| {
                        scope.spawn(move || {
                            coord_ref.worker_loop(&mut mine, t0, lookahead);
                            mine
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("sharded worker panicked"))
                    .collect()
            });
        }

        self.absorb(shards);
        if let Some((_, err)) = coord.failure.into_inner().expect("failure lock") {
            return Err(err);
        }
        self.finish()
    }

    /// Partitions the simulation state into `n_shards` shards and seeds
    /// each cpu's first issue.
    fn make_shards<W>(
        &mut self,
        workload: W,
        n_shards: usize,
        refs_per_cpu: u64,
        budget: u64,
    ) -> Vec<Shard<W>>
    where
        W: Workload + Clone,
    {
        let agents = std::mem::take(&mut self.agents);
        let controllers = std::mem::take(&mut self.controllers);
        let pending = std::mem::take(&mut self.pending);
        let version_counters = std::mem::take(&mut self.version_counters);
        let txn_counters = std::mem::take(&mut self.txn_counters);
        let refs_done = std::mem::take(&mut self.refs_done);

        let mut shards: Vec<Shard<W>> = (0..n_shards)
            .map(|id| Shard {
                id,
                n_shards,
                config: self.config,
                workload: workload.clone(),
                agents: Vec::new(),
                controllers: Vec::new(),
                pending: Vec::new(),
                version_counters: Vec::new(),
                txn_counters: Vec::new(),
                refs_done: Vec::new(),
                refs_target: refs_per_cpu,
                budget,
                queue: ShardQueue::new(self.now),
                network: Crossbar::new(
                    self.config.latency.net_command,
                    self.config.latency.net_data,
                    1,
                ),
                metrics: Metrics::new(self.config.caches, self.metrics_cadence),
                tracer: BufTracer::new(self.tracer.enabled()),
                profiler: {
                    let mut p = Profiler::disabled();
                    p.set_enabled(self.profiler.is_enabled());
                    p
                },
                outboxes: (0..n_shards).map(|_| Vec::new()).collect(),
                now: self.now,
                events: 0,
            })
            .collect();

        for (k, agent) in agents.into_iter().enumerate() {
            let shard = &mut shards[k % n_shards];
            shard.agents.push(agent);
            shard.pending.push(pending[k]);
            shard.version_counters.push(version_counters[k]);
            shard.txn_counters.push(txn_counters[k]);
            shard.refs_done.push(refs_done[k]);
        }
        for (j, controller) in controllers.into_iter().enumerate() {
            shards[j % n_shards].controllers.push(controller);
        }
        for cpu in CacheId::all(self.config.caches) {
            shards[cpu.index() % n_shards]
                .queue
                .push(self.now, Event::ProcessorIssue { cpu });
        }
        shards
    }

    /// Merges shard state back into the simulation (inverse of
    /// [`make_shards`](DirectorySim::make_shards)); called on success and
    /// failure alike so the simulation stays inspectable.
    fn absorb<W>(&mut self, mut shards: Vec<Shard<W>>) {
        shards.sort_unstable_by_key(|s| s.id);
        let n_shards = shards.len();
        let n_caches = self.config.caches;
        let n_modules = self.config.address_map.modules();

        let mut agents: Vec<Option<CacheAgent>> = (0..n_caches).map(|_| None).collect();
        let mut controllers: Vec<Option<Controller>> = (0..n_modules).map(|_| None).collect();
        self.pending = vec![None; n_caches];
        self.version_counters = vec![0; n_caches];
        self.txn_counters = vec![0; n_caches];
        self.refs_done = vec![0; n_caches];

        let mut trace: Vec<(TraceKey, SimEvent)> = Vec::new();
        for shard in &mut shards {
            for (i, agent) in shard.agents.drain(..).enumerate() {
                let k = shard.id + n_shards * i;
                agents[k] = Some(agent);
                self.pending[k] = shard.pending[i];
                self.version_counters[k] = shard.version_counters[i];
                self.txn_counters[k] = shard.txn_counters[i];
                self.refs_done[k] = shard.refs_done[i];
            }
            for (i, controller) in shard.controllers.drain(..).enumerate() {
                controllers[shard.id + n_shards * i] = Some(controller);
            }
            self.now = self.now.max(shard.now);
            self.events += shard.events;
            self.metrics.merge(&shard.metrics);
            self.network.merge_stats_from(&shard.network);
            self.extra_perf.merge(&shard.profiler.report());
            trace.append(&mut shard.tracer.buf);
        }
        self.agents = agents
            .into_iter()
            .map(|a| a.expect("every cache owned by exactly one shard"))
            .collect();
        self.controllers = controllers
            .into_iter()
            .map(|c| c.expect("every module owned by exactly one shard"))
            .collect();
        if self.tracer.enabled() {
            trace.sort_unstable_by_key(|(k, _)| *k);
            for (_, event) in trace {
                self.tracer.record(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::io::Write;
    use std::rc::Rc;
    use twobit_obs::JsonlTracer;
    use twobit_types::{ProtocolKind, SystemStats};
    use twobit_workload::{SharingModel, SharingParams};

    /// A `Write` sink whose bytes stay reachable after the tracer is
    /// boxed away behind `dyn Tracer`.
    #[derive(Debug, Clone, Default)]
    struct SharedBuf(Rc<RefCell<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn config(n: usize, protocol: ProtocolKind) -> SystemConfig {
        SystemConfig::with_defaults(n).with_protocol(protocol)
    }

    fn workload(n: usize, seed: u64) -> SharingModel {
        SharingModel::new(SharingParams::high(), n, seed).unwrap()
    }

    fn stats_fingerprint(s: &SystemStats) -> String {
        format!("{s:?}")
    }

    #[test]
    fn sharded_matches_legacy_event_for_event() {
        for protocol in [
            ProtocolKind::TwoBit,
            ProtocolKind::FullMap,
            ProtocolKind::StaticSoftware,
        ] {
            let mut legacy = DirectorySim::build(config(4, protocol)).unwrap();
            let legacy_report = legacy.run(workload(4, 7), 300).unwrap();

            let mut sharded = DirectorySim::build(config(4, protocol)).unwrap();
            let sharded_report = sharded.run_jobs(workload(4, 7), 300, 2).unwrap();

            assert_eq!(sharded_report.cycles, legacy_report.cycles, "{protocol}");
            assert_eq!(sharded_report.events, legacy_report.events, "{protocol}");
            assert_eq!(
                stats_fingerprint(&sharded_report.stats),
                stats_fingerprint(&legacy_report.stats),
                "{protocol}"
            );
            for class in TxnClass::ALL {
                assert_eq!(
                    sharded.metrics().latency(class),
                    legacy.metrics().latency(class),
                    "{protocol} {class}"
                );
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_anything() {
        let runs: Vec<Report> = [1, 2, 4, 8]
            .into_iter()
            .map(|jobs| {
                let mut sim = DirectorySim::build(config(8, ProtocolKind::TwoBit)).unwrap();
                sim.run_jobs(workload(8, 42), 200, jobs).unwrap()
            })
            .collect();
        for other in &runs[1..] {
            assert_eq!(other.cycles, runs[0].cycles);
            assert_eq!(other.events, runs[0].events);
            assert_eq!(
                stats_fingerprint(&other.stats),
                stats_fingerprint(&runs[0].stats)
            );
            assert_eq!(other.obs, runs[0].obs, "gauges included: S is config-fixed");
        }
    }

    #[test]
    fn traced_sharded_run_matches_legacy_trace() {
        let trace_of = |sharded_jobs: Option<usize>| {
            let buf = SharedBuf::default();
            let mut sim = DirectorySim::build(config(4, ProtocolKind::TwoBit)).unwrap();
            sim.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
            match sharded_jobs {
                Some(jobs) => sim.run_jobs(workload(4, 3), 60, jobs).unwrap(),
                None => sim.run(workload(4, 3), 60).unwrap(),
            };
            drop(sim.take_tracer());
            let bytes = buf.0.borrow().clone();
            bytes
        };
        let legacy = trace_of(None);
        assert!(!legacy.is_empty());
        assert_eq!(trace_of(Some(1)), legacy, "1 worker");
        assert_eq!(trace_of(Some(4)), legacy, "4 workers");
    }

    #[test]
    fn multi_worker_run_drains_and_completes() {
        let mut sim = DirectorySim::build(config(2, ProtocolKind::TwoBit)).unwrap();
        let report = sim.run_jobs(workload(2, 1), 50, 2).unwrap();
        assert_eq!(report.stats.total_references(), 100);
    }
}
