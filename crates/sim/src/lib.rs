//! The discrete-event multiprocessor simulator of Figure 3-1.
//!
//! The paper evaluates the two-bit scheme analytically and explicitly
//! defers simulation: "Short of simulation, there are few alternatives to
//! determine the effects of this traffic. This will be investigated in
//! future studies." This crate is that future study: it drives the very
//! same protocol machines as the functional executor in `twobit-core` —
//! the [`CacheAgent`](twobit_core::CacheAgent)s and
//! [`Controller`](twobit_core::Controller)s — but with latencies,
//! per-destination network contention, controller queueing under real
//! concurrency, and per-processor think time, so transactions genuinely
//! interleave and the section 3.2.5 races actually happen in flight.
//!
//! [`System`] is the facade: it runs directory protocols on the
//! event-driven engine and the section 2.5 bus protocols on
//! [`twobit_bus::BusSystem`], reporting through one [`Report`] type so
//! every scheme in the paper's spectrum is measured in the same units
//! (commands received per cache per memory reference, stolen cycles,
//! network traffic, elapsed cycles).
//!
//! # Example
//!
//! ```
//! use twobit_sim::System;
//! use twobit_types::{ProtocolKind, SystemConfig};
//! use twobit_workload::{SharingModel, SharingParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = SystemConfig::with_defaults(4).with_protocol(ProtocolKind::TwoBit);
//! let workload = SharingModel::new(SharingParams::moderate(), 4, 7)?;
//! let mut system = System::build(config)?;
//! let report = system.run(workload, 2_000)?;
//! assert_eq!(report.stats.total_references(), 8_000);
//! assert!(report.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus_sim;
mod calendar;
mod directory_sim;
mod engine;
mod report;
mod sharded;
mod system;

pub use bus_sim::BusSim;
pub use directory_sim::DirectorySim;
pub use engine::{Event, EventQueue};
pub use report::Report;
pub use system::{simulate, System};
