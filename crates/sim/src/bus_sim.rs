//! Adapter running the section 2.5 snooping protocols under the common
//! `System`/`Report` interface.

use crate::report::Report;
use twobit_bus::{BusProtocolKind, BusSystem};
use twobit_obs::{ActorId, Metrics, NullTracer, SimEvent, Tracer, TxnClass};
use twobit_types::{AccessKind, CacheId, ConfigError, ProtocolError, ProtocolKind, SystemConfig};
use twobit_workload::Workload;

/// A snooping-bus run: transaction-atomic execution (the bus serializes
/// coherence by nature) with bus-occupancy time accounting.
#[derive(Debug)]
pub struct BusSim {
    config: SystemConfig,
    system: BusSystem,
    tracer: Box<dyn Tracer>,
    metrics: Metrics,
}

impl BusSim {
    /// Builds the bus simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations or directory
    /// protocols.
    pub fn build(config: SystemConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let kind = match config.protocol {
            ProtocolKind::WriteOnce => BusProtocolKind::WriteOnce,
            ProtocolKind::Illinois => BusProtocolKind::Illinois,
            other => {
                return Err(ConfigError::new(format!(
                    "{other} is not a bus protocol; use DirectorySim"
                )))
            }
        };
        let system = BusSystem::new(kind, config.caches, config.cache)?;
        let metrics = Metrics::new(config.caches, 1);
        Ok(BusSim {
            config,
            system,
            tracer: Box::new(NullTracer),
            metrics,
        })
    }

    /// Installs a trace sink (default [`NullTracer`]). Bus references are
    /// atomic, so the trace is one event per reference, stamped with the
    /// bus-cycle clock.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Removes and returns the installed tracer (replacing it with
    /// [`NullTracer`]).
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        std::mem::replace(&mut self.tracer, Box::new(NullTracer))
    }

    /// Runs `refs_per_cpu` references per CPU, round-robin (the bus
    /// arbiter's fair ordering).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any coherence violation.
    pub fn run<W: Workload>(
        &mut self,
        mut workload: W,
        refs_per_cpu: u64,
    ) -> Result<Report, ProtocolError> {
        // One "event" per reference: the bus adapter is transaction-atomic,
        // so a reference is its unit of simulation work.
        let mut events: u64 = 0;
        for _ in 0..refs_per_cpu {
            for k in CacheId::all(self.config.caches) {
                events += 1;
                let op = workload.next_ref(k);
                let before = self.system.bus_cycles();
                let completion = self.system.do_ref(k, op)?;
                let after = self.system.bus_cycles();
                if !completion.was_hit {
                    // The bus serializes a whole transaction inside
                    // `do_ref`; the cycles it consumed are the reference's
                    // end-to-end latency. Write hits needing an upgrade
                    // ride the write-miss class: the atomic adapter cannot
                    // see the pre-transaction line state.
                    let class = match op.kind {
                        AccessKind::Read => TxnClass::ReadMiss,
                        AccessKind::Write => TxnClass::WriteMiss,
                    };
                    self.metrics.record_latency(class, after - before);
                }
                if self.tracer.enabled() {
                    self.tracer.record(SimEvent::new(
                        after,
                        ActorId::Cache(k),
                        op.addr.block,
                        format!(
                            "{op} ({})",
                            if completion.was_hit { "hit" } else { "bus txn" }
                        ),
                    ));
                }
            }
        }
        let stats = self.system.stats();
        // The per-command snoop stream is internal to `BusSystem`; seed
        // the registry's per-cache counters from its totals so the
        // summary (and reconciliation) stay exact.
        for (i, cache) in stats.caches.iter().enumerate() {
            self.metrics.seed_cache_totals(
                CacheId::new(i),
                cache.commands_received.get(),
                cache.useless_commands.get(),
            );
        }
        let cycles = self.system.bus_cycles();
        self.tracer.flush();
        Ok(Report {
            protocol: self.config.protocol,
            stats,
            cycles,
            events,
            obs: Some(self.metrics.summary()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::AddressMap;
    use twobit_workload::{SharingModel, SharingParams};

    fn bus_config(protocol: ProtocolKind) -> SystemConfig {
        let mut cfg = SystemConfig::with_defaults(4).with_protocol(protocol);
        cfg.address_map = AddressMap::interleaved(1);
        cfg
    }

    #[test]
    fn both_bus_protocols_run() {
        for protocol in [ProtocolKind::WriteOnce, ProtocolKind::Illinois] {
            let workload = SharingModel::new(SharingParams::moderate(), 4, 3).unwrap();
            let mut sim = BusSim::build(bus_config(protocol)).unwrap();
            let report = sim.run(workload, 500).unwrap();
            assert_eq!(report.stats.total_references(), 2000);
            assert!(report.cycles > 0, "bus occupancy accumulates");
            assert!(
                report.commands_per_reference() > 0.0,
                "every miss is snooped"
            );
        }
    }

    #[test]
    fn directory_protocols_rejected() {
        assert!(BusSim::build(bus_config(ProtocolKind::TwoBit)).is_err());
    }
}
