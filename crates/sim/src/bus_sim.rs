//! Adapter running the section 2.5 snooping protocols under the common
//! `System`/`Report` interface.

use crate::report::Report;
use twobit_bus::{BusProtocolKind, BusSystem};
use twobit_types::{CacheId, ConfigError, ProtocolError, ProtocolKind, SystemConfig};
use twobit_workload::Workload;

/// A snooping-bus run: transaction-atomic execution (the bus serializes
/// coherence by nature) with bus-occupancy time accounting.
#[derive(Debug)]
pub struct BusSim {
    config: SystemConfig,
    system: BusSystem,
}

impl BusSim {
    /// Builds the bus simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations or directory
    /// protocols.
    pub fn build(config: SystemConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let kind = match config.protocol {
            ProtocolKind::WriteOnce => BusProtocolKind::WriteOnce,
            ProtocolKind::Illinois => BusProtocolKind::Illinois,
            other => {
                return Err(ConfigError::new(format!(
                    "{other} is not a bus protocol; use DirectorySim"
                )))
            }
        };
        let system = BusSystem::new(kind, config.caches, config.cache)?;
        Ok(BusSim { config, system })
    }

    /// Runs `refs_per_cpu` references per CPU, round-robin (the bus
    /// arbiter's fair ordering).
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on any coherence violation.
    pub fn run<W: Workload>(
        &mut self,
        mut workload: W,
        refs_per_cpu: u64,
    ) -> Result<Report, ProtocolError> {
        for _ in 0..refs_per_cpu {
            for k in CacheId::all(self.config.caches) {
                let op = workload.next_ref(k);
                self.system.do_ref(k, op)?;
            }
        }
        let stats = self.system.stats();
        let cycles = self.system.bus_cycles();
        Ok(Report { protocol: self.config.protocol, stats, cycles })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::AddressMap;
    use twobit_workload::{SharingModel, SharingParams};

    fn bus_config(protocol: ProtocolKind) -> SystemConfig {
        let mut cfg = SystemConfig::with_defaults(4).with_protocol(protocol);
        cfg.address_map = AddressMap::interleaved(1);
        cfg
    }

    #[test]
    fn both_bus_protocols_run() {
        for protocol in [ProtocolKind::WriteOnce, ProtocolKind::Illinois] {
            let workload = SharingModel::new(SharingParams::moderate(), 4, 3).unwrap();
            let mut sim = BusSim::build(bus_config(protocol)).unwrap();
            let report = sim.run(workload, 500).unwrap();
            assert_eq!(report.stats.total_references(), 2000);
            assert!(report.cycles > 0, "bus occupancy accumulates");
            assert!(report.commands_per_reference() > 0.0, "every miss is snooped");
        }
    }

    #[test]
    fn directory_protocols_rejected() {
        assert!(BusSim::build(bus_config(ProtocolKind::TwoBit)).is_err());
    }
}
