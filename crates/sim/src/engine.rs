//! The event queue: a deterministic discrete-event scheduler.
//!
//! Events are ordered by a *canonical key* — `(time, class rank, actor
//! index)` — rather than by insertion order. Canonical keys are what make
//! the sharded engine (see [`crate::sharded`]) bit-for-bit deterministic
//! for any worker count: two engines that schedule the same set of events
//! process them in the same order no matter which thread (or which
//! insertion sequence) produced them. The key is unique per event in a
//! directory simulation because
//!
//! * at most one `ProcessorIssue` per cpu is pending at a time (a cpu
//!   reschedules itself only when a reference retires), and
//! * the crossbar's per-destination port occupancy of one cycle gives
//!   every `DeliverToCache`/`DeliverToModule` for one destination a
//!   strictly distinct arrival time.
//!
//! A monotone sequence number is kept as a defensive final tiebreak (and
//! asserted unused in debug builds).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use twobit_types::{CacheId, CacheToMemory, MemoryToCache, ModuleId};

/// A simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Processor `cpu` attempts to issue its next reference.
    ProcessorIssue {
        /// The issuing processor–cache pair.
        cpu: CacheId,
    },
    /// A network message arrives at a cache.
    DeliverToCache {
        /// Recipient.
        cache: CacheId,
        /// The command.
        msg: MemoryToCache,
    },
    /// A network message arrives at a memory-module controller.
    DeliverToModule {
        /// Recipient.
        module: ModuleId,
        /// The command.
        cmd: CacheToMemory,
    },
}

impl Event {
    /// The event-class rank of the canonical ordering. Deliveries rank
    /// before issues so that an issue rescheduled *at the current cycle*
    /// (a zero-latency hit/think configuration) still sorts after the
    /// event that caused it — processing order then equals key order,
    /// which the sharded engine's parity argument relies on.
    #[must_use]
    pub fn class_rank(&self) -> u8 {
        match self {
            Event::DeliverToModule { .. } => 0,
            Event::DeliverToCache { .. } => 1,
            Event::ProcessorIssue { .. } => 2,
        }
    }

    /// The dense index of the actor the event targets.
    #[must_use]
    pub fn actor_index(&self) -> u32 {
        let i = match self {
            Event::ProcessorIssue { cpu } => cpu.index(),
            Event::DeliverToCache { cache, .. } => cache.index(),
            Event::DeliverToModule { module, .. } => module.index(),
        };
        i as u32
    }

    /// The canonical scheduling key of this event at `time`.
    #[must_use]
    pub fn key(&self, time: u64) -> EventKey {
        EventKey {
            time,
            class: self.class_rank(),
            actor: self.actor_index(),
        }
    }
}

/// The canonical total order on scheduled events: time, then event-class
/// rank, then actor index. Unique per event (see the module docs), hence
/// independent of insertion order — the property the sharded engine's
/// determinism rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulated cycle.
    pub time: u64,
    /// Event-class rank ([`Event::class_rank`]).
    pub class: u8,
    /// Dense actor index ([`Event::actor_index`]).
    pub actor: u32,
}

#[derive(Debug)]
struct Scheduled {
    key: EventKey,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first. The
        // canonical key decides; seq is a defensive tiebreak that the
        // uniqueness argument says never fires.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic event queue ordered by canonical [`EventKey`]s.
/// Together with the network's per-destination FIFO this gives the
/// protocols the ordering guarantees they rely on, independently of the
/// order events were pushed.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            key: event.key(time),
            seq: self.seq,
            event,
        });
    }

    /// Pops the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        let popped = self.heap.pop()?;
        debug_assert!(
            self.heap.peek().is_none_or(|next| next.key != popped.key),
            "duplicate canonical key {:?} — the uniqueness argument is broken",
            popped.key
        );
        Some((popped.key.time, popped.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(n: usize) -> Event {
        Event::ProcessorIssue {
            cpu: CacheId::new(n),
        }
    }

    fn deliver_cache(n: usize) -> Event {
        Event::DeliverToCache {
            cache: CacheId::new(n),
            msg: MemoryToCache::BroadInv {
                a: twobit_types::BlockAddr::new(1),
                exclude: CacheId::new(0),
            },
        }
    }

    fn deliver_module(n: usize) -> Event {
        Event::DeliverToModule {
            module: ModuleId::new(n),
            cmd: CacheToMemory::Eject {
                k: CacheId::new(0),
                olda: twobit_types::BlockAddr::new(1),
                wb: twobit_types::WritebackKind::Clean,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, issue(0));
        q.push(1, issue(1));
        q.push(3, issue(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_pop_in_canonical_order() {
        // Insertion order is scrambled on purpose: the canonical
        // (class, actor) key, not the push sequence, decides — module
        // deliveries first, then cache deliveries, then issues, each by
        // ascending actor index.
        let mut q = EventQueue::new();
        q.push(7, issue(1));
        q.push(7, deliver_cache(2));
        q.push(7, issue(0));
        q.push(7, deliver_module(1));
        q.push(7, deliver_cache(0));
        q.push(7, deliver_module(0));
        let order: Vec<(u8, u32)> =
            std::iter::from_fn(|| q.pop().map(|(_, e)| (e.class_rank(), e.actor_index())))
                .collect();
        assert_eq!(order, vec![(0, 0), (0, 1), (1, 0), (1, 2), (2, 0), (2, 1)]);
    }

    #[test]
    fn canonical_key_orders_before_insertion_seq() {
        let mut q = EventQueue::new();
        q.push(7, issue(4));
        q.push(7, issue(0));
        let first = q.pop().unwrap().1;
        assert_eq!(first.actor_index(), 0, "actor index outranks push order");
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, issue(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
