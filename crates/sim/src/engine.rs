//! The event queue: a deterministic discrete-event scheduler.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use twobit_types::{CacheId, CacheToMemory, MemoryToCache, ModuleId};

/// A simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Processor `cpu` attempts to issue its next reference.
    ProcessorIssue {
        /// The issuing processor–cache pair.
        cpu: CacheId,
    },
    /// A network message arrives at a cache.
    DeliverToCache {
        /// Recipient.
        cache: CacheId,
        /// The command.
        msg: MemoryToCache,
    },
    /// A network message arrives at a memory-module controller.
    DeliverToModule {
        /// Recipient.
        module: ModuleId,
        /// The command.
        cmd: CacheToMemory,
    },
}

#[derive(Debug)]
struct Scheduled {
    time: u64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first;
        // ties break by insertion order (seq) for determinism and FIFO.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic time-ordered event queue. Events at equal times pop in
/// insertion order, which (together with the network's per-destination
/// FIFO) gives the protocols the ordering guarantees they rely on.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: u64, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            time,
            seq: self.seq,
            event,
        });
    }

    /// Pops the earliest event, with its time.
    pub fn pop(&mut self) -> Option<(u64, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(n: usize) -> Event {
        Event::ProcessorIssue {
            cpu: CacheId::new(n),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, issue(0));
        q.push(1, issue(1));
        q.push(3, issue(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(7, issue(i));
        }
        let cpus: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::ProcessorIssue { cpu } => cpu.index(),
                other => panic!("unexpected {other:?}"),
            })
        })
        .collect();
        assert_eq!(cpus, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, issue(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
