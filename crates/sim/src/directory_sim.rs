//! The event-driven simulation of a directory-based Figure 3-1 system.

use crate::engine::{Event, EventQueue};
use crate::report::Report;
use twobit_core::{
    invariants, AgentPolicy, CacheAgent, Controller, CtrlEmit, SendCost, DEFAULT_STATIC_SHARED_FROM,
};
use twobit_interconnect::{Crossbar, MessageSize, Network, NodeId};
use twobit_obs::{ActorId, Metrics, NullTracer, PerfReport, Profiler, SimEvent, Tracer, TxnClass};
use twobit_types::{
    AccessKind, CacheId, CacheToMemory, ConfigError, Counter, ModuleId, ProtocolError,
    ProtocolKind, SystemConfig, SystemStats, TxnId, Version,
};
use twobit_workload::Workload;

/// Default gauge sampling cadence, in cycles.
const DEFAULT_METRICS_CADENCE: u64 = 64;

/// An open (started, not yet retired) cache transaction, for latency
/// accounting and trace correlation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTxn {
    pub(crate) class: TxnClass,
    pub(crate) start: u64,
    pub(crate) id: TxnId,
}

/// A timed directory-protocol simulation.
///
/// Uses the identical protocol machines as
/// [`twobit_core::FunctionalSystem`] — agents and controllers — driven by
/// an event queue with the latencies of
/// [`SystemConfig::latency`](twobit_types::SystemConfig) and crossbar
/// port contention, so controller queueing (section 3.2.5), in-flight
/// invalidation races, and broadcast traffic all play out in time.
#[derive(Debug)]
pub struct DirectorySim {
    pub(crate) config: SystemConfig,
    pub(crate) agents: Vec<CacheAgent>,
    pub(crate) controllers: Vec<Controller>,
    pub(crate) network: Crossbar,
    queue: EventQueue,
    pub(crate) now: u64,
    pub(crate) version_counters: Vec<u64>,
    pub(crate) refs_done: Vec<u64>,
    pub(crate) refs_target: u64,
    pub(crate) tracer: Box<dyn Tracer>,
    pub(crate) metrics: Metrics,
    pub(crate) metrics_cadence: u64,
    pub(crate) pending: Vec<Option<PendingTxn>>,
    pub(crate) txn_counters: Vec<u64>,
    pub(crate) profiler: Profiler,
    /// Span report merged in from sharded workers (empty for the
    /// single-threaded path, whose spans land in `profiler` directly).
    pub(crate) extra_perf: PerfReport,
    pub(crate) events: u64,
}

/// Builds the agent policy for a directory protocol (mirrors the
/// functional executor's wiring).
fn policy_for(protocol: ProtocolKind) -> AgentPolicy {
    match protocol {
        ProtocolKind::FullMapLocal => AgentPolicy::WriteBack {
            use_exclusive: true,
        },
        ProtocolKind::ClassicalWriteThrough => AgentPolicy::WriteThrough,
        ProtocolKind::StaticSoftware => AgentPolicy::Static {
            shared_from: DEFAULT_STATIC_SHARED_FROM,
        },
        _ => AgentPolicy::WriteBack {
            use_exclusive: false,
        },
    }
}

fn protocol_for(config: &SystemConfig) -> Box<dyn twobit_core::DirectoryProtocol> {
    match config.protocol {
        ProtocolKind::TwoBit => Box::new(twobit_core::TwoBitDirectory::new()),
        ProtocolKind::TwoBitTlb { entries } => Box::new(twobit_core::TwoBitTlbDirectory::new(
            entries as usize,
            config.caches,
        )),
        ProtocolKind::FullMap => Box::new(twobit_core::FullMapDirectory::new(config.caches)),
        ProtocolKind::FullMapLocal => {
            Box::new(twobit_core::FullMapLocalDirectory::new(config.caches))
        }
        ProtocolKind::ClassicalWriteThrough => Box::new(twobit_core::ClassicalDirectory::new()),
        ProtocolKind::StaticSoftware => Box::new(twobit_core::NullDirectory::new()),
        ProtocolKind::WriteOnce | ProtocolKind::Illinois => {
            unreachable!("bus protocols take the BusSim path")
        }
    }
}

impl DirectorySim {
    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid configurations or bus
    /// protocols.
    pub fn build(config: SystemConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        if config.protocol.is_bus_based() {
            return Err(ConfigError::new(
                "bus protocols are handled by System via BusSim",
            ));
        }
        let agents = CacheId::all(config.caches)
            .map(|id| {
                let mut agent = CacheAgent::new(
                    id,
                    config.cache,
                    policy_for(config.protocol),
                    config.duplicate_directory,
                );
                agent.set_bias_entries(config.bias_entries);
                agent
            })
            .collect();
        let controllers = ModuleId::all(config.address_map.modules())
            .map(|m| Controller::new(m, protocol_for(&config), config.caches, config.concurrency))
            .collect();
        let network = Crossbar::new(
            config.latency.net_command,
            config.latency.net_data,
            1, // each input port accepts one message per cycle
        );
        Ok(DirectorySim {
            config,
            agents,
            controllers,
            network,
            queue: EventQueue::new(),
            now: 0,
            version_counters: vec![0; config.caches],
            refs_done: vec![0; config.caches],
            refs_target: 0,
            tracer: Box::new(NullTracer),
            metrics: Metrics::new(config.caches, DEFAULT_METRICS_CADENCE),
            metrics_cadence: DEFAULT_METRICS_CADENCE,
            pending: vec![None; config.caches],
            txn_counters: vec![0; config.caches],
            profiler: Profiler::disabled(),
            extra_perf: PerfReport::default(),
            events: 0,
        })
    }

    /// Installs a trace sink. The default is [`NullTracer`]; call-sites
    /// guard on `enabled()`, so the default run never even formats event
    /// strings.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = tracer;
    }

    /// Removes and returns the installed tracer (replacing it with
    /// [`NullTracer`]), so ring buffers can be dumped and JSONL writers
    /// recovered after a run.
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        std::mem::replace(&mut self.tracer, Box::new(NullTracer))
    }

    /// The metrics registry (latency histograms, gauges, per-cache
    /// command counters).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets the registry with a new gauge sampling cadence. Only
    /// meaningful before [`run`](DirectorySim::run).
    pub fn set_metrics_cadence(&mut self, cadence: u64) {
        self.metrics_cadence = cadence;
        self.metrics = Metrics::new(self.config.caches, cadence);
    }

    /// Turns hot-path span timing on or off. Spans cost nothing unless
    /// the `perf-spans` cargo feature is enabled *and* this is set.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler.set_enabled(on);
    }

    /// The accumulated span report: event-class handlers
    /// (`event.issue` / `event.deliver_cache` / `event.deliver_module`),
    /// the event-queue pop (`engine.pop`), network scheduling
    /// (`net.dispatch` / `net.schedule`), and the controller's per-block
    /// queue ops (`ctrl.*`) — one unified hierarchy, so self-times sum to
    /// the instrumented wall time.
    #[must_use]
    pub fn perf_report(&self) -> PerfReport {
        let mut report = self.profiler.report();
        report.merge(&self.extra_perf);
        report
    }

    /// Simulation events processed so far (one per event-queue pop).
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Transactions currently open (started, unretired).
    fn outstanding(&self) -> u64 {
        self.pending.iter().filter(|p| p.is_some()).count() as u64
    }

    /// Opens a latency-tracked transaction for `cpu`. Ids are derived
    /// from a per-cpu counter (interleaved by cpu index) so the value a
    /// transaction gets is independent of the global event interleaving —
    /// the sharded engine then assigns identical ids for any job count.
    fn open_txn(&mut self, cpu: CacheId, class: TxnClass, start: u64) -> TxnId {
        let n = self.txn_counters.len() as u64;
        let count = &mut self.txn_counters[cpu.index()];
        *count += 1;
        let id = TxnId::new((*count - 1) * n + cpu.index() as u64 + 1);
        self.pending[cpu.index()] = Some(PendingTxn { class, start, id });
        id
    }

    /// Classifies the transaction a stalled issue opened, from the
    /// commands it emitted. `MGRANTED(no)` retries convert a pending
    /// modify into a write miss on the wire, but the transaction keeps
    /// its original class: latency is attributed to what the processor
    /// *asked for*.
    pub(crate) fn classify_open(sends: &[CacheToMemory], kind: AccessKind) -> TxnClass {
        sends
            .iter()
            .find_map(|cmd| match cmd {
                CacheToMemory::MRequest { .. } => Some(TxnClass::WriteHitUnmod),
                CacheToMemory::Request {
                    rw: AccessKind::Read,
                    ..
                }
                | CacheToMemory::DirectRead { .. } => Some(TxnClass::ReadMiss),
                CacheToMemory::Request {
                    rw: AccessKind::Write,
                    ..
                }
                | CacheToMemory::WriteThrough { .. } => Some(TxnClass::WriteMiss),
                _ => None,
            })
            .unwrap_or(match kind {
                AccessKind::Read => TxnClass::ReadMiss,
                AccessKind::Write => TxnClass::WriteMiss,
            })
    }

    /// A globally unique version token for a store by `cpu`. Like
    /// transaction ids, versions interleave a per-cpu counter with the
    /// cpu index so the token depends only on the cpu's own reference
    /// stream, never on cross-cpu event ordering.
    fn fresh_version(&mut self, cpu: CacheId) -> Version {
        let n = self.version_counters.len() as u64;
        let count = &mut self.version_counters[cpu.index()];
        *count += 1;
        Version::new((*count - 1) * n + cpu.index() as u64 + 1)
    }

    fn dispatch_to_memory(&mut self, from: CacheId, sends: Vec<CacheToMemory>, base: u64) {
        self.profiler.begin("net.dispatch");
        for cmd in sends {
            let module = self.config.address_map.module_of(cmd.block());
            let size = match cmd {
                CacheToMemory::PutData { .. } => MessageSize::Data,
                _ => MessageSize::Command,
            };
            self.network.note_injection(size);
            let arrival = self.network.schedule_profiled(
                NodeId::Cache(from),
                NodeId::Module(module),
                size,
                base,
                cmd.block(),
                self.tracer.as_mut(),
                &mut self.profiler,
            );
            // The replacement "transaction" (EJECT, optionally followed by
            // the write-back put) never stalls the processor, so its
            // latency is the eject notice's injection-to-delivery time.
            if matches!(cmd, CacheToMemory::Eject { .. }) {
                self.metrics
                    .record_latency(TxnClass::Replacement, arrival - base);
            }
            self.queue
                .push(arrival, Event::DeliverToModule { module, cmd });
        }
        self.profiler.end("net.dispatch");
    }

    fn dispatch_emits(&mut self, module: ModuleId, emits: Vec<CtrlEmit>, base: u64) {
        self.profiler.begin("net.dispatch");
        for emit in emits {
            match emit {
                CtrlEmit::Unicast { to, cmd, cost } => {
                    let (size, extra) = match cost {
                        SendCost::Command => (MessageSize::Command, 0),
                        SendCost::DataFromMemory => (MessageSize::Data, self.config.latency.memory),
                        SendCost::DataForwarded => (MessageSize::Data, 0),
                    };
                    self.network.note_injection(size);
                    let inject = base + self.config.latency.controller + extra;
                    let arrival = self.network.schedule_profiled(
                        NodeId::Module(module),
                        NodeId::Cache(to),
                        size,
                        inject,
                        cmd.block(),
                        self.tracer.as_mut(),
                        &mut self.profiler,
                    );
                    self.queue.push(
                        arrival,
                        Event::DeliverToCache {
                            cache: to,
                            msg: cmd,
                        },
                    );
                }
                CtrlEmit::Broadcast { cmd, exclude, cost } => {
                    let size = match cost {
                        SendCost::Command => MessageSize::Command,
                        _ => MessageSize::Data,
                    };
                    self.network.note_injection(size);
                    let inject = base + self.config.latency.controller;
                    if self.tracer.enabled() {
                        self.tracer.record(SimEvent::new(
                            inject,
                            ActorId::Network,
                            cmd.block(),
                            format!(
                                "fanout {cmd} from {module} to {} caches",
                                self.config.caches - 1
                            ),
                        ));
                    }
                    for cache in CacheId::all(self.config.caches) {
                        if cache == exclude {
                            continue;
                        }
                        let arrival = self.network.schedule_profiled(
                            NodeId::Module(module),
                            NodeId::Cache(cache),
                            size,
                            inject,
                            cmd.block(),
                            self.tracer.as_mut(),
                            &mut self.profiler,
                        );
                        self.queue
                            .push(arrival, Event::DeliverToCache { cache, msg: cmd });
                    }
                }
            }
        }
        self.profiler.end("net.dispatch");
    }

    fn schedule_next_issue(&mut self, cpu: CacheId, base: u64) {
        if self.refs_done[cpu.index()] < self.refs_target {
            let delay = self.config.latency.cache_hit + self.config.think_time;
            self.queue.push(base + delay, Event::ProcessorIssue { cpu });
        }
    }

    /// Runs `refs_per_cpu` references per processor from `workload` to
    /// completion and drains all in-flight activity.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on coherence/protocol violations, on a
    /// wedged system (liveness failure), or if invariants fail at the
    /// quiescent end.
    pub fn run<W: Workload>(
        &mut self,
        mut workload: W,
        refs_per_cpu: u64,
    ) -> Result<Report, ProtocolError> {
        self.refs_target = refs_per_cpu;
        for cpu in CacheId::all(self.config.caches) {
            self.queue.push(self.now, Event::ProcessorIssue { cpu });
        }
        // Liveness guard: with blocking caches, a reference takes a
        // bounded number of cycles; budget generously.
        let budget = self.now.saturating_add(
            refs_per_cpu
                .saturating_mul(10_000)
                .saturating_add(1_000_000),
        );

        loop {
            self.profiler.begin("engine.pop");
            let popped = self.queue.pop();
            self.profiler.end("engine.pop");
            let Some((time, event)) = popped else { break };
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.events += 1;
            if self.now > budget {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("cycle {}", self.now),
                    command: "liveness budget exhausted — the system is wedged".to_string(),
                });
            }
            match event {
                Event::ProcessorIssue { cpu } => {
                    if self.refs_done[cpu.index()] >= self.refs_target {
                        continue;
                    }
                    self.profiler.begin("event.issue");
                    let op = workload.next_ref(cpu);
                    let version = match op.kind {
                        AccessKind::Write => self.fresh_version(cpu),
                        AccessKind::Read => Version::initial(),
                    };
                    self.profiler.begin("agent.start");
                    let outcome = self.agents[cpu.index()].start(op, version);
                    self.profiler.end("agent.start");
                    let base = self.now;
                    let txn = if outcome.completed.is_some() {
                        None
                    } else {
                        let class = Self::classify_open(&outcome.sends, op.kind);
                        let id = self.open_txn(cpu, class, base);
                        self.metrics.outstanding.observe(base, self.outstanding());
                        Some(id)
                    };
                    if self.tracer.enabled() {
                        let mut ev = SimEvent::new(
                            base,
                            ActorId::Cache(cpu),
                            op.addr.block,
                            format!("issue {op}"),
                        );
                        if let Some(id) = txn {
                            ev = ev.txn(id);
                        }
                        self.tracer.record(ev);
                    }
                    self.dispatch_to_memory(cpu, outcome.sends, base);
                    if outcome.completed.is_some() {
                        self.refs_done[cpu.index()] += 1;
                        self.schedule_next_issue(cpu, base);
                    }
                    // Otherwise the cpu is stalled; the retiring grant
                    // reschedules it.
                    self.profiler.end("event.issue");
                }
                Event::DeliverToCache { cache, msg } => {
                    self.profiler.begin("event.deliver_cache");
                    let useless_before = self.agents[cache.index()].stats().useless_commands.get();
                    let local_before = if self.tracer.enabled() {
                        Some(
                            self.agents[cache.index()]
                                .cache()
                                .state_of(msg.block())
                                .as_line_state(),
                        )
                    } else {
                        None
                    };
                    self.profiler.begin("agent.on_network");
                    let out = self.agents[cache.index()].on_network(msg)?;
                    self.profiler.end("agent.on_network");
                    let base = self.now
                        + if out.counted {
                            self.config.latency.snoop_service
                        } else {
                            0
                        };
                    // `counted` is exactly "commands_received was bumped";
                    // comparing the useless counter across the call
                    // reproduces the agent's own matched/unmatched verdict
                    // without re-deriving it.
                    let useless = out.counted
                        && self.agents[cache.index()].stats().useless_commands.get()
                            > useless_before;
                    if out.counted {
                        self.metrics.record_command(cache, useless);
                    }
                    let finished = if out.completed.is_some() {
                        self.pending[cache.index()].take()
                    } else {
                        None
                    };
                    if let Some(p) = finished {
                        self.metrics
                            .record_latency(p.class, base.saturating_sub(p.start));
                        self.metrics.outstanding.observe(base, self.outstanding());
                    }
                    if self.tracer.enabled() {
                        let local_after = self.agents[cache.index()]
                            .cache()
                            .state_of(msg.block())
                            .as_line_state();
                        let mut ev = SimEvent::new(
                            self.now,
                            ActorId::Cache(cache),
                            msg.block(),
                            msg.to_string(),
                        )
                        .class(msg.class())
                        .useless(useless);
                        if let Some(before) = local_before {
                            if before != local_after {
                                ev = ev.local(before, local_after);
                            }
                        }
                        if let Some(p) = finished {
                            ev = ev.txn(p.id);
                        }
                        self.tracer.record(ev);
                    }
                    self.dispatch_to_memory(cache, out.sends, base);
                    if out.completed.is_some() {
                        self.refs_done[cache.index()] += 1;
                        self.schedule_next_issue(cache, base);
                    }
                    self.profiler.end("event.deliver_cache");
                }
                Event::DeliverToModule { module, cmd } => {
                    self.profiler.begin("event.deliver_module");
                    let emits = self.controllers[module.index()].submit_observed(
                        cmd,
                        self.now,
                        self.tracer.as_mut(),
                        &mut self.profiler,
                    )?;
                    self.metrics.queue_depth.observe(
                        self.now,
                        self.controllers.iter().map(|c| c.queued() as u64).sum(),
                    );
                    let base = self.now;
                    self.dispatch_emits(module, emits, base);
                    self.profiler.end("event.deliver_module");
                }
            }
        }

        self.finish()
    }

    /// Quiescence checks, invariants, trace flush, and the final report —
    /// shared by the single-threaded loop above and the sharded engine
    /// ([`DirectorySim::run_jobs`]) after it merges worker state back.
    pub(crate) fn finish(&mut self) -> Result<Report, ProtocolError> {
        // Quiescence checks: everyone retired, nothing stuck.
        for (i, agent) in self.agents.iter().enumerate() {
            if agent.is_stalled() {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("C{i} stalled at drain"),
                    command: "liveness violation".to_string(),
                });
            }
            if self.refs_done[i] != self.refs_target {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!(
                        "C{i} completed {} of {}",
                        self.refs_done[i], self.refs_target
                    ),
                    command: "liveness violation".to_string(),
                });
            }
        }
        for controller in &self.controllers {
            if controller.busy() {
                return Err(ProtocolError::UnexpectedCommand {
                    state: format!("{} busy at drain", controller.module()),
                    command: "liveness violation".to_string(),
                });
            }
        }
        invariants::check_system(&self.agents, &self.controllers, self.config.address_map)?;

        self.tracer.flush();
        Ok(Report {
            protocol: self.config.protocol,
            stats: self.collect_stats(),
            cycles: self.now,
            events: self.events,
            obs: Some(self.metrics.summary()),
        })
    }

    fn collect_stats(&self) -> SystemStats {
        let mut stats = SystemStats::new(self.agents.len(), self.controllers.len());
        for (slot, agent) in stats.caches.iter_mut().zip(&self.agents) {
            *slot = *agent.stats();
            slot.tag_probes = Counter::from(agent.cache().probes());
        }
        for (slot, controller) in stats.controllers.iter_mut().zip(&self.controllers) {
            *slot = controller.stats();
        }
        stats.network.merge(self.network.stats());
        stats.cycles = self.now;
        stats
    }

    /// The system configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{MemRef, WordAddr};
    use twobit_workload::{scenarios, SharingModel, SharingParams};

    fn config(n: usize, protocol: ProtocolKind) -> SystemConfig {
        SystemConfig::with_defaults(n).with_protocol(protocol)
    }

    /// A scripted workload for deterministic micro-tests.
    struct Script {
        per_cpu: Vec<Vec<MemRef>>,
        cursor: Vec<usize>,
    }

    impl Script {
        fn new(per_cpu: Vec<Vec<MemRef>>) -> Self {
            let cursor = vec![0; per_cpu.len()];
            Script { per_cpu, cursor }
        }
    }

    impl Workload for Script {
        fn next_ref(&mut self, k: CacheId) -> MemRef {
            let refs = &self.per_cpu[k.index()];
            let c = self.cursor[k.index()];
            self.cursor[k.index()] += 1;
            refs[c % refs.len()]
        }

        fn name(&self) -> &'static str {
            "script"
        }
    }

    fn rd(b: u64) -> MemRef {
        MemRef::read(WordAddr::new(b, 0))
    }

    fn wr(b: u64) -> MemRef {
        MemRef::write(WordAddr::new(b, 0))
    }

    #[test]
    fn single_cpu_completes_and_advances_time() {
        let mut sim = DirectorySim::build(config(1, ProtocolKind::TwoBit)).unwrap();
        let report = sim
            .run(Script::new(vec![vec![rd(1), wr(1), rd(2)]]), 9)
            .unwrap();
        assert_eq!(report.stats.total_references(), 9);
        assert!(report.cycles > 9, "misses cost real time");
    }

    #[test]
    fn contended_hot_block_stays_coherent_and_live() {
        // All four cpus hammer one block with writes: the section 3.2.5
        // queueing and BROADINV/MREQUEST races happen in flight.
        let script = Script::new(vec![
            vec![wr(7), rd(7)],
            vec![rd(7), wr(7)],
            vec![wr(7), wr(7)],
            vec![rd(7), rd(7)],
        ]);
        let mut sim = DirectorySim::build(config(4, ProtocolKind::TwoBit)).unwrap();
        let report = sim.run(script, 200).unwrap();
        assert_eq!(report.stats.total_references(), 800);
        let broadcasts: u64 = report
            .stats
            .controllers
            .iter()
            .map(|c| c.broadcasts_sent.get())
            .sum();
        assert!(broadcasts > 0, "write sharing must broadcast");
        let conflicts: u64 = report
            .stats
            .controllers
            .iter()
            .map(|c| c.conflicts_queued.get())
            .sum();
        assert!(
            conflicts > 0,
            "hot-block requests must queue at the controller"
        );
    }

    #[test]
    fn all_directory_protocols_run_the_sharing_model() {
        for protocol in [
            ProtocolKind::TwoBit,
            ProtocolKind::TwoBitTlb { entries: 8 },
            ProtocolKind::FullMap,
            ProtocolKind::FullMapLocal,
        ] {
            let workload = SharingModel::new(SharingParams::high(), 4, 13).unwrap();
            let mut sim = DirectorySim::build(config(4, protocol)).unwrap();
            let report = sim.run(workload, 500).unwrap();
            assert_eq!(report.stats.total_references(), 2000, "{protocol}");
        }
    }

    #[test]
    fn classical_and_static_run_timed() {
        let mut cfg = config(4, ProtocolKind::ClassicalWriteThrough);
        cfg.address_map = twobit_types::AddressMap::interleaved(1);
        let workload = SharingModel::new(SharingParams::moderate(), 4, 5).unwrap();
        let mut sim = DirectorySim::build(cfg).unwrap();
        let report = sim.run(workload, 300).unwrap();
        assert!(
            report.broadcasts_per_reference() > 0.0,
            "classical broadcasts stores"
        );

        let cfg = config(4, ProtocolKind::StaticSoftware);
        let workload = SharingModel::new(SharingParams::moderate(), 4, 5).unwrap();
        let mut sim = DirectorySim::build(cfg).unwrap();
        let report = sim.run(workload, 300).unwrap();
        assert_eq!(
            report.broadcasts_per_reference(),
            0.0,
            "static scheme never broadcasts"
        );
    }

    #[test]
    fn two_bit_receives_more_commands_than_full_map_timed() {
        let run = |protocol| {
            let workload = SharingModel::new(SharingParams::high().with_w(0.4), 8, 21).unwrap();
            let mut sim = DirectorySim::build(config(8, protocol)).unwrap();
            sim.run(workload, 800).unwrap()
        };
        let two_bit = run(ProtocolKind::TwoBit);
        let full_map = run(ProtocolKind::FullMap);
        assert!(
            two_bit.commands_per_reference() > full_map.commands_per_reference(),
            "two-bit {} vs full-map {}",
            two_bit.commands_per_reference(),
            full_map.commands_per_reference()
        );
    }

    #[test]
    fn scenario_workloads_run() {
        let scenarios: Vec<Box<dyn Workload>> = vec![
            Box::new(scenarios::IndependentProcesses::new(4, 64, 1).unwrap()),
            Box::new(scenarios::ProducerConsumer::new(4, 8, 2).unwrap()),
            Box::new(scenarios::LockContention::new(4, 2, 3).unwrap()),
            Box::new(scenarios::Migratory::new(4, 4, 16, 4).unwrap()),
        ];
        for workload in scenarios {
            let mut sim = DirectorySim::build(config(4, ProtocolKind::TwoBit)).unwrap();
            let report = sim.run(workload, 400).unwrap();
            assert_eq!(report.stats.total_references(), 1600);
        }
    }

    #[test]
    fn duplicate_directory_reduces_stolen_cycles() {
        let run = |dup| {
            let mut cfg = config(8, ProtocolKind::TwoBit);
            cfg.duplicate_directory = dup;
            let workload = SharingModel::new(SharingParams::high(), 8, 33).unwrap();
            let mut sim = DirectorySim::build(cfg).unwrap();
            sim.run(workload, 600).unwrap()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with.stolen_per_reference() < without.stolen_per_reference(),
            "dup-dir {} vs plain {}",
            with.stolen_per_reference(),
            without.stolen_per_reference()
        );
        // Same protocol: same commands, just cheaper to receive.
        assert!(with.commands_per_reference() > 0.0);
    }

    #[test]
    fn bus_protocols_rejected_here() {
        let mut cfg = config(2, ProtocolKind::Illinois);
        cfg.address_map = twobit_types::AddressMap::interleaved(1);
        assert!(DirectorySim::build(cfg).is_err());
    }
}
