//! The facade over both simulation backends.

use crate::bus_sim::BusSim;
use crate::directory_sim::DirectorySim;
use crate::report::Report;
use twobit_obs::{PerfReport, Tracer};
use twobit_types::{ConfigError, ProtocolError, SystemConfig};
use twobit_workload::Workload;

/// A complete simulated multiprocessor, directory- or bus-based depending
/// on [`SystemConfig::protocol`].
///
/// This is the type examples and benches use: build once, run a workload,
/// get a [`Report`] in the paper's units.
#[derive(Debug)]
pub struct System {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    Directory(Box<DirectorySim>),
    Bus(Box<BusSim>),
}

impl System {
    /// Builds the appropriate simulation for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn build(config: SystemConfig) -> Result<Self, ConfigError> {
        let inner = if config.protocol.is_bus_based() {
            Inner::Bus(Box::new(BusSim::build(config)?))
        } else {
            Inner::Directory(Box::new(DirectorySim::build(config)?))
        };
        Ok(System { inner })
    }

    /// Runs `refs_per_cpu` references per processor and returns the
    /// drained, invariant-checked report.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on coherence violations, liveness
    /// failures, or invariant breaks.
    pub fn run<W: Workload>(
        &mut self,
        workload: W,
        refs_per_cpu: u64,
    ) -> Result<Report, ProtocolError> {
        match &mut self.inner {
            Inner::Directory(sim) => sim.run(workload, refs_per_cpu),
            Inner::Bus(sim) => sim.run(workload, refs_per_cpu),
        }
    }

    /// Runs on the sharded parallel engine with up to `jobs` OS threads
    /// (clamped to the machine's available parallelism). The report is
    /// identical to [`System::run`]'s for any `jobs` — see
    /// [`DirectorySim::run_jobs`] — so callers can scale workers freely
    /// without perturbing results. The bus backend has no sharded engine
    /// (a single bus serializes everything); it ignores `jobs` and runs
    /// the legacy loop.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError`] on coherence violations, liveness
    /// failures, or invariant breaks, exactly as [`System::run`].
    pub fn run_jobs<W: Workload + Clone + Send>(
        &mut self,
        workload: W,
        refs_per_cpu: u64,
        jobs: usize,
    ) -> Result<Report, ProtocolError> {
        match &mut self.inner {
            Inner::Directory(sim) => {
                let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
                sim.run_jobs(workload, refs_per_cpu, jobs.clamp(1, hw))
            }
            Inner::Bus(sim) => sim.run(workload, refs_per_cpu),
        }
    }

    /// Installs a trace sink on the underlying simulator (default
    /// `NullTracer`, which costs nothing).
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        match &mut self.inner {
            Inner::Directory(sim) => sim.set_tracer(tracer),
            Inner::Bus(sim) => sim.set_tracer(tracer),
        }
    }

    /// Removes and returns the installed tracer, replacing it with a
    /// `NullTracer`. Call after [`System::run`] to inspect or flush a
    /// sink you installed.
    pub fn take_tracer(&mut self) -> Box<dyn Tracer> {
        match &mut self.inner {
            Inner::Directory(sim) => sim.take_tracer(),
            Inner::Bus(sim) => sim.take_tracer(),
        }
    }

    /// Sets the gauge sampling cadence (directory backend only; the bus
    /// backend's gauges are unused). Resets the metrics registry.
    pub fn set_metrics_cadence(&mut self, cadence: u64) {
        if let Inner::Directory(sim) = &mut self.inner {
            sim.set_metrics_cadence(cadence);
        }
    }

    /// Turns hot-path span profiling on or off (directory backend only;
    /// the bus adapter has no event loop to attribute). No effect unless
    /// the `perf-spans` cargo feature is enabled.
    pub fn set_profiling(&mut self, on: bool) {
        if let Inner::Directory(sim) = &mut self.inner {
            sim.set_profiling(on);
        }
    }

    /// The accumulated span report ("top handlers by self-time"). Empty
    /// for the bus backend, when profiling was never enabled, or when the
    /// `perf-spans` feature is off.
    #[must_use]
    pub fn perf_report(&self) -> PerfReport {
        match &self.inner {
            Inner::Directory(sim) => sim.perf_report(),
            Inner::Bus(_) => PerfReport::new(),
        }
    }
}

/// Convenience: build and run in one call.
///
/// # Errors
///
/// Returns the error message of either the configuration or the run.
pub fn simulate<W: Workload>(
    config: SystemConfig,
    workload: W,
    refs_per_cpu: u64,
) -> Result<Report, Box<dyn std::error::Error>> {
    let mut system = System::build(config)?;
    Ok(system.run(workload, refs_per_cpu)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{AddressMap, ProtocolKind};
    use twobit_workload::{SharingModel, SharingParams};

    #[test]
    fn facade_routes_by_protocol() {
        let mut directory = System::build(SystemConfig::with_defaults(2)).unwrap();
        let w = SharingModel::new(SharingParams::low(), 2, 1).unwrap();
        let r = directory.run(w, 100).unwrap();
        assert_eq!(r.protocol, ProtocolKind::TwoBit);

        let mut cfg = SystemConfig::with_defaults(2).with_protocol(ProtocolKind::Illinois);
        cfg.address_map = AddressMap::interleaved(1);
        let mut bus = System::build(cfg).unwrap();
        let w = SharingModel::new(SharingParams::low(), 2, 1).unwrap();
        let r = bus.run(w, 100).unwrap();
        assert_eq!(r.protocol, ProtocolKind::Illinois);
    }

    #[test]
    fn simulate_helper_works_end_to_end() {
        let w = SharingModel::new(SharingParams::moderate(), 4, 9).unwrap();
        let r = simulate(SystemConfig::with_defaults(4), w, 200).unwrap();
        assert_eq!(r.stats.total_references(), 800);
    }
}
