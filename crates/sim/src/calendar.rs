//! The per-shard scheduler: a bucketed calendar queue.
//!
//! A directory simulation's pending-event horizon is tiny — wire
//! latencies, memory service, and think time are all small integers — so
//! almost every push lands within a few cycles of the current time. A
//! comparison-based heap pays `O(log n)` pointer-chasing for what is
//! really array indexing. [`ShardQueue`] instead keeps a ring of
//! [`NEAR_HORIZON`] one-cycle buckets (slot = `time & 63`) with a `u64`
//! occupancy bitmask, so "next non-empty cycle" is one rotate plus
//! `trailing_zeros`, and falls back to a small binary heap only for the
//! rare event scheduled beyond the horizon (a liveness-budget sentinel,
//! say). Far events migrate into the ring as the base time advances.
//!
//! Within a bucket (one cycle), events are kept sorted by descending
//! canonical [`EventKey`] and popped from the back, so the queue pops in
//! exactly the canonical total order the deterministic engine requires —
//! including events pushed *at the current cycle* mid-processing (a
//! zero-think-time issue reschedule), which binary-insert into the
//! already-sorted bucket.

use crate::engine::{Event, EventKey};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Width of the near ring in cycles. One `u64` occupancy word.
const NEAR_HORIZON: u64 = 64;

#[derive(Debug)]
struct FarEntry {
    key: EventKey,
    seq: u64,
    event: Event,
}

impl PartialEq for FarEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.seq == other.seq
    }
}

impl Eq for FarEntry {}

impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        (other.key, other.seq).cmp(&(self.key, self.seq))
    }
}

impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A calendar queue ordered by canonical [`EventKey`]s (see the module
/// docs). Equivalent in pop order to [`crate::engine::EventQueue`], but
/// with O(1) near-horizon scheduling.
#[derive(Debug)]
pub(crate) struct ShardQueue {
    /// All events before `base` have been popped; the near ring covers
    /// `[base, base + NEAR_HORIZON)`.
    base: u64,
    /// `near[t & 63]` holds the events at cycle `t`, sorted by
    /// *descending* key (pop takes from the back).
    near: Vec<Vec<(EventKey, Event)>>,
    /// Bit `s` set iff `near[s]` is non-empty.
    occupied: u64,
    /// Events at or beyond `base + NEAR_HORIZON`.
    far: BinaryHeap<FarEntry>,
    seq: u64,
    len: usize,
}

impl ShardQueue {
    pub(crate) fn new(start: u64) -> Self {
        ShardQueue {
            base: start,
            near: (0..NEAR_HORIZON).map(|_| Vec::new()).collect(),
            occupied: 0,
            far: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `event` at `time`, which must not precede the last
    /// popped event's cycle.
    pub(crate) fn push(&mut self, time: u64, event: Event) {
        debug_assert!(
            time >= self.base,
            "push at {time} before base {}",
            self.base
        );
        let key = event.key(time);
        self.len += 1;
        if time < self.base + NEAR_HORIZON {
            let slot = (time & (NEAR_HORIZON - 1)) as usize;
            let bucket = &mut self.near[slot];
            // Descending order: first position whose key is not greater.
            let pos = bucket.partition_point(|(k, _)| *k > key);
            bucket.insert(pos, (key, event));
            self.occupied |= 1 << slot;
        } else {
            self.seq += 1;
            self.far.push(FarEntry {
                key,
                seq: self.seq,
                event,
            });
        }
    }

    /// The earliest pending cycle, if any.
    pub(crate) fn min_time(&self) -> Option<u64> {
        let near = self.next_near_time();
        let far = self.far.peek().map(|f| f.key.time);
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Pops the earliest event strictly before cycle `end`, advancing the
    /// base time to it. Events at or after `end` stay queued — this is
    /// the window boundary of the sharded engine's conservative rounds.
    pub(crate) fn pop_in(&mut self, end: u64) -> Option<(u64, Event)> {
        loop {
            self.migrate();
            if let Some(t) = self.next_near_time() {
                if t >= end {
                    return None;
                }
                self.base = t;
                let slot = (t & (NEAR_HORIZON - 1)) as usize;
                let bucket = &mut self.near[slot];
                let (key, event) = bucket.pop().expect("occupied bit says non-empty");
                if bucket.is_empty() {
                    self.occupied &= !(1 << slot);
                }
                self.len -= 1;
                return Some((key.time, event));
            }
            // Near ring exhausted: jump the base to the far frontier if it
            // is inside the window, else nothing is poppable.
            match self.far.peek() {
                Some(f) if f.key.time < end => self.base = f.key.time,
                _ => return None,
            }
        }
    }

    /// The earliest cycle with a non-empty near bucket. Each bucket holds
    /// exactly one cycle's events (the ring only ever covers a
    /// [`NEAR_HORIZON`]-cycle span), so slot offset from `base` *is* the
    /// time offset.
    fn next_near_time(&self) -> Option<u64> {
        if self.occupied == 0 {
            return None;
        }
        let rot = self
            .occupied
            .rotate_right((self.base & (NEAR_HORIZON - 1)) as u32);
        Some(self.base + u64::from(rot.trailing_zeros()))
    }

    /// Moves far events that now fall inside the near ring.
    fn migrate(&mut self) {
        while let Some(f) = self.far.peek() {
            if f.key.time >= self.base + NEAR_HORIZON {
                break;
            }
            let f = self.far.pop().expect("just peeked");
            let slot = (f.key.time & (NEAR_HORIZON - 1)) as usize;
            let bucket = &mut self.near[slot];
            let pos = bucket.partition_point(|(k, _)| *k > f.key);
            bucket.insert(pos, (f.key, f.event));
            self.occupied |= 1 << slot;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;
    use twobit_types::{BlockAddr, CacheId, CacheToMemory, ModuleId, WritebackKind};

    fn issue(n: usize) -> Event {
        Event::ProcessorIssue {
            cpu: CacheId::new(n),
        }
    }

    fn deliver_module(n: usize) -> Event {
        Event::DeliverToModule {
            module: ModuleId::new(n),
            cmd: CacheToMemory::Eject {
                k: CacheId::new(0),
                olda: BlockAddr::new(1),
                wb: WritebackKind::Clean,
            },
        }
    }

    #[test]
    fn pops_in_canonical_order_like_event_queue() {
        // Same scrambled schedule into both queues; pop orders must agree
        // exactly, including same-cycle class/actor ordering and times
        // far beyond the near horizon.
        let schedule: Vec<(u64, Event)> = vec![
            (5, issue(1)),
            (5, deliver_module(0)),
            (5, issue(0)),
            (1, issue(2)),
            (500, deliver_module(1)),
            (70, issue(3)),
            (5, deliver_module(2)),
            (1000, issue(4)),
        ];
        let mut reference = EventQueue::new();
        let mut calendar = ShardQueue::new(0);
        for (t, e) in schedule {
            reference.push(t, e.clone());
            calendar.push(t, e);
        }
        loop {
            let want = reference.pop();
            let got = calendar.pop_in(u64::MAX);
            assert_eq!(got, want);
            if want.is_none() {
                break;
            }
        }
        assert!(calendar.is_empty());
    }

    #[test]
    fn window_boundary_is_exclusive() {
        let mut q = ShardQueue::new(0);
        q.push(3, issue(0));
        q.push(7, issue(1));
        assert_eq!(q.min_time(), Some(3));
        assert!(q.pop_in(3).is_none(), "end is exclusive");
        assert_eq!(q.pop_in(4).map(|(t, _)| t), Some(3));
        assert!(q.pop_in(7).is_none());
        assert_eq!(q.pop_in(8).map(|(t, _)| t), Some(7));
        assert!(q.is_empty());
        assert_eq!(q.min_time(), None);
    }

    #[test]
    fn same_cycle_push_mid_pop_sorts_canonically() {
        // Pop the issue at t=9, then push a module delivery at t=9: the
        // delivery (lower class rank) must still come out next, as the
        // legacy heap would order it.
        let mut q = ShardQueue::new(0);
        q.push(9, issue(0));
        q.push(9, issue(1));
        assert_eq!(q.pop_in(u64::MAX).unwrap().1, issue(0));
        q.push(9, deliver_module(0));
        assert_eq!(q.pop_in(u64::MAX).unwrap().1, deliver_module(0));
        assert_eq!(q.pop_in(u64::MAX).unwrap().1, issue(1));
    }

    #[test]
    fn far_events_migrate_through_multiple_horizons() {
        let mut q = ShardQueue::new(0);
        for i in 0..10u64 {
            q.push(i * 200, issue(0));
        }
        let times: Vec<u64> = std::iter::from_fn(|| q.pop_in(u64::MAX).map(|(t, _)| t)).collect();
        assert_eq!(times, (0..10).map(|i| i * 200).collect::<Vec<_>>());
    }

    #[test]
    fn ring_slots_never_mix_cycles() {
        // 0 and 64 share slot 0 but are 1 horizon apart: 64 goes to far,
        // then migrates after 0 pops.
        let mut q = ShardQueue::new(0);
        q.push(0, issue(0));
        q.push(64, issue(1));
        q.push(63, issue(2));
        assert_eq!(q.pop_in(u64::MAX).map(|(t, _)| t), Some(0));
        assert_eq!(q.pop_in(u64::MAX).map(|(t, _)| t), Some(63));
        assert_eq!(q.pop_in(u64::MAX).map(|(t, _)| t), Some(64));
        assert!(q.pop_in(u64::MAX).is_none());
    }
}
