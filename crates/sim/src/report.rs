//! The common experiment report.

use serde::{Deserialize, Serialize};
use twobit_obs::{LatencySummary, MetricsSummary, TxnClass};
use twobit_types::{ProtocolKind, SystemStats};

/// Results of one simulated run, in the paper's units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The protocol that ran.
    pub protocol: ProtocolKind,
    /// Full per-component statistics.
    pub stats: SystemStats,
    /// Simulated cycles elapsed.
    pub cycles: u64,
    /// Simulation events processed: event-queue pops for the
    /// discrete-event simulator, bus steps for the bus simulator. The
    /// denominator of the throughput benchmark's events/sec figure.
    pub events: u64,
    /// Observability summary: latency percentiles per transaction class,
    /// queue-depth/outstanding gauges, and the useless-command rate.
    /// `None` only for hand-built reports; both simulators populate it.
    pub obs: Option<MetricsSummary>,
}

impl Report {
    /// Commands received per cache per memory reference — the Table 4-1 /
    /// 4-2 axis.
    #[must_use]
    pub fn commands_per_reference(&self) -> f64 {
        self.stats.commands_received_per_reference()
    }

    /// Useless (non-matching) commands per reference — the pure waste the
    /// two-bit scheme trades for its small directory.
    #[must_use]
    pub fn useless_per_reference(&self) -> f64 {
        let refs = self.stats.total_references();
        if refs == 0 {
            return 0.0;
        }
        let useless: u64 = self
            .stats
            .caches
            .iter()
            .map(|c| c.useless_commands.get())
            .sum();
        useless as f64 / refs as f64
    }

    /// Stolen cache cycles per reference.
    #[must_use]
    pub fn stolen_per_reference(&self) -> f64 {
        let refs = self.stats.total_references();
        if refs == 0 {
            return 0.0;
        }
        let stolen: u64 = self
            .stats
            .caches
            .iter()
            .map(|c| c.stolen_cycles.get())
            .sum();
        stolen as f64 / refs as f64
    }

    /// Broadcasts sent per memory reference.
    #[must_use]
    pub fn broadcasts_per_reference(&self) -> f64 {
        let refs = self.stats.total_references();
        if refs == 0 {
            return 0.0;
        }
        let b: u64 = self
            .stats
            .controllers
            .iter()
            .map(|c| c.broadcasts_sent.get())
            .sum();
        b as f64 / refs as f64
    }

    /// Network deliveries per memory reference (the traffic axis of
    /// section 4.3's closing concern).
    #[must_use]
    pub fn deliveries_per_reference(&self) -> f64 {
        let refs = self.stats.total_references();
        if refs == 0 {
            return 0.0;
        }
        self.stats.network.deliveries.as_f64() / refs as f64
    }

    /// Cycles per reference (a throughput figure; lower is better).
    #[must_use]
    pub fn cycles_per_reference(&self) -> f64 {
        let refs = self.stats.total_references();
        if refs == 0 {
            return 0.0;
        }
        self.cycles as f64 / (refs as f64 / self.stats.caches.len().max(1) as f64)
    }

    /// System-wide hit ratio.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// The latency summary for one transaction class, when the run
    /// carried a metrics registry.
    #[must_use]
    pub fn latency(&self, class: TxnClass) -> Option<LatencySummary> {
        let obs = self.obs.as_ref()?;
        obs.latency
            .iter()
            .find(|(c, _)| *c == class)
            .map(|(_, s)| *s)
    }

    /// Peak controller conflict-queue depth observed (0 without metrics).
    #[must_use]
    pub fn peak_queue_depth(&self) -> u64 {
        self.obs.as_ref().map_or(0, |o| o.peak_queue_depth)
    }

    /// Useless fraction of delivered coherence commands (0 without
    /// metrics).
    #[must_use]
    pub fn useless_rate(&self) -> f64 {
        self.obs.as_ref().map_or(0.0, MetricsSummary::useless_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::Counter;

    fn report_with(refs_per_cache: u64, received: u64, caches: usize) -> Report {
        let mut stats = SystemStats::new(caches, 1);
        for c in &mut stats.caches {
            c.reads = Counter::from(refs_per_cache);
            c.commands_received = Counter::from(received);
            c.useless_commands = Counter::from(received / 2);
            c.stolen_cycles = Counter::from(received);
        }
        Report {
            protocol: ProtocolKind::TwoBit,
            stats,
            cycles: 1000,
            events: 0,
            obs: None,
        }
    }

    #[test]
    fn per_reference_metrics_normalize() {
        let r = report_with(100, 25, 4);
        assert!((r.commands_per_reference() - 0.25).abs() < 1e-12);
        assert!((r.useless_per_reference() - 0.12).abs() < 0.01);
        assert!((r.stolen_per_reference() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_gives_zeroes_not_nan() {
        let r = Report {
            protocol: ProtocolKind::FullMap,
            stats: SystemStats::new(2, 1),
            cycles: 0,
            events: 0,
            obs: None,
        };
        assert_eq!(r.commands_per_reference(), 0.0);
        assert_eq!(r.cycles_per_reference(), 0.0);
        assert_eq!(r.deliveries_per_reference(), 0.0);
        assert_eq!(r.latency(TxnClass::ReadMiss), None);
        assert_eq!(r.peak_queue_depth(), 0);
        assert_eq!(r.useless_rate(), 0.0);
    }

    #[test]
    fn cycles_per_reference_uses_per_cpu_rate() {
        let r = report_with(100, 0, 4);
        // 1000 cycles for 100 refs per cpu → 10 cycles/ref.
        assert!((r.cycles_per_reference() - 10.0).abs() < 1e-9);
    }
}
