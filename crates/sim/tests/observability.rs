//! Integration tests for the observability layer: trace determinism,
//! JSONL round-tripping through a whole run, and the differential check
//! that the metrics registry's useless-command accounting agrees exactly
//! with the legacy per-cache statistics.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use twobit_obs::{JsonlTracer, SimEvent, TxnClass};
use twobit_sim::{DirectorySim, System};
use twobit_types::{ProtocolKind, SystemConfig};
use twobit_workload::{SharingModel, SharingParams};

/// A `Write` sink whose bytes stay reachable after the tracer is boxed
/// away behind `dyn Tracer` (no downcasting needed).
#[derive(Debug, Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    fn bytes(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Runs the standard 4-cpu two-bit configuration with a JSONL tracer
/// attached and returns the raw trace bytes.
fn traced_run(seed: u64, refs_per_cpu: u64) -> Vec<u8> {
    let buf = SharedBuf::default();
    let mut system = System::build(SystemConfig::with_defaults(4)).unwrap();
    system.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
    let workload = SharingModel::new(SharingParams::moderate(), 4, seed).unwrap();
    system.run(workload, refs_per_cpu).unwrap();
    drop(system.take_tracer());
    buf.bytes()
}

#[test]
fn identical_config_and_seed_give_byte_identical_traces() {
    let a = traced_run(42, 300);
    let b = traced_run(42, 300);
    assert!(!a.is_empty(), "traced run must produce events");
    assert_eq!(a, b, "simulation is deterministic, so traces must be too");
}

#[test]
fn different_seeds_give_different_traces() {
    // Guards the determinism test against vacuously comparing constants.
    assert_ne!(traced_run(42, 300), traced_run(43, 300));
}

#[test]
fn whole_run_trace_round_trips_through_jsonl() {
    let bytes = traced_run(7, 100);
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let mut parsed = 0;
    for line in text.lines() {
        let ev =
            SimEvent::from_jsonl(line).unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        assert_eq!(ev.to_jsonl(), line, "round trip must be lossless");
        parsed += 1;
    }
    assert!(
        parsed > 100,
        "expected a substantial trace, got {parsed} events"
    );
}

#[test]
fn metrics_useless_accounting_reconciles_with_stats() {
    // The registry and the legacy stats count useless commands through
    // entirely separate code paths; they must agree exactly, per
    // protocol. Broadcast-heavy, multicast, and write-through protocols
    // exercise different uselessness sources.
    for protocol in [
        ProtocolKind::TwoBit,
        ProtocolKind::TwoBitTlb { entries: 4 },
        ProtocolKind::FullMap,
        ProtocolKind::FullMapLocal,
        ProtocolKind::ClassicalWriteThrough,
    ] {
        let config = SystemConfig::with_defaults(4).with_protocol(protocol);
        let mut sim = DirectorySim::build(config).unwrap();
        let workload = SharingModel::new(SharingParams::high(), 4, 9).unwrap();
        let report = sim.run(workload, 2_000).unwrap();
        sim.metrics()
            .reconcile_useless(&report.stats.caches)
            .unwrap_or_else(|(i, mine, theirs)| {
                panic!("{protocol}: cache {i} metrics={mine} stats={theirs}")
            });
        let obs = report.obs.as_ref().expect("directory runs carry metrics");
        let stats_received: u64 = report
            .stats
            .caches
            .iter()
            .map(|c| c.commands_received.get())
            .sum();
        assert_eq!(
            obs.commands_delivered, stats_received,
            "{protocol}: delivered total"
        );
    }
}

#[test]
fn latency_and_gauges_populated_on_directory_runs() {
    let config = SystemConfig::with_defaults(4);
    let mut sim = DirectorySim::build(config).unwrap();
    let workload = SharingModel::new(SharingParams::high(), 4, 5).unwrap();
    let report = sim.run(workload, 2_000).unwrap();
    let read = report.latency(TxnClass::ReadMiss).expect("metrics present");
    assert!(read.count > 0, "read misses complete");
    // p50/p99 are bucket upper bounds (so may exceed the exact max);
    // only their ordering and positivity are guaranteed.
    assert!(read.mean > 0.0 && read.max > 0, "latencies are non-trivial");
    assert!(read.p50 <= read.p99, "percentiles are monotone");
    let obs = report.obs.as_ref().unwrap();
    assert!(
        obs.peak_outstanding >= 1,
        "stalled transactions were observed"
    );
}

#[test]
fn bus_reports_carry_reconciled_metrics() {
    let mut config = SystemConfig::with_defaults(4).with_protocol(ProtocolKind::Illinois);
    config.address_map = twobit_types::AddressMap::interleaved(1);
    let mut system = System::build(config).unwrap();
    let workload = SharingModel::new(SharingParams::moderate(), 4, 3).unwrap();
    let report = system.run(workload, 1_000).unwrap();
    let obs = report.obs.as_ref().expect("bus runs carry metrics");
    let stats_useless: u64 = report
        .stats
        .caches
        .iter()
        .map(|c| c.useless_commands.get())
        .sum();
    assert_eq!(obs.useless_commands, stats_useless);
    assert!(
        report.latency(TxnClass::ReadMiss).map_or(0, |l| l.count) > 0,
        "bus read misses measured in bus cycles"
    );
}
