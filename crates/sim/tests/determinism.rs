//! Integration tests for the sharded engine's determinism contract:
//! for any worker count, [`DirectorySim::run_jobs`] must be
//! event-for-event identical to the legacy single-threaded
//! [`DirectorySim::run`] — same cycle count, same event count, same
//! per-cache statistics, same latency histograms, and (when a tracer is
//! installed) the same JSONL trace byte-for-byte, in the same order.
//!
//! These tests call `DirectorySim::run_jobs` directly with explicit
//! worker counts (the `System` facade clamps to the machine's available
//! parallelism, which on a small CI box would silently reduce every case
//! to one worker), so real threads, mailboxes, and barriers are
//! exercised even on a single-core host.

use std::cell::RefCell;
use std::io::Write;
use std::rc::Rc;

use twobit_obs::{JsonlTracer, SimEvent, TxnClass};
use twobit_sim::{DirectorySim, Report, System};
use twobit_types::{AddressMap, ProtocolKind, SystemConfig};
use twobit_workload::{SharingModel, SharingParams, Workload};

/// Every directory scheme in the paper's spectrum.
const SCHEMES: [ProtocolKind; 6] = [
    ProtocolKind::TwoBit,
    ProtocolKind::TwoBitTlb { entries: 8 },
    ProtocolKind::FullMap,
    ProtocolKind::FullMapLocal,
    ProtocolKind::ClassicalWriteThrough,
    ProtocolKind::StaticSoftware,
];

fn config(n: usize, protocol: ProtocolKind) -> SystemConfig {
    SystemConfig::with_defaults(n).with_protocol(protocol)
}

fn workload(n: usize, seed: u64) -> SharingModel {
    SharingModel::new(SharingParams::high(), n, seed).unwrap()
}

/// The full fingerprint of a run, gauges included. Comparable between
/// runs of the *same* engine (the shard decomposition is fixed by the
/// configuration, so even sampled gauges are jobs-invariant).
fn fingerprint(report: &Report) -> String {
    format!(
        "cycles={} events={} stats={:?} obs={:?}",
        report.cycles, report.events, report.stats, report.obs
    )
}

/// The cross-engine fingerprint: everything except the sampled gauge
/// summaries (`peak_queue_depth`, `peak_outstanding`, `mean_outstanding`),
/// which the sharded engine computes per shard — each shard samples only
/// the actors it owns — so their values are per-shard views rather than
/// global ones whenever the configuration has more than one module. All
/// counters, cycle/event totals, per-cache statistics, and latency
/// summaries are exact.
fn cross_engine_fingerprint(report: &Report) -> String {
    let obs = report.obs.as_ref().expect("directory runs carry metrics");
    format!(
        "cycles={} events={} stats={:?} latency={:?} delivered={} useless={}",
        report.cycles,
        report.events,
        report.stats,
        obs.latency,
        obs.commands_delivered,
        obs.useless_commands
    )
}

fn run_legacy(protocol: ProtocolKind, seed: u64, refs: u64) -> (Report, Vec<String>) {
    let mut sim = DirectorySim::build(config(8, protocol)).unwrap();
    let report = sim.run(workload(8, seed), refs).unwrap();
    let latencies = TxnClass::ALL
        .iter()
        .map(|&c| format!("{:?}", sim.metrics().latency(c)))
        .collect();
    (report, latencies)
}

fn run_sharded(protocol: ProtocolKind, seed: u64, refs: u64, jobs: usize) -> (Report, Vec<String>) {
    let mut sim = DirectorySim::build(config(8, protocol)).unwrap();
    let report = sim.run_jobs(workload(8, seed), refs, jobs).unwrap();
    let latencies = TxnClass::ALL
        .iter()
        .map(|&c| format!("{:?}", sim.metrics().latency(c)))
        .collect();
    (report, latencies)
}

#[test]
fn sharded_reconciles_exactly_with_legacy_for_all_schemes() {
    for protocol in SCHEMES {
        let (legacy_report, legacy_lat) = run_legacy(protocol, 11, 200);
        let (sharded_report, sharded_lat) = run_sharded(protocol, 11, 200, 1);
        assert_eq!(
            cross_engine_fingerprint(&sharded_report),
            cross_engine_fingerprint(&legacy_report),
            "{protocol}: sharded jobs=1 must reconcile with the legacy engine"
        );
        assert_eq!(sharded_lat, legacy_lat, "{protocol}: latency histograms");
    }
}

#[test]
fn worker_count_is_invisible_in_results() {
    for protocol in [ProtocolKind::TwoBit, ProtocolKind::FullMap] {
        let baseline = run_sharded(protocol, 42, 250, 1);
        for jobs in [2, 8] {
            let run = run_sharded(protocol, 42, 250, jobs);
            assert_eq!(
                fingerprint(&run.0),
                fingerprint(&baseline.0),
                "{protocol}: jobs={jobs} diverged from jobs=1"
            );
            assert_eq!(run.1, baseline.1, "{protocol}: jobs={jobs} latencies");
        }
    }
}

#[test]
fn reruns_are_bit_stable() {
    // Thread scheduling varies between reruns; results must not.
    let first = run_sharded(ProtocolKind::TwoBit, 7, 300, 8);
    for _ in 0..3 {
        let again = run_sharded(ProtocolKind::TwoBit, 7, 300, 8);
        assert_eq!(fingerprint(&again.0), fingerprint(&first.0));
        assert_eq!(again.1, first.1);
    }
}

/// A `Write` sink whose bytes stay reachable after the tracer is boxed
/// behind `dyn Tracer`.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_bytes(jobs: Option<usize>) -> Vec<u8> {
    let buf = SharedBuf::default();
    let mut sim = DirectorySim::build(config(8, ProtocolKind::TwoBit)).unwrap();
    sim.set_tracer(Box::new(JsonlTracer::new(buf.clone())));
    match jobs {
        Some(jobs) => sim.run_jobs(workload(8, 3), 80, jobs).unwrap(),
        None => sim.run(workload(8, 3), 80).unwrap(),
    };
    drop(sim.take_tracer());
    let bytes = buf.0.borrow().clone();
    bytes
}

#[test]
fn multi_worker_jsonl_trace_is_valid_and_in_legacy_order() {
    let legacy = traced_bytes(None);
    assert!(!legacy.is_empty(), "traced run must produce events");
    for jobs in [1, 2, 8] {
        let sharded = traced_bytes(Some(jobs));
        assert_eq!(
            sharded, legacy,
            "jobs={jobs}: trace must be byte-identical to the legacy engine's"
        );
    }
    // The byte-equal stream is also valid JSONL, line by line.
    let text = String::from_utf8(legacy).unwrap();
    let mut times = Vec::new();
    for line in text.lines() {
        let ev =
            SimEvent::from_jsonl(line).unwrap_or_else(|| panic!("unparseable trace line: {line}"));
        times.push(ev.t);
    }
    assert!(times.len() > 100, "substantial trace expected");
}

#[test]
fn facade_run_jobs_covers_both_backends() {
    // Directory backend: sharded result equals the plain run.
    let mut a = System::build(config(4, ProtocolKind::TwoBit)).unwrap();
    let ra = a.run(workload(4, 5), 100).unwrap();
    let mut b = System::build(config(4, ProtocolKind::TwoBit)).unwrap();
    let rb = b.run_jobs(workload(4, 5), 100, 8).unwrap();
    assert_eq!(cross_engine_fingerprint(&ra), cross_engine_fingerprint(&rb));

    // Bus backend ignores `jobs` and still completes.
    let mut cfg = config(4, ProtocolKind::Illinois);
    cfg.address_map = AddressMap::interleaved(1);
    let mut bus = System::build(cfg).unwrap();
    let report = bus.run_jobs(workload(4, 5), 100, 8).unwrap();
    assert_eq!(report.stats.total_references(), 400);
}

#[test]
fn single_module_map_collapses_to_one_shard_and_still_matches() {
    // One memory module means one shard: the serial fast path. It must
    // still match the legacy engine exactly, gauges included.
    let mut cfg = config(4, ProtocolKind::TwoBit);
    cfg.address_map = AddressMap::interleaved(1);
    let mut legacy = DirectorySim::build(cfg).unwrap();
    let legacy_report = legacy.run(workload(4, 9), 150).unwrap();
    let mut sharded = DirectorySim::build(cfg).unwrap();
    let sharded_report = sharded.run_jobs(workload(4, 9), 150, 8).unwrap();
    assert_eq!(fingerprint(&sharded_report), fingerprint(&legacy_report));
}

/// A workload wrapper that panics if a cpu outside the expected shard
/// residency is ever queried — guards the "each shard queries only its
/// own cpus" property that per-cpu rng stream independence relies on.
#[derive(Debug, Clone)]
struct OwnCpusOnly {
    inner: SharingModel,
    n_shards: usize,
    // Shard identity is discovered from the clone's first query.
    first_mod: Option<usize>,
}

impl Workload for OwnCpusOnly {
    fn next_ref(&mut self, k: twobit_types::CacheId) -> twobit_types::MemRef {
        let m = k.index() % self.n_shards;
        match self.first_mod {
            None => self.first_mod = Some(m),
            Some(f) => assert_eq!(m, f, "shard clone queried a foreign cpu {k:?}"),
        }
        self.inner.next_ref(k)
    }

    fn name(&self) -> &'static str {
        "own-cpus-only"
    }
}

#[test]
fn each_shard_queries_only_its_own_cpus() {
    let cfg = config(8, ProtocolKind::TwoBit);
    let n_shards = cfg.address_map.modules();
    assert!(n_shards > 1, "default map must shard");
    let wrapped = OwnCpusOnly {
        inner: workload(8, 21),
        n_shards,
        first_mod: None,
    };
    let mut sim = DirectorySim::build(cfg).unwrap();
    let report = sim.run_jobs(wrapped, 100, 4).unwrap();
    assert_eq!(report.stats.total_references(), 800);
}
