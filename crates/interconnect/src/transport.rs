//! Line-delimited message transport for the distributed runner.
//!
//! The `twobit-dist` node fleet exchanges JSON documents over byte
//! streams — a child process's stdin/stdout pipes, or a TCP connection.
//! This module is the *framing* layer those documents ride on; it knows
//! nothing about their content.
//!
//! # Framing
//!
//! One message per line: a message is a UTF-8 string containing no `\n`,
//! terminated on the wire by a single `\n`. The compact JSON writer in
//! [`twobit_obs::json`] escapes control characters inside strings
//! (`\n` → `\\n`), so any document it renders is a valid frame by
//! construction. An empty line is a valid (empty) message; end-of-stream
//! is distinguished from it by [`Transport::recv`] returning `None`.
//!
//! Writes are flushed per message: a frame is either fully visible to the
//! peer or not sent at all, which is what lets the driver treat a crashed
//! node's last partial line as simply unsent. A trailing unterminated
//! line at EOF is delivered as a final message (the payload layer decides
//! whether a truncated document is an error).
//!
//! # Why not length-prefixed binary?
//!
//! The fleet's messages are small (a coherence command plus an envelope),
//! rates are test-scale, and every byte on the wire being readable with
//! `cat` makes fault-injection runs debuggable from the merged trace
//! alone. The same trade the tracing layer made (`JsonlTracer`).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// A bidirectional, ordered, reliable message stream.
///
/// Implementations carry whole messages (frames); ordering and
/// reliability come from the underlying byte stream (pipe or TCP).
/// Loss, delay, and reordering are *simulated* above this layer by the
/// driver's fault plan — never by the transport.
pub trait Transport: Send {
    /// Sends one message, flushing it to the peer.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error (e.g. a broken pipe when the
    /// peer died). `msg` must not contain `\n`; in debug builds this is
    /// asserted.
    fn send(&mut self, msg: &str) -> io::Result<()>;

    /// Receives the next message, blocking until one arrives.
    ///
    /// Returns `None` at end-of-stream (peer closed the connection).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, or [`io::ErrorKind::InvalidData`]
    /// if the peer sent bytes that are not UTF-8.
    fn recv(&mut self) -> io::Result<Option<String>>;
}

/// [`Transport`] over any buffered reader / writer pair.
///
/// The concrete fleet instantiations are [`stdio`] (a node's own stdin
/// and stdout) and [`tcp_connect`]/[`tcp_accept`] (a cloned TCP stream
/// for each direction), but tests can pair any in-memory streams.
#[derive(Debug)]
pub struct LineTransport<R, W> {
    reader: R,
    writer: W,
}

impl<R: BufRead, W: Write> LineTransport<R, W> {
    /// Wraps an already-buffered reader and a writer.
    pub fn new(reader: R, writer: W) -> Self {
        LineTransport { reader, writer }
    }
}

impl<R, W> Transport for LineTransport<R, W>
where
    R: BufRead + Send,
    W: Write + Send,
{
    fn send(&mut self, msg: &str) -> io::Result<()> {
        debug_assert!(
            !msg.contains('\n'),
            "a frame must be a single line; escape newlines in the payload"
        );
        self.writer.write_all(msg.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Option<String>> {
        let mut line = String::new();
        match self.reader.read_line(&mut line)? {
            0 => Ok(None),
            _ => {
                if line.ends_with('\n') {
                    line.pop();
                }
                Ok(Some(line))
            }
        }
    }
}

/// The transport a node binary uses toward the driver that spawned it:
/// messages in on stdin, messages out on stdout. Anything the node wants
/// a human to see goes to stderr, which the driver leaves alone.
#[must_use]
pub fn stdio() -> LineTransport<BufReader<io::Stdin>, io::Stdout> {
    LineTransport::new(BufReader::new(io::stdin()), io::stdout())
}

/// Connects to a listening peer (the TCP flavor of the fleet).
///
/// `TCP_NODELAY` is set: frames are single small writes and the driver's
/// request/response discipline would otherwise stall on Nagle delays.
///
/// # Errors
///
/// Propagates connection errors.
pub fn tcp_connect(
    addr: impl ToSocketAddrs,
) -> io::Result<LineTransport<BufReader<TcpStream>, TcpStream>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok(LineTransport::new(reader, stream))
}

/// Why an accept with a deadline did not produce a connection.
///
/// The driver spawns a node and then waits for it to dial back; a node
/// that crashes before connecting must surface as this typed error, not
/// as a driver hung in `accept(2)` forever.
#[derive(Debug)]
pub enum AcceptError {
    /// No peer connected within the deadline.
    Timeout {
        /// How long the call waited before giving up.
        waited: Duration,
    },
    /// The listener itself failed.
    Io(io::Error),
}

impl std::fmt::Display for AcceptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AcceptError::Timeout { waited } => {
                write!(f, "no inbound connection within {} ms", waited.as_millis())
            }
            AcceptError::Io(e) => write!(f, "accept failed: {e}"),
        }
    }
}

impl std::error::Error for AcceptError {}

impl From<io::Error> for AcceptError {
    fn from(e: io::Error) -> Self {
        AcceptError::Io(e)
    }
}

/// Accepts one inbound connection on `listener`, waiting at most
/// `timeout`. The raw-stream flavor of [`tcp_accept`], for callers (the
/// multiplexed driver) that hand the stream to a
/// [`crate::poll::PollTransport`] instead of framing it here.
///
/// The listener is temporarily switched to non-blocking mode and
/// restored before returning; the accepted stream is explicitly set
/// blocking (non-blocking inheritance across `accept` is
/// platform-dependent).
///
/// # Errors
///
/// [`AcceptError::Timeout`] if no peer connects in time, otherwise the
/// listener's I/O error.
pub fn tcp_accept_stream(
    listener: &TcpListener,
    timeout: Duration,
) -> Result<TcpStream, AcceptError> {
    listener.set_nonblocking(true)?;
    let start = Instant::now();
    let outcome = loop {
        match listener.accept() {
            Ok((stream, _peer)) => break Ok(stream),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if start.elapsed() >= timeout {
                    break Err(AcceptError::Timeout {
                        waited: start.elapsed(),
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => break Err(AcceptError::Io(e)),
        }
    };
    // Restore the listener for any later (possibly blocking) caller.
    listener.set_nonblocking(false)?;
    let stream = outcome?;
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Accepts one inbound connection on `listener`, waiting at most
/// `timeout`.
///
/// # Errors
///
/// [`AcceptError::Timeout`] if no peer connects within the deadline —
/// a node that died before dialing back must not hang the driver —
/// otherwise the underlying accept/clone error.
pub fn tcp_accept(
    listener: &TcpListener,
    timeout: Duration,
) -> Result<LineTransport<BufReader<TcpStream>, TcpStream>, AcceptError> {
    let stream = tcp_accept_stream(listener, timeout)?;
    let reader = BufReader::new(stream.try_clone().map_err(AcceptError::Io)?);
    Ok(LineTransport::new(reader, stream))
}

/// An in-memory transport half for tests: what one side writes, the
/// other reads. Build a pair with [`loopback`].
pub type MemTransport = LineTransport<BufReader<ChanReader>, ChanWriter>;

/// Reader half of an in-memory byte channel (see [`loopback`]).
#[derive(Debug)]
pub struct ChanReader {
    rx: std::sync::mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

/// Writer half of an in-memory byte channel (see [`loopback`]).
#[derive(Debug)]
pub struct ChanWriter {
    tx: std::sync::mpsc::Sender<Vec<u8>>,
}

impl Read for ChanReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // all writers dropped: EOF
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for ChanWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))?;
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A connected pair of in-memory transports: frames sent on one side
/// arrive at the other, in order, with pipe-like EOF when a side drops.
#[must_use]
pub fn loopback() -> (MemTransport, MemTransport) {
    let (tx_ab, rx_ab) = std::sync::mpsc::channel();
    let (tx_ba, rx_ba) = std::sync::mpsc::channel();
    let a = LineTransport::new(
        BufReader::new(ChanReader {
            rx: rx_ba,
            buf: Vec::new(),
            pos: 0,
        }),
        ChanWriter { tx: tx_ab },
    );
    let b = LineTransport::new(
        BufReader::new(ChanReader {
            rx: rx_ab,
            buf: Vec::new(),
            pos: 0,
        }),
        ChanWriter { tx: tx_ba },
    );
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn loopback_roundtrips_frames_in_order() {
        let (mut a, mut b) = loopback();
        a.send("{\"x\":1}").unwrap();
        a.send("").unwrap();
        a.send("second").unwrap();
        assert_eq!(b.recv().unwrap().as_deref(), Some("{\"x\":1}"));
        assert_eq!(b.recv().unwrap().as_deref(), Some(""));
        assert_eq!(b.recv().unwrap().as_deref(), Some("second"));
        b.send("reply").unwrap();
        assert_eq!(a.recv().unwrap().as_deref(), Some("reply"));
    }

    #[test]
    fn dropping_the_peer_yields_eof() {
        let (a, mut b) = loopback();
        drop(a);
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn tcp_pair_roundtrips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let mut server = tcp_accept(&listener, std::time::Duration::from_secs(10)).unwrap();
            let got = server.recv().unwrap().unwrap();
            server.send(&format!("echo:{got}")).unwrap();
        });
        let mut client = tcp_connect(addr).unwrap();
        client.send("hello").unwrap();
        assert_eq!(client.recv().unwrap().as_deref(), Some("echo:hello"));
        join.join().unwrap();
    }

    #[test]
    fn tcp_accept_times_out_when_no_peer_connects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let started = std::time::Instant::now();
        match tcp_accept(&listener, std::time::Duration::from_millis(50)) {
            Err(AcceptError::Timeout { waited }) => {
                assert!(waited >= std::time::Duration::from_millis(50));
                assert!(
                    started.elapsed() < std::time::Duration::from_secs(5),
                    "the wait must be bounded by the deadline, not unbounded"
                );
            }
            Ok(_) => panic!("no peer exists, accept cannot succeed"),
            Err(other) => panic!("expected Timeout, got {other}"),
        }
        // The listener is restored to blocking mode and still usable.
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let mut client = tcp_connect(addr).unwrap();
            client.send("late").unwrap();
        });
        let mut server = tcp_accept(&listener, std::time::Duration::from_secs(10)).unwrap();
        assert_eq!(server.recv().unwrap().as_deref(), Some("late"));
        join.join().unwrap();
    }

    #[test]
    fn json_documents_are_single_frames() {
        use twobit_obs::json::{obj, Json};
        let doc = obj([("text", Json::Str("line1\nline2\t\"q\"".into()))]);
        let rendered = doc.to_json();
        assert!(!rendered.contains('\n'), "compact JSON must be one line");
        let (mut a, mut b) = loopback();
        a.send(&rendered).unwrap();
        let back = twobit_obs::json::parse(&b.recv().unwrap().unwrap()).unwrap();
        assert_eq!(back, doc);
    }
}
