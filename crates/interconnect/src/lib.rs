//! Interconnection-network models for the Figure 3-1 topology.
//!
//! The paper's system connects `n` processor–cache pairs to `m`
//! controller–memory modules through an unspecified "interconnection
//! network"; its section 4 worries specifically about "the effect of the
//! broadcasts on traffic in the interconnection network". Two models
//! capture the ends of the design space:
//!
//! * [`Crossbar`] — point-to-point paths with per-destination-port
//!   contention: messages to different destinations never interfere, but
//!   a broadcast occupies *every* cache's input port — making the
//!   two-bit scheme's broadcast amplification directly visible in
//!   queueing-cycle statistics.
//! * [`SharedBus`] — a single serializing resource (used by the
//!   section 2.5 snooping protocols in `twobit-bus`, and available for
//!   directory schemes for comparison).
//!
//! Both models guarantee per-destination FIFO delivery (a message sent
//! earlier to the same recipient is delivered no later), which the
//! directory protocols in `twobit-core` rely on for their race
//! resolutions (e.g. `BROADINV` before a stale `MGRANTED`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod poll;
pub mod transport;

use serde::{Deserialize, Serialize};
use twobit_obs::{ActorId, Profiler, SimEvent, Tracer};
use twobit_types::{BlockAddr, CacheId, ModuleId, NetworkStats};

/// A network endpoint: a cache or a memory-module controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeId {
    /// A processor–cache pair `C_k`.
    Cache(CacheId),
    /// A controller–memory module `K_j`–`M_j`.
    Module(ModuleId),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Cache(c) => write!(f, "{c}"),
            NodeId::Module(m) => write!(f, "{m}"),
        }
    }
}

/// What a message carries, for latency selection: control commands are
/// short; block transfers (`put`/`get`) are long.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageSize {
    /// A control command.
    Command,
    /// A block data transfer.
    Data,
}

impl std::fmt::Display for MessageSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MessageSize::Command => "cmd",
            MessageSize::Data => "data",
        })
    }
}

/// A timing model of the interconnection network.
///
/// `schedule` is called once per point delivery (the simulator expands a
/// broadcast into one call per recipient); it returns the cycle at which
/// the message arrives at `dst`, accounting for contention, and updates
/// traffic statistics.
pub trait Network {
    /// Schedules a delivery injected at cycle `now`; returns arrival time.
    fn schedule(&mut self, src: NodeId, dst: NodeId, size: MessageSize, now: u64) -> u64;

    /// Records one *logical* message injection (a broadcast counts once),
    /// for the `command_messages`/`data_messages` statistics.
    fn note_injection(&mut self, size: MessageSize);

    /// Accumulated traffic statistics.
    fn stats(&self) -> &NetworkStats;

    /// A short model name for reports.
    fn name(&self) -> &'static str;

    /// Like [`schedule`](Network::schedule), but also records a network
    /// occupancy event for `block`'s message when `tracer` is enabled.
    /// The event carries the hop, the payload size, the arrival cycle,
    /// and — when the destination port was busy — the queueing delay this
    /// message absorbed, making contention visible per message rather
    /// than only as the aggregate `queueing_cycles` counter.
    fn schedule_traced(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: MessageSize,
        now: u64,
        block: BlockAddr,
        tracer: &mut dyn Tracer,
    ) -> u64 {
        let queued_before = self.stats().queueing_cycles.get();
        let arrival = self.schedule(src, dst, size, now);
        if tracer.enabled() {
            let queued = self.stats().queueing_cycles.get() - queued_before;
            let mut text = format!("net {src}->{dst} {size} arr@{arrival}");
            if queued > 0 {
                text.push_str(&format!(" (+{queued} queued)"));
            }
            tracer.record(SimEvent::new(now, ActorId::Network, block, text));
        }
        arrival
    }

    /// [`schedule_traced`](Network::schedule_traced) wrapped in a
    /// `net.schedule` span, so the per-delivery reservation work (port
    /// contention lookup, statistics) shows up as its own line in the
    /// simulator's self-time attribution instead of being folded into
    /// whichever handler sent the message.
    #[allow(clippy::too_many_arguments)] // schedule_traced's list + the profiler
    fn schedule_profiled(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size: MessageSize,
        now: u64,
        block: BlockAddr,
        tracer: &mut dyn Tracer,
        perf: &mut Profiler,
    ) -> u64 {
        perf.begin("net.schedule");
        let arrival = self.schedule_traced(src, dst, size, now, block, tracer);
        perf.end("net.schedule");
        arrival
    }
}

/// Point-to-point network with per-destination input-port contention.
///
/// Port bookkeeping is two flat vectors indexed by the dense cache /
/// module indices (node ids are small and contiguous), grown on demand —
/// the dispatch path does no hashing. The sharded engine gives each
/// shard its own `Crossbar` tracking only the ports of the destinations
/// that shard owns; [`merge_stats_from`](Crossbar::merge_stats_from)
/// folds the per-shard traffic counters back together.
#[derive(Debug, Clone)]
pub struct Crossbar {
    command_latency: u64,
    data_latency: u64,
    /// Cycles a destination port is busy accepting one message.
    port_occupancy: u64,
    cache_ports: Vec<u64>,
    module_ports: Vec<u64>,
    stats: NetworkStats,
}

impl Crossbar {
    /// A crossbar with the given wire latencies and per-message port
    /// occupancy.
    #[must_use]
    pub fn new(command_latency: u64, data_latency: u64, port_occupancy: u64) -> Self {
        Crossbar {
            command_latency,
            data_latency,
            port_occupancy,
            cache_ports: Vec::new(),
            module_ports: Vec::new(),
            stats: NetworkStats::default(),
        }
    }

    /// A crossbar with uncontended, zero-latency delivery (functional
    /// timing).
    #[must_use]
    pub fn zero_latency() -> Self {
        Crossbar::new(0, 0, 0)
    }

    /// Folds another crossbar's traffic statistics into this one's (used
    /// to aggregate per-shard networks after a sharded run).
    pub fn merge_stats_from(&mut self, other: &Crossbar) {
        self.stats.merge(&other.stats);
    }

    #[inline]
    fn port_free(&mut self, dst: NodeId) -> &mut u64 {
        let (ports, index) = match dst {
            NodeId::Cache(c) => (&mut self.cache_ports, c.index()),
            NodeId::Module(m) => (&mut self.module_ports, m.index()),
        };
        if index >= ports.len() {
            ports.resize(index + 1, 0);
        }
        &mut ports[index]
    }
}

impl Network for Crossbar {
    fn schedule(&mut self, _src: NodeId, dst: NodeId, size: MessageSize, now: u64) -> u64 {
        let wire = match size {
            MessageSize::Command => self.command_latency,
            MessageSize::Data => self.data_latency,
        };
        let earliest = now + wire;
        let occupancy = self.port_occupancy;
        let free = self.port_free(dst);
        let arrival = earliest.max(*free);
        *free = arrival + occupancy;
        self.stats.queueing_cycles.add(arrival - earliest);
        self.stats.deliveries.inc();
        arrival
    }

    fn note_injection(&mut self, size: MessageSize) {
        match size {
            MessageSize::Command => self.stats.command_messages.inc(),
            MessageSize::Data => self.stats.data_messages.inc(),
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "crossbar"
    }
}

/// A single shared bus: every delivery serializes through one resource.
#[derive(Debug, Clone)]
pub struct SharedBus {
    command_cycles: u64,
    data_cycles: u64,
    next_free: u64,
    stats: NetworkStats,
}

impl SharedBus {
    /// A bus occupying `command_cycles` per command and `data_cycles` per
    /// block transfer.
    #[must_use]
    pub fn new(command_cycles: u64, data_cycles: u64) -> Self {
        SharedBus {
            command_cycles,
            data_cycles,
            next_free: 0,
            stats: NetworkStats::default(),
        }
    }

    /// The cycle at which the bus next becomes free.
    #[must_use]
    pub fn next_free(&self) -> u64 {
        self.next_free
    }

    /// Acquires the bus at `now` for a transaction of the given size;
    /// returns the cycle the transaction *completes*. Snooping protocols
    /// use this directly: address + snoop happen during the occupancy.
    pub fn acquire(&mut self, size: MessageSize, now: u64) -> u64 {
        let occupancy = match size {
            MessageSize::Command => self.command_cycles,
            MessageSize::Data => self.data_cycles,
        };
        let start = now.max(self.next_free);
        self.stats.queueing_cycles.add(start - now);
        self.next_free = start + occupancy;
        self.next_free
    }
}

impl Network for SharedBus {
    fn schedule(&mut self, _src: NodeId, _dst: NodeId, size: MessageSize, now: u64) -> u64 {
        let arrival = self.acquire(size, now);
        self.stats.deliveries.inc();
        arrival
    }

    fn note_injection(&mut self, size: MessageSize) {
        match size {
            MessageSize::Command => self.stats.command_messages.inc(),
            MessageSize::Data => self.stats.data_messages.inc(),
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "shared-bus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(n: usize) -> NodeId {
        NodeId::Cache(CacheId::new(n))
    }

    fn module(n: usize) -> NodeId {
        NodeId::Module(ModuleId::new(n))
    }

    #[test]
    fn crossbar_uncontended_delivery_is_wire_latency() {
        let mut x = Crossbar::new(2, 4, 1);
        assert_eq!(
            x.schedule(cache(0), module(0), MessageSize::Command, 10),
            12
        );
        assert_eq!(x.schedule(cache(1), module(1), MessageSize::Data, 10), 14);
        assert_eq!(x.stats().deliveries.get(), 2);
        assert_eq!(x.stats().queueing_cycles.get(), 0);
    }

    #[test]
    fn crossbar_same_destination_contends() {
        let mut x = Crossbar::new(2, 4, 3);
        let first = x.schedule(cache(0), module(0), MessageSize::Command, 0);
        let second = x.schedule(cache(1), module(0), MessageSize::Command, 0);
        assert_eq!(first, 2);
        assert_eq!(second, 5, "port busy until 5");
        assert_eq!(x.stats().queueing_cycles.get(), 3);
        // Different destination: unaffected.
        assert_eq!(x.schedule(cache(2), module(1), MessageSize::Command, 0), 2);
    }

    #[test]
    fn crossbar_is_fifo_per_destination() {
        let mut x = Crossbar::new(2, 4, 1);
        let mut last = 0;
        for now in [0u64, 0, 1, 3] {
            let arrival = x.schedule(cache(0), cache(5), MessageSize::Command, now);
            assert!(arrival >= last, "delivery order inverted");
            last = arrival;
        }
    }

    #[test]
    fn broadcast_fanout_occupies_every_port_once() {
        let mut x = Crossbar::new(1, 2, 1);
        // A broadcast to 7 caches is 7 schedules; each cache's port sees
        // exactly one message — no shared bottleneck in a crossbar.
        let arrivals: Vec<u64> = (0..7)
            .map(|i| x.schedule(module(0), cache(i), MessageSize::Command, 0))
            .collect();
        assert!(arrivals.iter().all(|&t| t == 1));
        assert_eq!(x.stats().deliveries.get(), 7);
    }

    #[test]
    fn zero_latency_crossbar_delivers_instantly() {
        let mut x = Crossbar::zero_latency();
        assert_eq!(x.schedule(cache(0), module(0), MessageSize::Data, 7), 7);
    }

    #[test]
    fn bus_serializes_everything() {
        let mut b = SharedBus::new(2, 6);
        assert_eq!(b.schedule(cache(0), module(0), MessageSize::Command, 0), 2);
        assert_eq!(b.schedule(cache(1), module(0), MessageSize::Data, 0), 8);
        assert_eq!(
            b.stats().queueing_cycles.get(),
            2,
            "second waited for the bus"
        );
        assert_eq!(b.next_free(), 8);
    }

    #[test]
    fn bus_idle_gap_does_not_accumulate() {
        let mut b = SharedBus::new(2, 6);
        b.acquire(MessageSize::Command, 0);
        // Bus free at 2; next transaction at 10 starts immediately.
        assert_eq!(b.acquire(MessageSize::Command, 10), 12);
        assert_eq!(b.stats().queueing_cycles.get(), 0);
    }

    #[test]
    fn injections_count_by_size() {
        let mut x = Crossbar::zero_latency();
        x.note_injection(MessageSize::Command);
        x.note_injection(MessageSize::Command);
        x.note_injection(MessageSize::Data);
        assert_eq!(x.stats().command_messages.get(), 2);
        assert_eq!(x.stats().data_messages.get(), 1);
    }

    #[test]
    fn node_ids_display() {
        assert_eq!(cache(3).to_string(), "C3");
        assert_eq!(module(1).to_string(), "M1");
    }
}
