//! Multiplexed, poll-based message I/O for the distributed driver.
//!
//! [`super::transport`] gives the fleet its framing: one JSON document
//! per `\n`-terminated line over a byte stream. What it cannot give the
//! driver is *concurrency*: a [`super::transport::Transport`] is a
//! blocking request/response pipe, so a driver built on it can only keep
//! one exchange in flight and its wall-clock is the sum of every
//! round-trip in the run. This module is the other half: a
//! [`PollTransport`] owns **all** node connections at once, so a single
//! driver thread can start many exchanges, let the replies arrive in
//! whatever order the OS produces them, and still *consume* them in a
//! deterministic order of its own choosing (the property DESIGN.md §9
//! leans on).
//!
//! # Model
//!
//! * **Registration** hands a connection to the transport and returns a
//!   [`Token`]. TCP streams are switched to non-blocking mode and polled
//!   directly; pipe-like streams (a child's stdout, which `std` cannot
//!   make non-blocking without raw fd calls) are pumped by a small
//!   reader thread into a channel the poll loop drains without blocking.
//!   Either way the *driver* thread never blocks on a single peer.
//! * **Readiness polling** ([`PollTransport::poll_once`]) makes one
//!   non-blocking pass over every connection: drain available bytes,
//!   split complete frames into per-connection buffers, flush any
//!   back-pressured writes.
//! * **Per-connection frame buffers** decouple arrival order from
//!   consumption order: a frame that arrives for connection B while the
//!   driver waits on connection A is buffered, not lost and not
//!   reordered. [`PollTransport::recv_deadline`] serves from the buffer
//!   first and only then polls.
//!
//! Reads that would block are simply retried on the next poll; a peer
//! that never answers surfaces as the typed [`PollError::Timeout`]
//! rather than a hung driver.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

/// Identifies one registered connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(usize);

/// What [`PollTransport::recv_deadline`] can fail with.
#[derive(Debug)]
pub enum PollError {
    /// The peer produced no frame within the deadline.
    Timeout {
        /// How long the call waited before giving up.
        waited: Duration,
    },
    /// The underlying stream failed.
    Io(io::Error),
    /// The token does not name a live registration.
    Unregistered,
}

impl std::fmt::Display for PollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PollError::Timeout { waited } => {
                write!(f, "no frame within {} ms", waited.as_millis())
            }
            PollError::Io(e) => write!(f, "i/o error: {e}"),
            PollError::Unregistered => f.write_str("connection is not registered"),
        }
    }
}

impl std::error::Error for PollError {}

impl From<io::Error> for PollError {
    fn from(e: io::Error) -> Self {
        PollError::Io(e)
    }
}

/// Where a connection's inbound bytes come from.
enum Feed {
    /// A non-blocking TCP stream read directly by the poll loop.
    Tcp(TcpStream),
    /// A blocking byte stream pumped by a dedicated reader thread; the
    /// poll loop drains the channel, never the stream.
    Pumped(Receiver<io::Result<Vec<u8>>>),
}

/// Where a connection's outbound bytes go.
enum Sink {
    /// Non-blocking; short writes park the remainder in `outbuf`.
    Tcp(TcpStream),
    /// Blocking writer (child stdin). Frames are small and the peer is
    /// a reader-first node loop, so blocking writes cannot deadlock.
    Pipe(Box<dyn Write + Send>),
}

struct Conn {
    feed: Feed,
    sink: Sink,
    /// Raw inbound bytes not yet split at a `\n`.
    inbuf: Vec<u8>,
    /// Complete frames awaiting consumption.
    frames: VecDeque<String>,
    /// Outbound bytes a non-blocking sink has not accepted yet.
    outbuf: Vec<u8>,
    eof: bool,
}

impl Conn {
    /// Splits every complete frame out of `inbuf`.
    fn harvest(&mut self) -> io::Result<()> {
        while let Some(pos) = self.inbuf.iter().position(|&b| b == b'\n') {
            let rest = self.inbuf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut self.inbuf, rest);
            line.pop(); // the '\n'
            let frame = String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
            self.frames.push_back(frame);
        }
        if self.eof && !self.inbuf.is_empty() {
            // A trailing unterminated line at EOF is delivered as a
            // final frame, matching `LineTransport::recv`.
            let line = std::mem::take(&mut self.inbuf);
            let frame = String::from_utf8(line)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
            self.frames.push_back(frame);
        }
        Ok(())
    }

    /// One non-blocking intake pass. Returns whether new bytes arrived.
    fn intake(&mut self) -> io::Result<bool> {
        if self.eof {
            return Ok(false);
        }
        let mut progressed = false;
        match &mut self.feed {
            Feed::Tcp(stream) => {
                let mut chunk = [0u8; 8192];
                loop {
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            self.eof = true;
                            break;
                        }
                        Ok(n) => {
                            self.inbuf.extend_from_slice(&chunk[..n]);
                            progressed = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        // A peer killed mid-exchange (crash injection)
                        // resets rather than closes; treat it as EOF.
                        Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                            self.eof = true;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Feed::Pumped(rx) => loop {
                match rx.try_recv() {
                    Ok(Ok(chunk)) => {
                        self.inbuf.extend_from_slice(&chunk);
                        progressed = true;
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.eof = true;
                        break;
                    }
                }
            },
        }
        if progressed || self.eof {
            self.harvest()?;
        }
        Ok(progressed)
    }

    /// Pushes buffered outbound bytes toward the sink.
    fn flush_pending(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Sink::Pipe(w) => {
                if !self.outbuf.is_empty() {
                    w.write_all(&self.outbuf)?;
                    self.outbuf.clear();
                }
                w.flush()
            }
            Sink::Tcp(stream) => {
                while !self.outbuf.is_empty() {
                    match stream.write(&self.outbuf) {
                        Ok(0) => {
                            return Err(io::Error::new(
                                io::ErrorKind::WriteZero,
                                "peer stopped accepting bytes",
                            ))
                        }
                        Ok(n) => {
                            self.outbuf.drain(..n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
        }
    }
}

/// One driver thread's window onto every node connection at once.
///
/// See the module docs for the model. All methods are non-blocking
/// except [`PollTransport::recv_deadline`], which bounds its wait and
/// fails with the typed [`PollError::Timeout`].
#[derive(Default)]
pub struct PollTransport {
    conns: Vec<Option<Conn>>,
}

impl PollTransport {
    /// An empty transport with no registrations.
    #[must_use]
    pub fn new() -> Self {
        PollTransport::default()
    }

    fn slot(&mut self, conn: Conn) -> Token {
        for (i, s) in self.conns.iter_mut().enumerate() {
            if s.is_none() {
                *s = Some(conn);
                return Token(i);
            }
        }
        self.conns.push(Some(conn));
        Token(self.conns.len() - 1)
    }

    fn conn_mut(&mut self, t: Token) -> Result<&mut Conn, PollError> {
        self.conns
            .get_mut(t.0)
            .and_then(Option::as_mut)
            .ok_or(PollError::Unregistered)
    }

    /// Registers a TCP connection, switching it to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Propagates `set_nonblocking`/`try_clone` failures.
    pub fn register_tcp(&mut self, stream: TcpStream) -> io::Result<Token> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(self.slot(Conn {
            feed: Feed::Tcp(stream),
            sink: Sink::Tcp(write_half),
            inbuf: Vec::new(),
            frames: VecDeque::new(),
            outbuf: Vec::new(),
            eof: false,
        }))
    }

    /// Registers a pipe-like connection: `reader` is handed to a pump
    /// thread (blocking reads never touch the poll loop), `writer` is
    /// written directly.
    pub fn register_pipe<R, W>(&mut self, reader: R, writer: W) -> Token
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || pump(reader, &tx));
        self.slot(Conn {
            feed: Feed::Pumped(rx),
            sink: Sink::Pipe(Box::new(writer)),
            inbuf: Vec::new(),
            frames: VecDeque::new(),
            outbuf: Vec::new(),
            eof: false,
        })
    }

    /// Drops a registration (e.g. after killing the peer). Buffered
    /// frames are discarded; a pump thread, if any, exits on its next
    /// read returning EOF.
    pub fn deregister(&mut self, t: Token) {
        if let Some(slot) = self.conns.get_mut(t.0) {
            *slot = None;
        }
    }

    /// Queues one frame toward the peer and pushes it as far as the
    /// sink accepts without blocking.
    ///
    /// # Errors
    ///
    /// [`PollError::Unregistered`] for a dead token, otherwise the
    /// sink's I/O error. `msg` must not contain `\n` (asserted in debug
    /// builds, same contract as `LineTransport::send`).
    pub fn send(&mut self, t: Token, msg: &str) -> Result<(), PollError> {
        debug_assert!(
            !msg.contains('\n'),
            "a frame must be a single line; escape newlines in the payload"
        );
        let conn = self.conn_mut(t)?;
        conn.outbuf.extend_from_slice(msg.as_bytes());
        conn.outbuf.push(b'\n');
        conn.flush_pending().map_err(PollError::Io)
    }

    /// One readiness pass over every connection: drain available input,
    /// split frames, flush back-pressured output. Returns `true` if any
    /// connection produced new bytes.
    ///
    /// # Errors
    ///
    /// The first connection-level I/O error encountered.
    pub fn poll_once(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        for conn in self.conns.iter_mut().flatten() {
            progressed |= conn.intake()?;
            if !conn.outbuf.is_empty() {
                conn.flush_pending()?;
            }
        }
        Ok(progressed)
    }

    /// Whether a frame is already buffered for `t`.
    #[must_use]
    pub fn has_frame(&self, t: Token) -> bool {
        self.conns
            .get(t.0)
            .and_then(Option::as_ref)
            .is_some_and(|c| !c.frames.is_empty())
    }

    /// Pops a buffered frame for `t` without polling.
    pub fn try_recv(&mut self, t: Token) -> Option<String> {
        self.conns
            .get_mut(t.0)
            .and_then(Option::as_mut)
            .and_then(|c| c.frames.pop_front())
    }

    /// Receives the next frame on `t`, polling **all** connections while
    /// it waits (frames for other tokens are buffered, not dropped).
    /// Returns `Ok(None)` at end-of-stream.
    ///
    /// # Errors
    ///
    /// [`PollError::Timeout`] if no frame (and no EOF) arrives within
    /// `timeout`; I/O errors otherwise.
    pub fn recv_deadline(
        &mut self,
        t: Token,
        timeout: Duration,
    ) -> Result<Option<String>, PollError> {
        let start = Instant::now();
        let mut idle_passes: u32 = 0;
        loop {
            if let Some(frame) = self.conn_mut(t)?.frames.pop_front() {
                return Ok(Some(frame));
            }
            if self.conn_mut(t)?.eof {
                return Ok(None);
            }
            if self.poll_once()? {
                idle_passes = 0;
                continue;
            }
            if start.elapsed() >= timeout {
                return Err(PollError::Timeout {
                    waited: start.elapsed(),
                });
            }
            // Spin briefly (replies usually land within microseconds),
            // then back off so an idle wait does not burn a core.
            idle_passes = idle_passes.saturating_add(1);
            if idle_passes > 64 {
                std::thread::sleep(Duration::from_micros(if idle_passes > 512 {
                    500
                } else {
                    50
                }));
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

/// Body of a pipe pump thread: blocking reads forwarded as chunks until
/// EOF or error; dropping the sender signals EOF to the poll loop.
fn pump<R: Read>(mut reader: R, tx: &Sender<io::Result<Vec<u8>>>) {
    let mut chunk = [0u8; 8192];
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                if tx.send(Ok(chunk[..n].to_vec())).is_err() {
                    return; // deregistered
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// An in-memory blocking reader fed by a channel (pipe stand-in).
    struct TestReader(Receiver<Vec<u8>>);
    impl Read for TestReader {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            match self.0.recv() {
                Ok(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    assert!(n == chunk.len(), "test chunks fit the buffer");
                    Ok(n)
                }
                Err(_) => Ok(0),
            }
        }
    }

    struct TestWriter(Sender<Vec<u8>>);
    impl Write for TestWriter {
        fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
            self.0
                .send(bytes.to_vec())
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))?;
            Ok(bytes.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_multiplex_across_pipe_connections() {
        let mut poll = PollTransport::new();
        let (in_a, rx_a) = std::sync::mpsc::channel();
        let (in_b, rx_b) = std::sync::mpsc::channel();
        let (out_a, _keep_a) = std::sync::mpsc::channel();
        let (out_b, _keep_b) = std::sync::mpsc::channel();
        let a = poll.register_pipe(TestReader(rx_a), TestWriter(out_a));
        let b = poll.register_pipe(TestReader(rx_b), TestWriter(out_b));

        // B's frames arrive first; a recv on A must buffer them, not
        // lose them, and per-connection order must hold.
        in_b.send(b"b1\nb2\n".to_vec()).unwrap();
        in_a.send(b"a1\n".to_vec()).unwrap();
        let got = poll
            .recv_deadline(a, Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got, "a1");
        assert!(poll.has_frame(b));
        assert_eq!(poll.try_recv(b).as_deref(), Some("b1"));
        assert_eq!(poll.try_recv(b).as_deref(), Some("b2"));
        assert_eq!(poll.try_recv(b), None);
    }

    #[test]
    fn split_frames_reassemble() {
        let mut poll = PollTransport::new();
        let (tx, rx) = std::sync::mpsc::channel();
        let (out, _keep) = std::sync::mpsc::channel();
        let t = poll.register_pipe(TestReader(rx), TestWriter(out));
        tx.send(b"{\"half\":".to_vec()).unwrap();
        tx.send(b"1}\n{\"next\":2}\n".to_vec()).unwrap();
        assert_eq!(
            poll.recv_deadline(t, Duration::from_secs(5))
                .unwrap()
                .as_deref(),
            Some("{\"half\":1}")
        );
        assert_eq!(poll.try_recv(t).as_deref(), Some("{\"next\":2}"));
    }

    #[test]
    fn recv_deadline_times_out_with_typed_error() {
        let mut poll = PollTransport::new();
        let (_tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let (out, _keep) = std::sync::mpsc::channel();
        let t = poll.register_pipe(TestReader(rx), TestWriter(out));
        let started = Instant::now();
        match poll.recv_deadline(t, Duration::from_millis(30)) {
            Err(PollError::Timeout { waited }) => {
                assert!(waited >= Duration::from_millis(30));
                assert!(started.elapsed() < Duration::from_secs(5), "bounded wait");
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
    }

    #[test]
    fn peer_eof_yields_none_and_trailing_line_is_delivered() {
        let mut poll = PollTransport::new();
        let (tx, rx) = std::sync::mpsc::channel();
        let (out, _keep) = std::sync::mpsc::channel();
        let t = poll.register_pipe(TestReader(rx), TestWriter(out));
        tx.send(b"last-without-newline".to_vec()).unwrap();
        drop(tx);
        assert_eq!(
            poll.recv_deadline(t, Duration::from_secs(5))
                .unwrap()
                .as_deref(),
            Some("last-without-newline")
        );
        assert_eq!(poll.recv_deadline(t, Duration::from_secs(5)).unwrap(), None);
    }

    #[test]
    fn deregistered_token_is_a_typed_error() {
        let mut poll = PollTransport::new();
        let (_tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        let (out, _keep) = std::sync::mpsc::channel();
        let t = poll.register_pipe(TestReader(rx), TestWriter(out));
        poll.deregister(t);
        assert!(matches!(
            poll.recv_deadline(t, Duration::from_millis(10)),
            Err(PollError::Unregistered)
        ));
        assert!(matches!(poll.send(t, "x"), Err(PollError::Unregistered)));
    }

    #[test]
    fn tcp_connections_poll_without_blocking_each_other() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Two echo peers that each wait for one inbound frame.
        let mut joins = Vec::new();
        for tag in ["one", "two"] {
            let join = std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).unwrap();
                let mut t = crate::transport::LineTransport::new(
                    std::io::BufReader::new(stream.try_clone().unwrap()),
                    stream,
                );
                use crate::transport::Transport;
                let got = t.recv().unwrap().unwrap();
                t.send(&format!("{tag}:{got}")).unwrap();
            });
            joins.push(join);
        }
        let mut poll = PollTransport::new();
        let (s1, _) = listener.accept().unwrap();
        let (s2, _) = listener.accept().unwrap();
        let t1 = poll.register_tcp(s1).unwrap();
        let t2 = poll.register_tcp(s2).unwrap();
        // Both exchanges in flight at once; consume in reverse order.
        poll.send(t1, "ping").unwrap();
        poll.send(t2, "ping").unwrap();
        let r2 = poll
            .recv_deadline(t2, Duration::from_secs(5))
            .unwrap()
            .unwrap();
        let r1 = poll
            .recv_deadline(t1, Duration::from_secs(5))
            .unwrap()
            .unwrap();
        // Peers are accepted in connect order but either may be s1.
        let mut got = [r1, r2];
        got.sort();
        let tails: Vec<&str> = got.iter().map(|s| s.as_str()).collect();
        assert_eq!(tails, ["one:ping", "two:ping"]);
        for j in joins {
            j.join().unwrap();
        }
    }
}
