//! Frame-reassembly edge cases for the multiplexed poll transport —
//! the boundaries the in-module unit tests do not reach: a partial
//! frame cut off by TCP EOF, partial frames interleaved across two
//! connections, and a single frame wider than one 8 KiB intake read.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::time::Duration;

use twobit_interconnect::poll::PollTransport;

/// A blocking reader fed by a channel — stands in for a child's stdout.
/// Chunks larger than the caller's buffer are carried over, so tests
/// may push arbitrarily large writes.
struct ChanReader {
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
}

impl ChanReader {
    fn new(rx: Receiver<Vec<u8>>) -> Self {
        ChanReader {
            rx,
            pending: Vec::new(),
        }
    }
}

impl Read for ChanReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pending.is_empty() {
            match self.rx.recv() {
                Ok(chunk) => self.pending = chunk,
                Err(_) => return Ok(0), // sender dropped: EOF
            }
        }
        let n = self.pending.len().min(out.len());
        out[..n].copy_from_slice(&self.pending[..n]);
        self.pending.drain(..n);
        Ok(n)
    }
}

/// Outbound half of the pipe stand-in; these tests never read it back.
struct ChanWriter(Sender<Vec<u8>>);

impl Write for ChanWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.0
            .send(bytes.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer dropped"))?;
        Ok(bytes.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

const DEADLINE: Duration = Duration::from_secs(10);

/// A peer that dies mid-frame over TCP: one complete frame, then a
/// partial line cut off by the write-side shutdown. The complete frame
/// arrives intact, the unterminated tail is delivered as a final frame
/// (matching `LineTransport::recv`), and the stream then reports EOF.
#[test]
fn tcp_partial_frame_at_eof_is_delivered_before_eof() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"complete\npartial-tail").unwrap();
        stream.shutdown(Shutdown::Write).unwrap();
        // Hold the read half open so the driver sees EOF, not a reset.
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    });

    let mut poll = PollTransport::new();
    let (stream, _) = listener.accept().unwrap();
    let t = poll.register_tcp(stream).unwrap();
    assert_eq!(
        poll.recv_deadline(t, DEADLINE).unwrap().as_deref(),
        Some("complete")
    );
    assert_eq!(
        poll.recv_deadline(t, DEADLINE).unwrap().as_deref(),
        Some("partial-tail")
    );
    assert_eq!(poll.recv_deadline(t, DEADLINE).unwrap(), None);
    poll.deregister(t);
    peer.join().unwrap();
}

/// Two connections each trickling a frame in fragments, arrivals
/// interleaved. Per-connection input buffers must keep the fragments
/// apart: each frame reassembles from its own connection's bytes only,
/// and a fragment for B arriving mid-wait on A is neither lost nor
/// spliced into A's frame.
#[test]
fn interleaved_partial_frames_stay_per_connection() {
    let mut poll = PollTransport::new();
    let (in_a, rx_a) = std::sync::mpsc::channel();
    let (in_b, rx_b) = std::sync::mpsc::channel();
    let (out_a, _keep_a) = std::sync::mpsc::channel();
    let (out_b, _keep_b) = std::sync::mpsc::channel();
    let a = poll.register_pipe(ChanReader::new(rx_a), ChanWriter(out_a));
    let b = poll.register_pipe(ChanReader::new(rx_b), ChanWriter(out_b));

    // A and B alternate fragments; neither frame is complete until the
    // fourth send, and B's completes first.
    in_a.send(b"alpha-".to_vec()).unwrap();
    in_b.send(b"beta-".to_vec()).unwrap();
    in_b.send(b"two\nb-next-".to_vec()).unwrap();
    in_a.send(b"one\n".to_vec()).unwrap();

    assert_eq!(
        poll.recv_deadline(a, DEADLINE).unwrap().as_deref(),
        Some("alpha-one")
    );
    // B's completed frame was buffered while the driver waited on A.
    assert_eq!(
        poll.recv_deadline(b, DEADLINE).unwrap().as_deref(),
        Some("beta-two")
    );
    // B's trailing fragment is still pending, not a frame.
    assert!(!poll.has_frame(b));
    in_b.send(b"frame\n".to_vec()).unwrap();
    assert_eq!(
        poll.recv_deadline(b, DEADLINE).unwrap().as_deref(),
        Some("b-next-frame")
    );
}

/// One frame far wider than the transport's 8 KiB intake buffer, sent
/// over TCP so the poll loop must stitch it together across many
/// non-blocking reads (and likely several `poll_once` passes, since the
/// sender is pushing through a real socket). A small frame behind it
/// proves the split leaves no residue.
#[test]
fn tcp_frame_larger_than_one_read_buffer_reassembles() {
    let payload = "0123456789abcdef".repeat(6 * 1024); // 96 KiB, ≥ 12 intake-buffer fills
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let sent = payload.clone();
    let peer = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(sent.as_bytes()).unwrap();
        stream.write_all(b"\nsmall\n").unwrap();
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    });

    let mut poll = PollTransport::new();
    let (stream, _) = listener.accept().unwrap();
    let t = poll.register_tcp(stream).unwrap();
    let big = poll.recv_deadline(t, DEADLINE).unwrap().unwrap();
    assert_eq!(big.len(), payload.len());
    assert_eq!(big, payload);
    assert_eq!(
        poll.recv_deadline(t, DEADLINE).unwrap().as_deref(),
        Some("small")
    );
    poll.deregister(t);
    peer.join().unwrap();
}

/// The same over-wide frame through the pumped-pipe path: the pump
/// thread's own 8 KiB chunking must not split or reorder bytes within
/// a connection.
#[test]
fn pipe_frame_larger_than_one_read_buffer_reassembles() {
    let payload = "fedcba9876543210".repeat(2 * 1024); // 32 KiB
    let mut poll = PollTransport::new();
    let (tx, rx) = std::sync::mpsc::channel();
    let (out, _keep) = std::sync::mpsc::channel();
    let t = poll.register_pipe(ChanReader::new(rx), ChanWriter(out));
    tx.send(format!("{payload}\n").into_bytes()).unwrap();
    let big = poll.recv_deadline(t, DEADLINE).unwrap().unwrap();
    assert_eq!(big, payload);
}
