//! Property-based tests of the network models: the ordering guarantees
//! the protocols build on.

use proptest::prelude::*;
use twobit_interconnect::{Crossbar, MessageSize, Network, NodeId, SharedBus};
use twobit_types::{CacheId, ModuleId};

fn node(sel: bool, idx: usize) -> NodeId {
    if sel {
        NodeId::Cache(CacheId::new(idx))
    } else {
        NodeId::Module(ModuleId::new(idx))
    }
}

proptest! {
    /// Per-destination FIFO: deliveries to one destination arrive in
    /// schedule order, regardless of sources, sizes, and injection times
    /// (as long as injection times are nondecreasing, which the event
    /// loop guarantees).
    #[test]
    fn crossbar_per_destination_fifo(
        sends in prop::collection::vec(
            (any::<bool>(), 0usize..4, any::<bool>(), 0u64..5), 1..60),
        cmd_lat in 0u64..4,
        data_lat in 0u64..8,
        occupancy in 0u64..3,
    ) {
        let mut x = Crossbar::new(cmd_lat, data_lat, occupancy);
        let mut now = 0u64;
        let mut last_arrival: std::collections::HashMap<NodeId, u64> = Default::default();
        for (is_cache, idx, data, dt) in sends {
            now += dt;
            let dst = node(is_cache, idx);
            let size = if data { MessageSize::Data } else { MessageSize::Command };
            let arrival = x.schedule(node(!is_cache, 0), dst, size, now);
            prop_assert!(arrival >= now, "no time travel");
            if let Some(&prev) = last_arrival.get(&dst) {
                prop_assert!(arrival >= prev, "FIFO violated at {dst}");
            }
            last_arrival.insert(dst, arrival);
        }
    }

    /// Queueing statistics equal the sum of imposed delays.
    #[test]
    fn crossbar_queueing_accounting(count in 1usize..30, occupancy in 1u64..4) {
        let mut x = Crossbar::new(0, 0, occupancy);
        // All messages to one port at time 0: message i waits i*occupancy.
        for _ in 0..count {
            x.schedule(node(false, 0), node(true, 0), MessageSize::Command, 0);
        }
        let expected: u64 = (0..count as u64).map(|i| i * occupancy).sum();
        prop_assert_eq!(x.stats().queueing_cycles.get(), expected);
        prop_assert_eq!(x.stats().deliveries.get(), count as u64);
    }

    /// The bus is a total order: completion times strictly increase for
    /// nonzero occupancies.
    #[test]
    fn bus_is_a_total_order(
        sends in prop::collection::vec((any::<bool>(), 0u64..5), 1..50),
    ) {
        let mut bus = SharedBus::new(2, 6);
        let mut now = 0u64;
        let mut last = 0u64;
        for (data, dt) in sends {
            now += dt;
            let size = if data { MessageSize::Data } else { MessageSize::Command };
            let done = bus.acquire(size, now);
            prop_assert!(done > last, "bus transactions must serialize");
            last = done;
        }
        prop_assert_eq!(bus.next_free(), last);
    }

    /// Bus utilization never exceeds wall-clock: busy time <= final time.
    #[test]
    fn bus_busy_time_bounded(sends in prop::collection::vec(0u64..5, 1..40)) {
        let mut bus = SharedBus::new(2, 6);
        let mut now = 0u64;
        let mut busy = 0u64;
        for dt in sends {
            now += dt;
            let before = bus.next_free().max(now);
            let done = bus.acquire(MessageSize::Command, now);
            busy += done - before;
        }
        prop_assert!(bus.next_free() >= busy);
    }
}
