//! End-to-end fleet runs: all six schemes under the adversarial fault
//! plan, determinism of the merged timeline, crash/restart recovery, and
//! the process/TCP hosting modes.

use std::path::PathBuf;

use twobit_dist::driver::{run, ArrivalSchedule, Mode, RunConfig};
use twobit_dist::faults::{Crash, FaultConfig};
use twobit_dist::wire::Actor;

const SCHEMES: [&str; 6] = [
    "two-bit",
    "two-bit+tlb",
    "full-map",
    "full-map+local",
    "classical-wt",
    "static-sw",
];

fn adversarial_cfg(scheme: &str, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::quick(scheme, seed);
    // Delay + jitter (reordering), retransmitted drops, lossy client
    // edge, and one partition cutting cache 0 off mid-run, then healing.
    cfg.faults = FaultConfig::adversarial(vec![Actor::Cache(0)], 300, 700);
    cfg
}

#[test]
fn all_schemes_linearizable_under_faults() {
    for scheme in SCHEMES {
        let report = run(&adversarial_cfg(scheme, 0xA5A5)).unwrap_or_else(|e| {
            panic!("{scheme}: {e}");
        });
        assert_eq!(report.total_refs, 400, "{scheme}: all refs must complete");
        assert_eq!(report.checker.ops, 400);
        assert_eq!(report.heal_lag.len(), 1);
        assert!(
            report.retries > 0 || report.retransmits > 0,
            "{scheme}: the fault plan must actually bite"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_timeline() {
    let a = run(&adversarial_cfg("two-bit", 77)).unwrap();
    let b = run(&adversarial_cfg("two-bit", 77)).unwrap();
    assert_eq!(a.timeline, b.timeline, "same seed must replay exactly");
    assert_eq!(a.ops, b.ops);

    let c = run(&adversarial_cfg("two-bit", 78)).unwrap();
    assert_ne!(
        a.timeline, c.timeline,
        "different seed should explore a different schedule"
    );
}

#[test]
fn crash_and_restart_resumes_all_schemes() {
    for scheme in SCHEMES {
        let mut cfg = RunConfig::quick(scheme, 0xBEEF);
        cfg.refs_per_client = 60;
        cfg.faults.jitter = 4;
        cfg.faults.checkpoint_every = 150;
        // One cache controller and one memory module crash mid-run, each
        // losing in-memory state; the driver restores the checkpoint and
        // replays the logged deliveries.
        cfg.faults.crashes = vec![
            Crash {
                at: 260,
                node: Actor::Cache(1),
                down_for: 80,
            },
            Crash {
                at: 420,
                node: Actor::Module(0),
                down_for: 80,
            },
        ];
        let report = run(&cfg).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.total_refs, 240, "{scheme}");
        assert_eq!(report.recoveries, 2, "{scheme}: both crashes must fire");
    }
}

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dist_node"))
}

#[test]
fn process_mode_matches_in_proc_timeline() {
    let mut inproc = adversarial_cfg("two-bit", 9);
    inproc.refs_per_client = 40;
    let mut process = inproc.clone();
    process.mode = Mode::Process {
        node_bin: node_bin(),
    };
    let a = run(&inproc).unwrap();
    let b = run(&process).unwrap();
    assert_eq!(
        a.timeline, b.timeline,
        "hosting mode must not affect the schedule"
    );
}

#[test]
fn tcp_mode_smoke() {
    let mut cfg = RunConfig::quick("full-map", 5);
    cfg.refs_per_client = 30;
    cfg.mode = Mode::Tcp {
        node_bin: node_bin(),
    };
    let report = run(&cfg).unwrap();
    assert_eq!(report.total_refs, 120);
}

// ---------------------------------------------------------------------------
// Open-loop load
// ---------------------------------------------------------------------------

#[test]
fn open_loop_rates_stay_linearizable_and_expose_queueing() {
    // A closed loop can never queue (the next request arrives only when
    // the previous completes), so its latency is pure service time. An
    // open loop arriving faster than the fleet serves must queue
    // driver-side — client-perceived latency has to come out higher.
    let mean_latency = |schedule: ArrivalSchedule| -> f64 {
        let mut cfg = RunConfig::quick("two-bit", 0x10AD);
        cfg.refs_per_client = 60;
        cfg.schedule = schedule;
        let report = run(&cfg).unwrap();
        assert_eq!(report.total_refs, 240, "every arrival must complete");
        let (count, sum) = report.latency.iter().fold((0u64, 0.0), |(c, s), (_, h)| {
            (c + h.count(), s + h.mean() * h.count() as f64)
        });
        assert_eq!(count, 240, "every op must be recorded in a histogram");
        sum / count as f64
    };
    let closed = mean_latency(ArrivalSchedule::Closed);
    let open_fast = mean_latency(ArrivalSchedule::Fixed {
        interval: 2,
        jitter: 0,
    });
    assert!(
        open_fast > closed,
        "overdriven open loop must show queueing: open {open_fast} vs closed {closed}"
    );
}

#[test]
fn burst_schedule_completes_under_faults() {
    for scheme in ["two-bit", "full-map"] {
        let mut cfg = adversarial_cfg(scheme, 0xB0B0);
        cfg.refs_per_client = 120;
        cfg.schedule = ArrivalSchedule::Burst {
            interval: 20,
            every: 4,
            size: 5,
        };
        let report = run(&cfg).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.total_refs, 480, "{scheme}");
        assert_eq!(report.checker.ops, 480, "{scheme}");
    }
}

#[test]
fn open_loop_timeline_identical_across_all_hosting_modes() {
    // The multiplexed driver batches same-instant deliveries — exactly
    // the situation open-loop bursts create — and the batch must not
    // leak hosting-dependent ordering into the record.
    let mut base = RunConfig::quick("two-bit", 0x0123);
    base.refs_per_client = 30;
    base.schedule = ArrivalSchedule::Burst {
        interval: 15,
        every: 3,
        size: 4,
    };
    base.faults.jitter = 3;
    let mut process = base.clone();
    process.mode = Mode::Process {
        node_bin: node_bin(),
    };
    let mut tcp = base.clone();
    tcp.mode = Mode::Tcp {
        node_bin: node_bin(),
    };
    let a = run(&base).unwrap();
    let b = run(&process).unwrap();
    let c = run(&tcp).unwrap();
    assert_eq!(a.timeline, b.timeline, "inproc vs process");
    assert_eq!(b.timeline, c.timeline, "process vs tcp");
    assert_eq!(a.ops, b.ops);
    assert_eq!(b.ops, c.ops);
}

// ---------------------------------------------------------------------------
// Mid-barrier module crash
// ---------------------------------------------------------------------------

/// Top-level `"t"` of a timeline line. Delivery lines sort keys, so the
/// top-level `t` is the last `"t":` occurrence; node-event lines have
/// exactly one.
fn line_t(line: &str) -> Option<u64> {
    let idx = line.rfind("\"t\":")?;
    let digits: String = line[idx + 4..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Parses a `barrier N released` node event: `(t, module, barrier)`.
fn barrier_release(line: &str) -> Option<(u64, usize, u64)> {
    let cmd = line.find("barrier ")?;
    line.contains(" released").then_some(())?;
    let actor = line.find("\"actor\":\"M")?;
    let module: usize = line[actor + 10..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()?;
    let barrier: u64 = line[cmd + 8..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()?;
    Some((line_t(line)?, module, barrier))
}

/// Finds an instant at which module `m` has an inv-ack barrier open:
/// after an acked invalidation was delivered, before the barrier
/// released. Returns `(crash_at, module, release_t)`.
fn find_open_barrier(timeline: &[String]) -> Option<(u64, usize, u64)> {
    for line in timeline {
        let Some((t_rel, module, barrier)) = barrier_release(line) else {
            continue;
        };
        // The acked invalidation this module sent for that barrier.
        let ack_pat = format!("\"ack\":{barrier},");
        let src_pat = format!("\"src\":\"M{module}\"");
        let t_ack = timeline
            .iter()
            .filter(|l| l.contains(&ack_pat) && l.contains(&src_pat))
            .filter_map(|l| line_t(l))
            .min()?;
        if t_rel > t_ack + 1 {
            return Some((t_ack + 1, module, t_rel));
        }
    }
    None
}

#[test]
fn module_crash_mid_inv_ack_barrier_all_schemes() {
    for scheme in SCHEMES {
        // Probe run: same config minus the crash. Determinism makes its
        // timeline a perfect oracle for where a barrier stands open in
        // the crashing run (the extra Restart calendar entry only
        // shifts sequence numbers uniformly and draws no randomness).
        let mut cfg = RunConfig::quick(scheme, 0xBA44);
        cfg.refs_per_client = 60;
        cfg.faults.checkpoint_every = 150;
        cfg.max_events = 250_000;
        let probe = run(&cfg).unwrap_or_else(|e| panic!("{scheme} probe: {e}"));

        let (at, module, release_t) = match find_open_barrier(&probe.timeline) {
            Some(found) => found,
            None => {
                // static-sw never invalidates (shared blocks bypass the
                // caches), so no barrier ever opens; crash mid-run
                // anyway so every scheme exercises module recovery.
                assert_eq!(
                    scheme, "static-sw",
                    "{scheme}: expected an inv-ack barrier in the probe run"
                );
                (200, 0, 200)
            }
        };
        // Outage long enough that the releasing ack is still undelivered
        // at the crash and must wait for the restart.
        let down_for = release_t.saturating_sub(at) + 40;
        cfg.faults.crashes = vec![Crash {
            at,
            node: Actor::Module(module),
            down_for,
        }];
        let report = run(&cfg).unwrap_or_else(|e| panic!("{scheme} crash run: {e}"));
        assert_eq!(report.total_refs, 240, "{scheme}");
        assert_eq!(report.recoveries, 1, "{scheme}: the crash must fire");
        if release_t > at {
            // The barrier that was open at the crash must still release
            // — after the restart, on the rebuilt module.
            let restart_pat = format!("\"dst\":\"M{module}\",\"restart\":true");
            assert!(
                report.timeline.iter().any(|l| l.contains(&restart_pat)),
                "{scheme}: restart marker missing"
            );
        }
    }
}
