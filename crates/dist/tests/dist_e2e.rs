//! End-to-end fleet runs: all six schemes under the adversarial fault
//! plan, determinism of the merged timeline, crash/restart recovery, and
//! the process/TCP hosting modes.

use std::path::PathBuf;

use twobit_dist::driver::{run, Mode, RunConfig};
use twobit_dist::faults::{Crash, FaultConfig};
use twobit_dist::wire::Actor;

const SCHEMES: [&str; 6] = [
    "two-bit",
    "two-bit+tlb",
    "full-map",
    "full-map+local",
    "classical-wt",
    "static-sw",
];

fn adversarial_cfg(scheme: &str, seed: u64) -> RunConfig {
    let mut cfg = RunConfig::quick(scheme, seed);
    // Delay + jitter (reordering), retransmitted drops, lossy client
    // edge, and one partition cutting cache 0 off mid-run, then healing.
    cfg.faults = FaultConfig::adversarial(vec![Actor::Cache(0)], 300, 700);
    cfg
}

#[test]
fn all_schemes_linearizable_under_faults() {
    for scheme in SCHEMES {
        let report = run(&adversarial_cfg(scheme, 0xA5A5)).unwrap_or_else(|e| {
            panic!("{scheme}: {e}");
        });
        assert_eq!(report.total_refs, 400, "{scheme}: all refs must complete");
        assert_eq!(report.checker.ops, 400);
        assert_eq!(report.heal_lag.len(), 1);
        assert!(
            report.retries > 0 || report.retransmits > 0,
            "{scheme}: the fault plan must actually bite"
        );
    }
}

#[test]
fn same_seed_reproduces_identical_timeline() {
    let a = run(&adversarial_cfg("two-bit", 77)).unwrap();
    let b = run(&adversarial_cfg("two-bit", 77)).unwrap();
    assert_eq!(a.timeline, b.timeline, "same seed must replay exactly");
    assert_eq!(a.ops, b.ops);

    let c = run(&adversarial_cfg("two-bit", 78)).unwrap();
    assert_ne!(
        a.timeline, c.timeline,
        "different seed should explore a different schedule"
    );
}

#[test]
fn crash_and_restart_resumes_all_schemes() {
    for scheme in SCHEMES {
        let mut cfg = RunConfig::quick(scheme, 0xBEEF);
        cfg.refs_per_client = 60;
        cfg.faults.jitter = 4;
        cfg.faults.checkpoint_every = 150;
        // One cache controller and one memory module crash mid-run, each
        // losing in-memory state; the driver restores the checkpoint and
        // replays the logged deliveries.
        cfg.faults.crashes = vec![
            Crash {
                at: 260,
                node: Actor::Cache(1),
                down_for: 80,
            },
            Crash {
                at: 420,
                node: Actor::Module(0),
                down_for: 80,
            },
        ];
        let report = run(&cfg).unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.total_refs, 240, "{scheme}");
        assert_eq!(report.recoveries, 2, "{scheme}: both crashes must fire");
    }
}

fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dist_node"))
}

#[test]
fn process_mode_matches_in_proc_timeline() {
    let mut inproc = adversarial_cfg("two-bit", 9);
    inproc.refs_per_client = 40;
    let mut process = inproc.clone();
    process.mode = Mode::Process {
        node_bin: node_bin(),
    };
    let a = run(&inproc).unwrap();
    let b = run(&process).unwrap();
    assert_eq!(
        a.timeline, b.timeline,
        "hosting mode must not affect the schedule"
    );
}

#[test]
fn tcp_mode_smoke() {
    let mut cfg = RunConfig::quick("full-map", 5);
    cfg.refs_per_client = 30;
    cfg.mode = Mode::Tcp {
        node_bin: node_bin(),
    };
    let report = run(&cfg).unwrap();
    assert_eq!(report.total_refs, 120);
}
