//! Linearizability checking for the recorded client history.
//!
//! The fleet's correctness claim is end-to-end: whatever the fault plan
//! did to the messages, the history of client operations must be
//! *linearizable* — there must exist a total order of the operations,
//! consistent with real time (an operation that completed before another
//! was invoked comes first), in which every read returns the version of
//! the latest preceding write.
//!
//! Structure that keeps the search tractable:
//!
//! * Blocks are independent registers, so each block is checked alone.
//! * Each client is *blocking* (one outstanding reference), so a client's
//!   operations are already totally ordered; a linearization is an
//!   interleaving of per-client sequences, and the search state is just
//!   a prefix vector plus the current version.
//! * Store versions are globally unique (the driver's oracle issues
//!   them), so a read pins exactly which write precedes it.
//!
//! The found linearization is then replayed through the simulator's own
//! [`Oracle`] as an independent cross-check: the distributed service and
//! the shared-memory reference implementation must agree on what every
//! read was allowed to return.

use std::collections::{BTreeMap, HashSet};

use twobit_core::Oracle;
use twobit_types::{AccessKind, BlockAddr, CacheId, Version};

/// One completed client operation, as recorded by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Issuing client (= its cache index).
    pub client: usize,
    /// Idempotency key the op was retried under.
    pub txn: u64,
    /// The block addressed.
    pub block: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Virtual time the request arrived at the client (open-loop
    /// schedules queue arrivals driver-side; `invoked - arrived` is the
    /// queueing delay). Equal to `invoked` under the closed loop.
    pub arrived: u64,
    /// Virtual time of the *first* issue (invocation). Linearizability
    /// is judged against this, not `arrived`: an op is concurrent with
    /// others only once it is actually in flight.
    pub invoked: u64,
    /// Virtual time the response was accepted (completion).
    pub completed: u64,
    /// Version observed (loads) or published (stores).
    pub version: u64,
    /// Whether the cache satisfied it without a directory transaction.
    pub was_hit: bool,
    /// Retries the client needed (0 = first send answered).
    pub retries: u64,
}

/// Outcome of a successful check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinearizationReport {
    /// Operations checked.
    pub ops: usize,
    /// Distinct blocks touched.
    pub blocks: usize,
    /// Search states visited across all blocks (effort indicator).
    pub states_visited: usize,
}

/// Verifies that `history` is linearizable and that the simulator's
/// oracle accepts the witness order.
///
/// # Errors
///
/// Describes the first block whose operations admit no valid
/// linearization, or (should the checker itself be wrong) an oracle
/// complaint about the witness.
pub fn check_history(history: &[OpRecord]) -> Result<LinearizationReport, String> {
    let mut per_block: BTreeMap<u64, Vec<&OpRecord>> = BTreeMap::new();
    for op in history {
        per_block.entry(op.block).or_default().push(op);
    }
    let mut states_visited = 0;
    for (block, ops) in &per_block {
        let witness = linearize_block(*block, ops, &mut states_visited)?;
        replay_through_oracle(*block, &witness)?;
    }
    Ok(LinearizationReport {
        ops: history.len(),
        blocks: per_block.len(),
        states_visited,
    })
}

/// Finds a linearization of one block's operations, or proves none
/// exists.
fn linearize_block<'h>(
    block: u64,
    ops: &[&'h OpRecord],
    states_visited: &mut usize,
) -> Result<Vec<&'h OpRecord>, String> {
    // Per-client sequences, in invocation order (clients are blocking, so
    // invocation order == completion order within a client).
    let mut lanes: Vec<Vec<&OpRecord>> = Vec::new();
    {
        let mut by_client: BTreeMap<usize, Vec<&OpRecord>> = BTreeMap::new();
        for op in ops {
            by_client.entry(op.client).or_default().push(op);
        }
        for (_, mut lane) in by_client {
            lane.sort_by_key(|o| o.invoked);
            lanes.push(lane);
        }
    }

    // Iterative DFS over (prefix vector, current version) states.
    let initial = Version::initial().raw();
    let mut seen: HashSet<(Vec<usize>, u64)> = HashSet::new();
    // Each stack frame: (prefix vector, current version, chosen so far).
    let mut stack = vec![(vec![0usize; lanes.len()], initial, Vec::new())];
    while let Some((prefix, current, chosen)) = stack.pop() {
        if chosen.len() == ops.len() {
            return Ok(chosen);
        }
        if !seen.insert((prefix.clone(), current)) {
            continue;
        }
        *states_visited += 1;
        // Real-time rule: the next linearized op must have been invoked
        // no later than the earliest completion among remaining ops —
        // otherwise some other op finished entirely before it began.
        let min_ret = lanes
            .iter()
            .zip(&prefix)
            .filter_map(|(lane, &i)| lane.get(i).map(|o| o.completed))
            .min()
            .unwrap_or(u64::MAX);
        for (c, lane) in lanes.iter().enumerate() {
            let Some(op) = lane.get(prefix[c]) else {
                continue;
            };
            if op.invoked > min_ret {
                continue;
            }
            let next_version = match op.kind {
                AccessKind::Read => {
                    if op.version != current {
                        continue; // would observe the wrong version
                    }
                    current
                }
                AccessKind::Write => op.version,
            };
            let mut p = prefix.clone();
            p[c] += 1;
            let mut ch: Vec<&OpRecord> = chosen.clone();
            ch.push(op);
            stack.push((p, next_version, ch));
        }
    }
    // Render the conflicting history so a failure is diagnosable from
    // the message alone.
    let mut dump: Vec<&OpRecord> = ops.to_vec();
    dump.sort_by_key(|o| o.invoked);
    let lines: Vec<String> = dump
        .iter()
        .map(|o| {
            format!(
                "  C{} {:?} v{} inv={} ret={} txn={}",
                o.client, o.kind, o.version, o.invoked, o.completed, o.txn
            )
        })
        .collect();
    Err(format!(
        "block {block}: no linearization exists for {} operations:\n{}",
        ops.len(),
        lines.join("\n")
    ))
}

/// Replays a witness order through a fresh [`Oracle`].
fn replay_through_oracle(block: u64, witness: &[&OpRecord]) -> Result<(), String> {
    let a = BlockAddr::new(block);
    let mut oracle = Oracle::new();
    for op in witness {
        match op.kind {
            AccessKind::Write => oracle.record_write(a, Version::new(op.version)),
            AccessKind::Read => oracle
                .check_read(CacheId::new(op.client), a, Version::new(op.version))
                .map_err(|e| format!("oracle rejects witness: {e}"))?,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(client: usize, kind: AccessKind, invoked: u64, completed: u64, version: u64) -> OpRecord {
        OpRecord {
            client,
            txn: invoked, // unique enough for tests
            block: 0,
            kind,
            arrived: invoked,
            invoked,
            completed,
            version,
            was_hit: false,
            retries: 0,
        }
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let h = vec![
            op(0, AccessKind::Write, 0, 10, 1),
            op(1, AccessKind::Read, 20, 30, 1),
            op(0, AccessKind::Write, 40, 50, 2),
            op(1, AccessKind::Read, 60, 70, 2),
        ];
        let r = check_history(&h).unwrap();
        assert_eq!(r.ops, 4);
        assert_eq!(r.blocks, 1);
    }

    #[test]
    fn concurrent_read_may_see_old_or_new() {
        // Write (10..50) concurrent with a read (20..30): the read may
        // see either the initial version or the new one.
        for observed in [Version::initial().raw(), 9] {
            let h = vec![
                op(0, AccessKind::Write, 10, 50, 9),
                op(1, AccessKind::Read, 20, 30, observed),
            ];
            check_history(&h).unwrap();
        }
    }

    #[test]
    fn stale_read_after_write_completed_is_rejected() {
        // The write completed (t=10) strictly before the read began
        // (t=20): the read may not observe the initial version.
        let h = vec![
            op(0, AccessKind::Write, 0, 10, 9),
            op(1, AccessKind::Read, 20, 30, Version::initial().raw()),
        ];
        let err = check_history(&h).unwrap_err();
        assert!(err.contains("no linearization"), "{err}");
    }

    #[test]
    fn read_of_never_written_version_is_rejected() {
        let h = vec![op(1, AccessKind::Read, 0, 5, 77)];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn real_time_order_between_clients_is_enforced() {
        // c0 writes v1 then v2 (both complete); c1's later read must not
        // return v1.
        let h = vec![
            op(0, AccessKind::Write, 0, 10, 1),
            op(0, AccessKind::Write, 20, 30, 2),
            op(1, AccessKind::Read, 40, 50, 1),
        ];
        assert!(check_history(&h).is_err());
    }

    #[test]
    fn blocks_are_independent_registers() {
        let mut h = vec![
            op(0, AccessKind::Write, 0, 10, 1),
            op(1, AccessKind::Read, 20, 30, 1),
        ];
        h.push(OpRecord {
            block: 7,
            ..op(1, AccessKind::Write, 5, 15, 2)
        });
        let r = check_history(&h).unwrap();
        assert_eq!(r.blocks, 2);
    }
}
