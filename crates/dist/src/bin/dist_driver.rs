//! Fleet driver CLI: spawn the six-scheme coherence service over real
//! processes, inject faults, and verify the recorded history.
//!
//! ```text
//! dist_driver --scheme two-bit --seed 7 --refs 200 --mode process \
//!             --partition 300:700 --trace-dir target/dist-trace
//! ```
//!
//! `--scheme all` runs every directory scheme in sequence. The exit code
//! is nonzero if any run fails its linearizability check. `--schedule`
//! selects the client arrival model (`closed`, `fixed:I[:J]`, or
//! `burst:I:E:S`) — open-loop schedules keep issuing at the configured
//! rate regardless of completions, so client-perceived latency includes
//! queueing.

use std::path::PathBuf;
use std::process::ExitCode;

use twobit_dist::driver::{run, ArrivalSchedule, Mode, RunConfig};
use twobit_dist::faults::{Crash, FaultConfig, Partition};
use twobit_dist::wire::Actor;

const ALL_SCHEMES: [&str; 6] = [
    "two-bit",
    "two-bit+tlb",
    "full-map",
    "full-map+local",
    "classical-wt",
    "static-sw",
];

struct Cli {
    schemes: Vec<String>,
    cfg: RunConfig,
    json: bool,
}

fn node_bin() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let bin = me
        .parent()
        .ok_or("driver binary has no parent directory")?
        .join("dist_node");
    if bin.exists() {
        Ok(bin)
    } else {
        Err(format!("node binary not found at {}", bin.display()))
    }
}

fn parse_args() -> Result<Cli, String> {
    let mut schemes = vec!["two-bit".to_string()];
    let mut cfg = RunConfig::quick("two-bit", 1);
    let mut json = false;
    let mut mode = "inproc".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--scheme" => {
                let v = val("--scheme")?;
                schemes = if v == "all" {
                    ALL_SCHEMES.iter().map(|s| s.to_string()).collect()
                } else {
                    vec![v]
                };
            }
            "--seed" => cfg.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--refs" => {
                cfg.refs_per_client = val("--refs")?.parse().map_err(|e| format!("--refs: {e}"))?;
            }
            "--caches" => {
                cfg.caches = val("--caches")?
                    .parse()
                    .map_err(|e| format!("--caches: {e}"))?;
            }
            "--modules" => {
                cfg.modules = val("--modules")?
                    .parse()
                    .map_err(|e| format!("--modules: {e}"))?;
            }
            "--mode" => mode = val("--mode")?,
            "--schedule" => cfg.schedule = ArrivalSchedule::parse(&val("--schedule")?)?,
            "--trace-dir" => cfg.trace_dir = Some(PathBuf::from(val("--trace-dir")?)),
            "--faults" => {
                cfg.faults = match val("--faults")?.as_str() {
                    "none" => FaultConfig::none(),
                    "adversarial" => FaultConfig::adversarial(vec![Actor::Cache(0)], 300, 700),
                    other => return Err(format!("unknown fault plan `{other}`")),
                };
            }
            "--partition" => {
                let v = val("--partition")?;
                let (start, heal) = v.split_once(':').ok_or("--partition wants START:HEAL")?;
                cfg.faults.partitions.push(Partition {
                    start: start.parse().map_err(|e| format!("--partition: {e}"))?,
                    heal: heal.parse().map_err(|e| format!("--partition: {e}"))?,
                    group: vec![Actor::Cache(0)],
                });
            }
            "--crash" => {
                let v = val("--crash")?;
                let parts: Vec<&str> = v.split(':').collect();
                if parts.len() != 3 {
                    return Err("--crash wants AT:NODE:DOWN_FOR (e.g. 400:C1:100)".into());
                }
                cfg.faults.crashes.push(Crash {
                    at: parts[0].parse().map_err(|e| format!("--crash: {e}"))?,
                    node: Actor::parse(parts[1])?,
                    down_for: parts[2].parse().map_err(|e| format!("--crash: {e}"))?,
                });
                if cfg.faults.checkpoint_every == 0 {
                    cfg.faults.checkpoint_every = 200;
                }
            }
            "--checkpoint-every" => {
                cfg.faults.checkpoint_every = val("--checkpoint-every")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-every: {e}"))?;
            }
            "--json" => json = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    cfg.mode = match mode.as_str() {
        "inproc" => Mode::InProc,
        "process" => Mode::Process {
            node_bin: node_bin()?,
        },
        "tcp" => Mode::Tcp {
            node_bin: node_bin()?,
        },
        other => return Err(format!("unknown mode `{other}`")),
    };
    Ok(Cli { schemes, cfg, json })
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("dist_driver: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for scheme in &cli.schemes {
        let mut cfg = cli.cfg.clone();
        cfg.scheme = scheme.clone();
        if let Some(dir) = &cli.cfg.trace_dir {
            cfg.trace_dir = Some(dir.join(scheme));
        }
        match run(&cfg) {
            Ok(report) => {
                if cli.json {
                    println!("{}", report.to_json().to_json());
                } else {
                    let lat: Vec<String> = report
                        .latency
                        .iter()
                        .filter(|(_, h)| h.count() > 0)
                        .map(|(class, h)| {
                            format!(
                                "{class} p50={} p99={}",
                                h.percentile(0.50),
                                h.percentile(0.99)
                            )
                        })
                        .collect();
                    println!(
                        "{scheme} [{}]: {} refs linearizable ({} retries, {} retransmits, \
                         {} drops, {} recoveries, vt {}, {} ms; {})",
                        report.schedule,
                        report.total_refs,
                        report.retries,
                        report.retransmits,
                        report.client_drops,
                        report.recoveries,
                        report.virtual_end,
                        report.wall_ms,
                        lat.join(", "),
                    );
                }
            }
            Err(e) => {
                eprintln!("{scheme}: FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
