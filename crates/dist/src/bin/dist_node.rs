//! A single fleet node: one cache controller or one memory module.
//!
//! Spawned by the driver. Speaks the JSONL control protocol on
//! stdin/stdout by default, or over TCP with `--tcp ADDR` (the node
//! connects to the listening driver). The first frame must be `init`;
//! after that the node answers one response per request until EOF or
//! `shutdown`.

use std::process::ExitCode;

use twobit_dist::node::Node;
use twobit_dist::wire::{request_from_line, response_line, Request, Response};
use twobit_interconnect::transport::{stdio, tcp_connect, Transport};

fn serve(io: &mut dyn Transport) -> Result<(), String> {
    let mut node: Option<Node> = None;
    while let Some(line) = io.recv().map_err(|e| format!("recv: {e}"))? {
        let resp = match request_from_line(&line) {
            Err(e) => Response::Error {
                msg: format!("bad request: {e}"),
            },
            Ok(Request::Init(cfg)) => match (&node, Node::new(&cfg)) {
                (Some(_), _) => Response::Error {
                    msg: "already initialized".into(),
                },
                (None, Ok(n)) => {
                    node = Some(n);
                    Response::InitOk
                }
                (None, Err(e)) => Response::Error { msg: e },
            },
            Ok(req) => match &mut node {
                None => Response::Error {
                    msg: "first request must be init".into(),
                },
                Some(n) => n.handle(&req),
            },
        };
        let done = matches!(resp, Response::ShutdownOk);
        io.send(&response_line(&resp))
            .map_err(|e| format!("send: {e}"))?;
        if done {
            break;
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match args.get(1).map(String::as_str) {
        Some("--tcp") => match args.get(2) {
            Some(addr) => match tcp_connect(addr.as_str()) {
                Ok(mut io) => serve(&mut io),
                Err(e) => Err(format!("connect {addr}: {e}")),
            },
            None => Err("--tcp needs an address".into()),
        },
        Some(other) => Err(format!("unknown argument `{other}` (only --tcp ADDR)")),
        None => serve(&mut stdio()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dist_node: {e}");
            ExitCode::FAILURE
        }
    }
}
