//! The wire vocabulary of the distributed fleet.
//!
//! Two message families share the JSONL framing of
//! [`twobit_interconnect::transport`]:
//!
//! * **Control** ([`Request`]/[`Response`]) — the driver↔node RPC. Every
//!   exchange is strict request/response: the driver sends one line and
//!   blocks for exactly one reply line, which is what makes virtual-time
//!   execution deterministic regardless of OS scheduling.
//! * **Envelopes** ([`Envelope`]/[`Payload`]) — node-to-node messages,
//!   always routed *through* the driver (star topology), never directly
//!   between nodes. The driver owns delivery time, ordering, and the
//!   fault plan; nodes only see `Deliver` calls.
//!
//! Coherence commands inside envelopes reuse the checkpoint codecs of
//! [`twobit_core::snapshot`], so the wire format and the checkpoint
//! format cannot drift apart.

use std::fmt;
use twobit_core::snapshot as codec;
use twobit_obs::json::{num_u64, obj, parse, Json};
use twobit_types::{CacheToMemory, MemRef, MemoryToCache, TxnId, Version};

/// A fleet endpoint: a cache-controller node, a memory-module node, or
/// the (driver-resident) client that drives one cache's processor side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Actor {
    /// Cache-controller node `C_k` (one process per cache).
    Cache(usize),
    /// Memory-module node `K_j`+`M_j` (one process per module).
    Module(usize),
    /// The workload client attached to cache `k`. Lives inside the
    /// driver; only the `C_k`↔client edge is lossy.
    Client(usize),
}

impl fmt::Display for Actor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Actor::Cache(k) => write!(f, "C{k}"),
            Actor::Module(j) => write!(f, "M{j}"),
            Actor::Client(k) => write!(f, "L{k}"),
        }
    }
}

impl Actor {
    /// Parses the `Display` form (`C0`, `M1`, `L2`).
    pub fn parse(s: &str) -> Result<Actor, String> {
        let (tag, idx) = s.split_at(1.min(s.len()));
        let n: usize = idx.parse().map_err(|_| format!("bad actor `{s}`"))?;
        match tag {
            "C" => Ok(Actor::Cache(n)),
            "M" => Ok(Actor::Module(n)),
            "L" => Ok(Actor::Client(n)),
            _ => Err(format!("bad actor `{s}`")),
        }
    }
}

/// A routed node-to-node message.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Sender.
    pub src: Actor,
    /// Recipient.
    pub dst: Actor,
    /// Content.
    pub payload: Payload,
}

/// What an envelope carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Client → cache node: one processor reference. Retries reuse the
    /// same `txn` *and* the same `sv` (the pre-assigned store version),
    /// so a node that already serviced the transaction can answer from
    /// its dedup table without re-executing.
    ClientReq {
        /// Idempotency key, unique per logical reference.
        txn: TxnId,
        /// The reference.
        op: MemRef,
        /// Pre-assigned store version (writes only) — the driver's
        /// oracle hands out globally unique versions at issue time.
        sv: Option<Version>,
    },
    /// Cache node → client: the reference retired.
    ClientResp {
        /// Echoed idempotency key.
        txn: TxnId,
        /// Data version observed (loads) or written (stores).
        observed: Version,
        /// Whether it was satisfied without a directory transaction.
        was_hit: bool,
    },
    /// Cache node → memory node: a coherence command.
    ToMemory {
        /// The command.
        cmd: CacheToMemory,
    },
    /// Memory node → cache node: a coherence command. `ack` carries a
    /// barrier id when the memory node needs delivery confirmed (the
    /// invalidation-acknowledgment barrier of DESIGN.md §9).
    ToCache {
        /// The command.
        cmd: MemoryToCache,
        /// Barrier to acknowledge after processing, if any.
        ack: Option<u64>,
    },
    /// Cache node → memory node: invalidation processed.
    InvAck {
        /// The barrier being acknowledged.
        barrier: u64,
    },
    /// Memory node → cache node: a write-through (or public store) with
    /// store version `sv` is globally visible; the held client response
    /// may be released.
    WtAck {
        /// The store version whose write is now visible.
        sv: Version,
    },
}

impl Payload {
    /// Short tag for timeline rendering.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::ClientReq { .. } => "client_req",
            Payload::ClientResp { .. } => "client_resp",
            Payload::ToMemory { .. } => "to_mem",
            Payload::ToCache { .. } => "to_cache",
            Payload::InvAck { .. } => "inv_ack",
            Payload::WtAck { .. } => "wt_ack",
        }
    }
}

/// Everything a node needs to build its half of the system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeConfig {
    /// This node's identity ([`Actor::Cache`] or [`Actor::Module`]).
    pub role: Actor,
    /// Scheme name as in [`twobit_core::DirectoryProtocol::name`].
    pub scheme: String,
    /// Number of caches in the fleet.
    pub caches: usize,
    /// Number of memory modules (interleaved address map).
    pub modules: usize,
    /// Cache organization: sets.
    pub sets: u32,
    /// Cache organization: associativity.
    pub assoc: u32,
    /// Cache organization: words per block.
    pub block_words: u32,
    /// First public block (static software scheme contract).
    pub shared_from: u64,
    /// BIAS filter capacity (0 disables).
    pub bias_entries: u32,
    /// Translation-buffer capacity for `two-bit+tlb`.
    pub tlb_entries: u32,
}

/// Driver → node control messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// First message on every connection: who the node is and how to
    /// build its core objects. (The Maelstrom `init` shape — see
    /// DESIGN.md §9.)
    Init(Box<NodeConfig>),
    /// Deliver one envelope at virtual time `now`. With `replay` the
    /// node executes identically but the driver discards the reply's
    /// outputs (they were already delivered before the crash).
    Deliver {
        /// Virtual delivery time.
        now: u64,
        /// Whether this is a crash-recovery replay.
        replay: bool,
        /// The message.
        env: Envelope,
    },
    /// Serialize complete node state.
    Checkpoint,
    /// Replace node state with a checkpoint document.
    Restore {
        /// The document from a previous `CheckpointOk`.
        state: Json,
    },
    /// Exit cleanly after replying.
    Shutdown,
}

/// Node → driver control replies.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Init accepted.
    InitOk,
    /// Delivery processed.
    DeliverOk {
        /// Envelopes to send, in issue order.
        outputs: Vec<Envelope>,
        /// Node-local trace events (SimEvent JSONL lines).
        events: Vec<String>,
    },
    /// Checkpoint document.
    CheckpointOk {
        /// Complete node state.
        state: Json,
    },
    /// Restore accepted.
    RestoreOk,
    /// About to exit.
    ShutdownOk,
    /// The node cannot continue (protocol violation, malformed input).
    Error {
        /// What happened.
        msg: String,
    },
}

// ---------------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------------

fn actor_json(a: Actor) -> Json {
    Json::Str(a.to_string())
}

fn actor_from(j: &Json) -> Result<Actor, String> {
    Actor::parse(j.as_str().ok_or("actor is not a string")?)
}

/// Encodes an envelope.
#[must_use]
pub fn envelope_json(env: &Envelope) -> Json {
    let payload = match &env.payload {
        Payload::ClientReq { txn, op, sv } => obj([
            ("t", Json::Str("client_req".into())),
            ("txn", num_u64(txn.raw())),
            ("op", codec::mem_ref_json(*op)),
            (
                "sv",
                match sv {
                    None => Json::Null,
                    Some(v) => codec::version_json(*v),
                },
            ),
        ]),
        Payload::ClientResp {
            txn,
            observed,
            was_hit,
        } => obj([
            ("t", Json::Str("client_resp".into())),
            ("txn", num_u64(txn.raw())),
            ("observed", codec::version_json(*observed)),
            ("hit", Json::Bool(*was_hit)),
        ]),
        Payload::ToMemory { cmd } => obj([
            ("t", Json::Str("to_mem".into())),
            ("cmd", codec::cache_to_memory_json(*cmd)),
        ]),
        Payload::ToCache { cmd, ack } => obj([
            ("t", Json::Str("to_cache".into())),
            ("cmd", codec::memory_to_cache_json(*cmd)),
            (
                "ack",
                match ack {
                    None => Json::Null,
                    Some(b) => num_u64(*b),
                },
            ),
        ]),
        Payload::InvAck { barrier } => obj([
            ("t", Json::Str("inv_ack".into())),
            ("barrier", num_u64(*barrier)),
        ]),
        Payload::WtAck { sv } => obj([
            ("t", Json::Str("wt_ack".into())),
            ("sv", codec::version_json(*sv)),
        ]),
    };
    obj([
        ("src", actor_json(env.src)),
        ("dst", actor_json(env.dst)),
        ("payload", payload),
    ])
}

fn req<'j>(j: &'j Json, key: &str) -> Result<&'j Json, String> {
    j.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

/// Decodes an envelope.
pub fn envelope_from(j: &Json) -> Result<Envelope, String> {
    let p = req(j, "payload")?;
    let payload = match req(p, "t")?.as_str() {
        Some("client_req") => Payload::ClientReq {
            txn: TxnId::new(p.req_u64("txn")?),
            op: codec::mem_ref_from(req(p, "op")?)?,
            sv: match req(p, "sv")? {
                Json::Null => None,
                v => Some(codec::version_from(v)?),
            },
        },
        Some("client_resp") => Payload::ClientResp {
            txn: TxnId::new(p.req_u64("txn")?),
            observed: codec::version_from(req(p, "observed")?)?,
            was_hit: req(p, "hit")?.as_bool().ok_or("`hit` is not a bool")?,
        },
        Some("to_mem") => Payload::ToMemory {
            cmd: codec::cache_to_memory_from(req(p, "cmd")?)?,
        },
        Some("to_cache") => Payload::ToCache {
            cmd: codec::memory_to_cache_from(req(p, "cmd")?)?,
            ack: match req(p, "ack")? {
                Json::Null => None,
                b => Some(b.as_u64().ok_or("`ack` is not a u64")?),
            },
        },
        Some("inv_ack") => Payload::InvAck {
            barrier: p.req_u64("barrier")?,
        },
        Some("wt_ack") => Payload::WtAck {
            sv: codec::version_from(req(p, "sv")?)?,
        },
        other => return Err(format!("bad payload tag {other:?}")),
    };
    Ok(Envelope {
        src: actor_from(req(j, "src")?)?,
        dst: actor_from(req(j, "dst")?)?,
        payload,
    })
}

fn node_config_json(c: &NodeConfig) -> Json {
    obj([
        ("role", actor_json(c.role)),
        ("scheme", Json::Str(c.scheme.clone())),
        ("caches", num_u64(c.caches as u64)),
        ("modules", num_u64(c.modules as u64)),
        ("sets", num_u64(u64::from(c.sets))),
        ("assoc", num_u64(u64::from(c.assoc))),
        ("block_words", num_u64(u64::from(c.block_words))),
        ("shared_from", num_u64(c.shared_from)),
        ("bias_entries", num_u64(u64::from(c.bias_entries))),
        ("tlb_entries", num_u64(u64::from(c.tlb_entries))),
    ])
}

fn node_config_from(j: &Json) -> Result<NodeConfig, String> {
    Ok(NodeConfig {
        role: actor_from(req(j, "role")?)?,
        scheme: j.req_str("scheme")?.to_string(),
        caches: j.req_u64("caches")? as usize,
        modules: j.req_u64("modules")? as usize,
        sets: j.req_u64("sets")? as u32,
        assoc: j.req_u64("assoc")? as u32,
        block_words: j.req_u64("block_words")? as u32,
        shared_from: j.req_u64("shared_from")?,
        bias_entries: j.req_u64("bias_entries")? as u32,
        tlb_entries: j.req_u64("tlb_entries")? as u32,
    })
}

/// Renders a request as one frame.
#[must_use]
pub fn request_line(r: &Request) -> String {
    let j = match r {
        Request::Init(c) => obj([
            ("t", Json::Str("init".into())),
            ("config", node_config_json(c)),
        ]),
        Request::Deliver { now, replay, env } => obj([
            ("t", Json::Str("deliver".into())),
            ("now", num_u64(*now)),
            ("replay", Json::Bool(*replay)),
            ("env", envelope_json(env)),
        ]),
        Request::Checkpoint => obj([("t", Json::Str("checkpoint".into()))]),
        Request::Restore { state } => {
            obj([("t", Json::Str("restore".into())), ("state", state.clone())])
        }
        Request::Shutdown => obj([("t", Json::Str("shutdown".into()))]),
    };
    j.to_json()
}

/// Parses one frame as a request.
pub fn request_from_line(line: &str) -> Result<Request, String> {
    let j = parse(line)?;
    match req(&j, "t")?.as_str() {
        Some("init") => Ok(Request::Init(Box::new(node_config_from(req(
            &j, "config",
        )?)?))),
        Some("deliver") => Ok(Request::Deliver {
            now: j.req_u64("now")?,
            replay: req(&j, "replay")?.as_bool().ok_or("`replay` not a bool")?,
            env: envelope_from(req(&j, "env")?)?,
        }),
        Some("checkpoint") => Ok(Request::Checkpoint),
        Some("restore") => Ok(Request::Restore {
            state: req(&j, "state")?.clone(),
        }),
        Some("shutdown") => Ok(Request::Shutdown),
        other => Err(format!("bad request tag {other:?}")),
    }
}

/// Renders a response as one frame.
#[must_use]
pub fn response_line(r: &Response) -> String {
    let j = match r {
        Response::InitOk => obj([("t", Json::Str("init_ok".into()))]),
        Response::DeliverOk { outputs, events } => obj([
            ("t", Json::Str("deliver_ok".into())),
            (
                "outputs",
                Json::Arr(outputs.iter().map(envelope_json).collect()),
            ),
            (
                "events",
                Json::Arr(events.iter().map(|e| Json::Str(e.clone())).collect()),
            ),
        ]),
        Response::CheckpointOk { state } => obj([
            ("t", Json::Str("checkpoint_ok".into())),
            ("state", state.clone()),
        ]),
        Response::RestoreOk => obj([("t", Json::Str("restore_ok".into()))]),
        Response::ShutdownOk => obj([("t", Json::Str("shutdown_ok".into()))]),
        Response::Error { msg } => obj([
            ("t", Json::Str("error".into())),
            ("msg", Json::Str(msg.clone())),
        ]),
    };
    j.to_json()
}

/// Parses one frame as a response.
pub fn response_from_line(line: &str) -> Result<Response, String> {
    let j = parse(line)?;
    match req(&j, "t")?.as_str() {
        Some("init_ok") => Ok(Response::InitOk),
        Some("deliver_ok") => {
            let outputs = req(&j, "outputs")?
                .as_array()
                .ok_or("`outputs` is not an array")?
                .iter()
                .map(envelope_from)
                .collect::<Result<Vec<_>, _>>()?;
            let events = req(&j, "events")?
                .as_array()
                .ok_or("`events` is not an array")?
                .iter()
                .map(|e| {
                    e.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "event is not a string".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Response::DeliverOk { outputs, events })
        }
        Some("checkpoint_ok") => Ok(Response::CheckpointOk {
            state: req(&j, "state")?.clone(),
        }),
        Some("restore_ok") => Ok(Response::RestoreOk),
        Some("shutdown_ok") => Ok(Response::ShutdownOk),
        Some("error") => Ok(Response::Error {
            msg: j.req_str("msg")?.to_string(),
        }),
        other => Err(format!("bad response tag {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{AccessKind, BlockAddr, CacheId, WordAddr};

    #[test]
    fn actor_display_parse_roundtrip() {
        for a in [Actor::Cache(0), Actor::Module(13), Actor::Client(2)] {
            assert_eq!(Actor::parse(&a.to_string()).unwrap(), a);
        }
        assert!(Actor::parse("X1").is_err());
        assert!(Actor::parse("").is_err());
    }

    #[test]
    fn envelope_roundtrips_every_payload() {
        let envs = vec![
            Envelope {
                src: Actor::Client(1),
                dst: Actor::Cache(1),
                payload: Payload::ClientReq {
                    txn: TxnId::new(7),
                    op: MemRef::write(WordAddr::new(5, 0)),
                    sv: Some(Version::new(3)),
                },
            },
            Envelope {
                src: Actor::Cache(1),
                dst: Actor::Client(1),
                payload: Payload::ClientResp {
                    txn: TxnId::new(7),
                    observed: Version::new(3),
                    was_hit: false,
                },
            },
            Envelope {
                src: Actor::Cache(0),
                dst: Actor::Module(1),
                payload: Payload::ToMemory {
                    cmd: CacheToMemory::Request {
                        k: CacheId::new(0),
                        a: BlockAddr::new(9),
                        rw: AccessKind::Read,
                    },
                },
            },
            Envelope {
                src: Actor::Module(1),
                dst: Actor::Cache(2),
                payload: Payload::ToCache {
                    cmd: MemoryToCache::BroadInv {
                        a: BlockAddr::new(9),
                        exclude: CacheId::new(0),
                    },
                    ack: Some(4),
                },
            },
            Envelope {
                src: Actor::Cache(2),
                dst: Actor::Module(1),
                payload: Payload::InvAck { barrier: 4 },
            },
            Envelope {
                src: Actor::Module(1),
                dst: Actor::Cache(0),
                payload: Payload::WtAck {
                    sv: Version::new(8),
                },
            },
        ];
        for env in envs {
            let line = envelope_json(&env).to_json();
            let back = envelope_from(&parse(&line).unwrap()).unwrap();
            assert_eq!(back, env);
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        let reqs = vec![
            Request::Init(Box::new(NodeConfig {
                role: Actor::Module(0),
                scheme: "two-bit".into(),
                caches: 4,
                modules: 2,
                sets: 8,
                assoc: 2,
                block_words: 4,
                shared_from: 1 << 32,
                bias_entries: 0,
                tlb_entries: 0,
            })),
            Request::Checkpoint,
            Request::Restore { state: Json::Null },
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(request_from_line(&request_line(&r)).unwrap(), r);
        }
        let resps = vec![
            Response::InitOk,
            Response::DeliverOk {
                outputs: vec![],
                events: vec!["{}".into()],
            },
            Response::CheckpointOk { state: Json::Null },
            Response::RestoreOk,
            Response::ShutdownOk,
            Response::Error { msg: "boom".into() },
        ];
        for r in resps {
            assert_eq!(response_from_line(&response_line(&r)).unwrap(), r);
        }
    }
}
