//! Node-side logic: one cache controller or one memory module wrapped in
//! a message-in/messages-out step function.
//!
//! A node is deterministic and passive: it never spontaneously emits
//! anything, it only reacts to [`Request::Deliver`]. All ordering, time,
//! and fault behavior live in the driver; crash-recovery replay therefore
//! reproduces node state exactly by re-delivering the logged inputs.
//!
//! # The invalidation-acknowledgment barrier
//!
//! In the shared-memory simulator a broadcast invalidation takes effect
//! in the same quiescence step as the grant it precedes. Over a real
//! network that atomicity is gone: a `GETDATA` grant could race ahead of
//! the `BROADINV` that justifies it, letting a stale copy satisfy a read
//! *after* a newer write completed — an un-linearizable history. The
//! memory node therefore withholds every completion message (`GETDATA`,
//! `MGRANTED`, and the synthesized [`Payload::WtAck`]) for a block until
//! each invalidation it issued for that block has been acknowledged with
//! [`Payload::InvAck`]. Commands for the blocked address arriving in the
//! window are deferred FIFO and submitted after release (DESIGN.md §9).

use std::collections::{BTreeMap, VecDeque};

use twobit_core::snapshot as codec;
use twobit_core::{
    build_policy_for, build_protocol_for, CacheAgent, Completion, Controller, CtrlEmit,
};
use twobit_obs::json::{num_u64, obj, Json};
use twobit_obs::{ActorId, SimEvent};
use twobit_types::{
    AddressMap, BlockAddr, CacheId, CacheOrg, CacheToMemory, ControllerConcurrency, MemoryToCache,
    ModuleId, ProtocolKind, SystemConfig, TxnId, Version,
};

use crate::wire::{Actor, Envelope, NodeConfig, Payload, Request, Response};

/// Maps a scheme name (as carried in [`NodeConfig::scheme`]) to its
/// [`ProtocolKind`].
///
/// # Errors
///
/// Rejects unknown names and the bus-snooping protocols (they need a
/// shared bus, which the star-routed fleet does not model).
pub fn scheme_kind(name: &str, tlb_entries: u32) -> Result<ProtocolKind, String> {
    match name {
        "two-bit" => Ok(ProtocolKind::TwoBit),
        "two-bit+tlb" => Ok(ProtocolKind::TwoBitTlb {
            entries: tlb_entries.max(1),
        }),
        "full-map" => Ok(ProtocolKind::FullMap),
        "full-map+local" => Ok(ProtocolKind::FullMapLocal),
        "classical-wt" => Ok(ProtocolKind::ClassicalWriteThrough),
        "static-sw" => Ok(ProtocolKind::StaticSoftware),
        other => Err(format!("scheme `{other}` cannot run distributed")),
    }
}

fn block_of_c2m(cmd: &CacheToMemory) -> BlockAddr {
    match *cmd {
        CacheToMemory::Request { a, .. }
        | CacheToMemory::MRequest { a, .. }
        | CacheToMemory::PutData { a, .. }
        | CacheToMemory::WriteThrough { a, .. }
        | CacheToMemory::DirectRead { a, .. } => a,
        CacheToMemory::Eject { olda, .. } => olda,
    }
}

fn block_of_m2c(cmd: &MemoryToCache) -> BlockAddr {
    match *cmd {
        MemoryToCache::GetData { a, .. }
        | MemoryToCache::BroadInv { a, .. }
        | MemoryToCache::BroadQuery { a, .. }
        | MemoryToCache::MGranted { a, .. }
        | MemoryToCache::Inv { a, .. }
        | MemoryToCache::Purge { a, .. } => a,
    }
}

/// Either half of the fleet, behind one step interface.
#[derive(Debug)]
pub enum Node {
    /// A cache-controller node.
    Cache(CacheNode),
    /// A memory-module node.
    Mem(MemNode),
}

impl Node {
    /// Builds a node from its init configuration.
    ///
    /// # Errors
    ///
    /// Rejects bad schemes, bad cache organizations, and client roles
    /// (clients live inside the driver).
    pub fn new(cfg: &NodeConfig) -> Result<Node, String> {
        let kind = scheme_kind(&cfg.scheme, cfg.tlb_entries)?;
        match cfg.role {
            Actor::Cache(k) => {
                if k >= cfg.caches {
                    return Err(format!("cache index {k} out of range"));
                }
                let org = CacheOrg::new(cfg.sets, cfg.assoc, cfg.block_words)
                    .map_err(|e| format!("bad cache organization: {e:?}"))?;
                let mut agent = CacheAgent::new(
                    CacheId::new(k),
                    org,
                    build_policy_for(kind, cfg.shared_from),
                    false,
                );
                agent.set_bias_entries(cfg.bias_entries);
                Ok(Node::Cache(CacheNode {
                    agent,
                    id: k,
                    map: AddressMap::interleaved(cfg.modules),
                    current: None,
                    held: None,
                    done: BTreeMap::new(),
                }))
            }
            Actor::Module(j) => {
                if j >= cfg.modules {
                    return Err(format!("module index {j} out of range"));
                }
                let sys = SystemConfig::with_defaults(cfg.caches).with_protocol(kind);
                let ctrl = Controller::new(
                    ModuleId::new(j),
                    build_protocol_for(&sys),
                    cfg.caches,
                    ControllerConcurrency::PerBlock,
                );
                Ok(Node::Mem(MemNode {
                    ctrl,
                    module: j,
                    caches: cfg.caches,
                    next_barrier: 1,
                    gates: BTreeMap::new(),
                }))
            }
            Actor::Client(_) => Err("clients run inside the driver, not as nodes".into()),
        }
    }

    /// Processes one control request. `Init` is handled by the caller
    /// (it is what constructs the node); here it is an error.
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::Init(_) => Response::Error {
                msg: "node already initialized".into(),
            },
            Request::Deliver { now, env, .. } => {
                // `replay` does not change node behavior: the node is
                // deterministic, so re-delivering the logged inputs
                // rebuilds the state; the *driver* discards the outputs.
                let r = match self {
                    Node::Cache(n) => n.deliver(*now, env),
                    Node::Mem(n) => n.deliver(*now, env),
                };
                match r {
                    Ok((outputs, events)) => Response::DeliverOk { outputs, events },
                    Err(msg) => Response::Error { msg },
                }
            }
            Request::Checkpoint => Response::CheckpointOk {
                state: match self {
                    Node::Cache(n) => n.save_state(),
                    Node::Mem(n) => n.save_state(),
                },
            },
            Request::Restore { state } => {
                let r = match self {
                    Node::Cache(n) => n.restore_state(state),
                    Node::Mem(n) => n.restore_state(state),
                };
                match r {
                    Ok(()) => Response::RestoreOk,
                    Err(msg) => Response::Error { msg },
                }
            }
            Request::Shutdown => Response::ShutdownOk,
        }
    }
}

// ---------------------------------------------------------------------------
// Cache node
// ---------------------------------------------------------------------------

/// One cache controller as a network service.
///
/// Wraps the simulator's [`CacheAgent`] with the client-edge idempotency
/// layer: the client↔cache edge is at-least-once (the driver retries on
/// timeout), so the node keeps a table of completed transactions and
/// answers duplicates from it without re-executing.
#[derive(Debug)]
pub struct CacheNode {
    agent: CacheAgent,
    id: usize,
    map: AddressMap,
    /// The transaction being serviced, if any. Set from `ClientReq`
    /// until its `ClientResp` is emitted; duplicate requests for it are
    /// dropped (the reply will reach the client when ready).
    current: Option<TxnId>,
    /// A completed write-through store whose `ClientResp` waits for the
    /// memory node's [`Payload::WtAck`] (global visibility). At most one:
    /// the client is blocking.
    held: Option<HeldResp>,
    /// Completed transactions, for duplicate-request replay.
    done: BTreeMap<u64, (Version, bool)>,
}

#[derive(Debug, Clone, Copy)]
struct HeldResp {
    sv: Version,
    txn: TxnId,
    observed: Version,
    was_hit: bool,
}

impl CacheNode {
    fn me(&self) -> Actor {
        Actor::Cache(self.id)
    }

    fn actor_id(&self) -> ActorId {
        ActorId::Cache(CacheId::new(self.id))
    }

    fn route(&self, cmd: CacheToMemory) -> Envelope {
        let module = self.map.module_of(block_of_c2m(&cmd)).index();
        Envelope {
            src: self.me(),
            dst: Actor::Module(module),
            payload: Payload::ToMemory { cmd },
        }
    }

    fn respond(&mut self, txn: TxnId, observed: Version, was_hit: bool) -> Envelope {
        self.done.insert(txn.raw(), (observed, was_hit));
        self.current = None;
        Envelope {
            src: self.me(),
            dst: Actor::Client(self.id),
            payload: Payload::ClientResp {
                txn,
                observed,
                was_hit,
            },
        }
    }

    fn complete(&mut self, c: &Completion, outputs: &mut Vec<Envelope>) -> Result<(), String> {
        let txn = self
            .current
            .ok_or("completion with no transaction in flight")?;
        outputs.push(self.respond(txn, c.observed, c.was_hit));
        Ok(())
    }

    fn deliver(
        &mut self,
        now: u64,
        env: &Envelope,
    ) -> Result<(Vec<Envelope>, Vec<String>), String> {
        let mut outputs = Vec::new();
        let mut events = Vec::new();
        match &env.payload {
            Payload::ClientReq { txn, op, sv } => {
                if let Some(&(observed, was_hit)) = self.done.get(&txn.raw()) {
                    // Duplicate of a completed transaction: replay the
                    // answer, touch nothing.
                    outputs.push(Envelope {
                        src: self.me(),
                        dst: Actor::Client(self.id),
                        payload: Payload::ClientResp {
                            txn: *txn,
                            observed,
                            was_hit,
                        },
                    });
                    return Ok((outputs, events));
                }
                if self.current == Some(*txn) {
                    // Duplicate of the in-flight transaction: the answer
                    // is on its way; drop the retry.
                    return Ok((outputs, events));
                }
                if let Some(busy) = self.current {
                    return Err(format!(
                        "C{}: new txn {} while {} in flight",
                        self.id,
                        txn.raw(),
                        busy.raw()
                    ));
                }
                self.current = Some(*txn);
                let store_version = sv.unwrap_or(Version::new(0));
                let out = self.agent.start(*op, store_version);
                events.push(
                    SimEvent::new(
                        now,
                        self.actor_id(),
                        op.addr.block,
                        format!("txn {} {:?} start", txn.raw(), op.kind),
                    )
                    .to_jsonl(),
                );
                // A fire-and-forget store (write-through policy or a
                // static-scheme public store) retires locally but is not
                // globally visible until memory confirms it; hold the
                // client response for the WtAck.
                let through = out.sends.iter().any(|s| {
                    matches!(s, CacheToMemory::WriteThrough { version, .. } if *version == store_version)
                });
                for send in out.sends {
                    outputs.push(self.route(send));
                }
                if let Some(c) = out.completed {
                    if through {
                        self.held = Some(HeldResp {
                            sv: store_version,
                            txn: *txn,
                            observed: c.observed,
                            was_hit: c.was_hit,
                        });
                    } else {
                        self.complete(&c, &mut outputs)?;
                    }
                }
            }
            Payload::ToCache { cmd, ack } => {
                events.push(
                    SimEvent::new(
                        now,
                        self.actor_id(),
                        block_of_m2c(cmd),
                        format!("deliver {cmd}"),
                    )
                    .to_jsonl(),
                );
                let out = self
                    .agent
                    .on_network(*cmd)
                    .map_err(|e| format!("C{}: {e}", self.id))?;
                for send in out.sends {
                    outputs.push(self.route(send));
                }
                // The ack goes after the responses the command provoked,
                // so a PUT supplied by a purge is already on the (FIFO)
                // link when the barrier releases.
                if let Some(barrier) = ack {
                    outputs.push(Envelope {
                        src: self.me(),
                        dst: env.src,
                        payload: Payload::InvAck { barrier: *barrier },
                    });
                }
                if let Some(c) = out.completed {
                    self.complete(&c, &mut outputs)?;
                }
            }
            Payload::WtAck { sv } => {
                let held = self
                    .held
                    .take()
                    .ok_or_else(|| format!("C{}: WtAck with nothing held", self.id))?;
                if held.sv != *sv {
                    return Err(format!(
                        "C{}: WtAck for v{} but v{} held",
                        self.id,
                        sv.raw(),
                        held.sv.raw()
                    ));
                }
                outputs.push(self.respond(held.txn, held.observed, held.was_hit));
            }
            other => return Err(format!("C{}: unexpected payload {}", self.id, other.kind())),
        }
        Ok((outputs, events))
    }

    fn save_state(&self) -> Json {
        let done = self
            .done
            .iter()
            .map(|(txn, (v, hit))| {
                obj([
                    ("txn", num_u64(*txn)),
                    ("v", codec::version_json(*v)),
                    ("hit", Json::Bool(*hit)),
                ])
            })
            .collect();
        obj([
            ("role", Json::Str(self.me().to_string())),
            ("agent", self.agent.save_state()),
            (
                "current",
                match self.current {
                    None => Json::Null,
                    Some(t) => num_u64(t.raw()),
                },
            ),
            (
                "held",
                match &self.held {
                    None => Json::Null,
                    Some(h) => obj([
                        ("sv", codec::version_json(h.sv)),
                        ("txn", num_u64(h.txn.raw())),
                        ("observed", codec::version_json(h.observed)),
                        ("hit", Json::Bool(h.was_hit)),
                    ]),
                },
            ),
            ("done", Json::Arr(done)),
        ])
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), String> {
        let role = j.req_str("role")?;
        if Actor::parse(role)? != self.me() {
            return Err(format!("checkpoint is for {role}, this is {}", self.me()));
        }
        let agent_doc = j.get("agent").ok_or("missing key `agent`")?;
        self.agent.restore_state(agent_doc)?;
        self.current = match j.get("current").ok_or("missing key `current`")? {
            Json::Null => None,
            t => Some(TxnId::new(t.as_u64().ok_or("`current` is not a u64")?)),
        };
        self.held = match j.get("held").ok_or("missing key `held`")? {
            Json::Null => None,
            h => Some(HeldResp {
                sv: codec::version_from(h.get("sv").ok_or("missing `sv`")?)?,
                txn: TxnId::new(h.req_u64("txn")?),
                observed: codec::version_from(h.get("observed").ok_or("missing `observed`")?)?,
                was_hit: h.get("hit").and_then(Json::as_bool).ok_or("bad `hit`")?,
            }),
        };
        let mut done = BTreeMap::new();
        for e in j
            .get("done")
            .and_then(Json::as_array)
            .ok_or("`done` is not an array")?
        {
            done.insert(
                e.req_u64("txn")?,
                (
                    codec::version_from(e.get("v").ok_or("missing `v`")?)?,
                    e.get("hit").and_then(Json::as_bool).ok_or("bad `hit`")?,
                ),
            );
        }
        self.done = done;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Memory node
// ---------------------------------------------------------------------------

/// One memory module (controller + storage) as a network service.
///
/// Wraps the simulator's [`Controller`] with two distribution-only
/// mechanisms: broadcast expansion (the star network has no bus, so a
/// `BROADINV` becomes n−1 unicasts the node can count acknowledgments
/// for) and the invalidation barrier described at module level.
#[derive(Debug)]
pub struct MemNode {
    ctrl: Controller,
    module: usize,
    caches: usize,
    next_barrier: u64,
    /// Active barriers, keyed by block number. At most one per block.
    gates: BTreeMap<u64, Gate>,
}

#[derive(Debug)]
struct Gate {
    barrier: u64,
    outstanding: usize,
    /// Completion envelopes withheld until release.
    held: Vec<Envelope>,
    /// Commands for this block that arrived during the barrier window.
    deferred: VecDeque<CacheToMemory>,
}

impl MemNode {
    fn me(&self) -> Actor {
        Actor::Module(self.module)
    }

    fn deliver(
        &mut self,
        now: u64,
        env: &Envelope,
    ) -> Result<(Vec<Envelope>, Vec<String>), String> {
        let mut outputs = Vec::new();
        let mut events = Vec::new();
        match &env.payload {
            Payload::ToMemory { cmd } => {
                events.push(
                    SimEvent::new(
                        now,
                        ActorId::Module(ModuleId::new(self.module)),
                        block_of_c2m(cmd),
                        format!("deliver {cmd}"),
                    )
                    .to_jsonl(),
                );
                self.process(*cmd, &mut outputs)?;
            }
            Payload::InvAck { barrier } => {
                self.on_inv_ack(now, *barrier, &mut outputs, &mut events)?;
            }
            other => {
                return Err(format!(
                    "M{}: unexpected payload {}",
                    self.module,
                    other.kind()
                ))
            }
        }
        Ok((outputs, events))
    }

    /// Submits one command to the controller, expanding broadcasts and
    /// applying the barrier discipline. Commands for a gated block are
    /// deferred instead.
    fn process(&mut self, cmd: CacheToMemory, outputs: &mut Vec<Envelope>) -> Result<(), String> {
        let a = block_of_c2m(&cmd);
        if let Some(gate) = self.gates.get_mut(&a.number()) {
            gate.deferred.push_back(cmd);
            return Ok(());
        }
        // The synthesized completion for fire-and-forget stores: the
        // writer gets a WtAck once the store (and its invalidations) are
        // globally visible.
        let wt_ack = match cmd {
            CacheToMemory::WriteThrough { k, version, .. } => Some(Envelope {
                src: self.me(),
                dst: Actor::Cache(k.index()),
                payload: Payload::WtAck { sv: version },
            }),
            _ => None,
        };
        let queued_before = self.ctrl.queued();
        let emits = self
            .ctrl
            .submit(cmd)
            .map_err(|e| format!("M{}: {e}", self.module))?;
        if wt_ack.is_some() && self.ctrl.queued() > queued_before {
            // The write-through schemes never make the controller busy,
            // so a queued WRITETHRU would mean the WtAck below lies about
            // visibility. Fail loudly rather than break linearizability.
            return Err(format!("M{}: WRITETHRU was queued", self.module));
        }

        // Expand emits to unicast envelopes, tagging invalidations.
        struct Out {
            dst: usize,
            cmd: MemoryToCache,
            needs_ack: bool,
        }
        let mut expanded = Vec::new();
        for emit in emits {
            match emit {
                CtrlEmit::Unicast { to, cmd, .. } => {
                    let needs_ack = matches!(cmd, MemoryToCache::Inv { .. });
                    expanded.push(Out {
                        dst: to.index(),
                        cmd,
                        needs_ack,
                    });
                }
                CtrlEmit::Broadcast { cmd, exclude, .. } => {
                    let needs_ack = matches!(cmd, MemoryToCache::BroadInv { .. });
                    for k in 0..self.caches {
                        if k == exclude.index() {
                            continue;
                        }
                        expanded.push(Out {
                            dst: k,
                            cmd,
                            needs_ack,
                        });
                    }
                }
            }
        }

        // Barrier discipline, applied in emission order. The first
        // invalidation for a block opens a gate (one submit can cover
        // several transactions — the controller drains its internal
        // queue — so a `GETDATA` completing a read may precede the
        // `BROADINV…, GETDATA` of a drained write on the same block; that
        // first grant logically precedes the invalidations and goes out
        // ahead of them). Once a gate is open, *every* later emission for
        // that block is withheld until release, not just the completions:
        // a drained follow-up transaction's PURGE must not overtake the
        // withheld grant it logically follows, or the purged cache sees
        // the purge before the data and the controller waits forever for
        // a PUT that never comes. Only the invalidations themselves go
        // straight out — they are what the gate counts acks for.
        let me = self.me();
        for out in expanded {
            let block = block_of_m2c(&out.cmd).number();
            if out.needs_ack {
                if !self.gates.contains_key(&block) {
                    let barrier = self.next_barrier;
                    self.next_barrier += 1;
                    self.gates.insert(
                        block,
                        Gate {
                            barrier,
                            outstanding: 0,
                            held: Vec::new(),
                            deferred: VecDeque::new(),
                        },
                    );
                }
                let gate = self.gates.get_mut(&block).expect("gate just ensured");
                gate.outstanding += 1;
                outputs.push(Envelope {
                    src: me,
                    dst: Actor::Cache(out.dst),
                    payload: Payload::ToCache {
                        cmd: out.cmd,
                        ack: Some(gate.barrier),
                    },
                });
                continue;
            }
            let env = Envelope {
                src: me,
                dst: Actor::Cache(out.dst),
                payload: Payload::ToCache {
                    cmd: out.cmd,
                    ack: None,
                },
            };
            match self.gates.get_mut(&block) {
                Some(g) => g.held.push(env),
                None => outputs.push(env),
            }
        }
        if let Some(ack_env) = wt_ack {
            let block = a.number();
            match self.gates.get_mut(&block) {
                Some(g) => g.held.push(ack_env),
                None => outputs.push(ack_env),
            }
        }
        Ok(())
    }

    fn on_inv_ack(
        &mut self,
        now: u64,
        barrier: u64,
        outputs: &mut Vec<Envelope>,
        events: &mut Vec<String>,
    ) -> Result<(), String> {
        let block = *self
            .gates
            .iter()
            .find(|(_, g)| g.barrier == barrier)
            .map(|(b, _)| b)
            .ok_or_else(|| format!("M{}: ack for unknown barrier {barrier}", self.module))?;
        let gate = self.gates.get_mut(&block).expect("gate exists");
        gate.outstanding -= 1;
        if gate.outstanding > 0 {
            return Ok(());
        }
        let gate = self.gates.remove(&block).expect("gate exists");
        events.push(
            SimEvent::new(
                now,
                ActorId::Module(ModuleId::new(self.module)),
                BlockAddr::new(block),
                format!("barrier {barrier} released"),
            )
            .to_jsonl(),
        );
        outputs.extend(gate.held);
        // Re-submit what queued up behind the barrier, in arrival order.
        // If one of them starts a new barrier on this block, the rest
        // re-defer automatically inside `process`.
        for cmd in gate.deferred {
            self.process(cmd, outputs)?;
        }
        Ok(())
    }

    fn save_state(&self) -> Json {
        let gates = self
            .gates
            .iter()
            .map(|(block, g)| {
                obj([
                    ("a", num_u64(*block)),
                    ("barrier", num_u64(g.barrier)),
                    ("outstanding", num_u64(g.outstanding as u64)),
                    (
                        "held",
                        Json::Arr(g.held.iter().map(crate::wire::envelope_json).collect()),
                    ),
                    (
                        "deferred",
                        Json::Arr(
                            g.deferred
                                .iter()
                                .map(|c| codec::cache_to_memory_json(*c))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        obj([
            ("role", Json::Str(self.me().to_string())),
            ("ctrl", self.ctrl.save_state()),
            ("next_barrier", num_u64(self.next_barrier)),
            ("gates", Json::Arr(gates)),
        ])
    }

    fn restore_state(&mut self, j: &Json) -> Result<(), String> {
        let role = j.req_str("role")?;
        if Actor::parse(role)? != self.me() {
            return Err(format!("checkpoint is for {role}, this is {}", self.me()));
        }
        let ctrl_doc = j.get("ctrl").ok_or("missing key `ctrl`")?;
        self.ctrl.restore_state(ctrl_doc)?;
        let next_barrier = j.req_u64("next_barrier")?;
        let mut gates = BTreeMap::new();
        for g in j
            .get("gates")
            .and_then(Json::as_array)
            .ok_or("`gates` is not an array")?
        {
            let held = g
                .get("held")
                .and_then(Json::as_array)
                .ok_or("`held` is not an array")?
                .iter()
                .map(crate::wire::envelope_from)
                .collect::<Result<Vec<_>, _>>()?;
            let deferred = g
                .get("deferred")
                .and_then(Json::as_array)
                .ok_or("`deferred` is not an array")?
                .iter()
                .map(codec::cache_to_memory_from)
                .collect::<Result<VecDeque<_>, _>>()?;
            gates.insert(
                g.req_u64("a")?,
                Gate {
                    barrier: g.req_u64("barrier")?,
                    outstanding: g.req_u64("outstanding")? as usize,
                    held,
                    deferred,
                },
            );
        }
        self.next_barrier = next_barrier;
        self.gates = gates;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twobit_types::{AccessKind, MemRef, WordAddr};

    fn cfg(role: Actor, scheme: &str) -> NodeConfig {
        NodeConfig {
            role,
            scheme: scheme.into(),
            caches: 3,
            modules: 2,
            sets: 8,
            assoc: 2,
            block_words: 4,
            shared_from: 1 << 32,
            bias_entries: 0,
            tlb_entries: 4,
        }
    }

    fn client_req(k: usize, txn: u64, op: MemRef, sv: Option<Version>) -> Envelope {
        Envelope {
            src: Actor::Client(k),
            dst: Actor::Cache(k),
            payload: Payload::ClientReq {
                txn: TxnId::new(txn),
                op,
                sv,
            },
        }
    }

    fn deliver(node: &mut Node, env: &Envelope) -> Vec<Envelope> {
        match node.handle(&Request::Deliver {
            now: 0,
            replay: false,
            env: env.clone(),
        }) {
            Response::DeliverOk { outputs, .. } => outputs,
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn read_miss_flows_cache_to_module_and_back() {
        let mut cache = Node::new(&cfg(Actor::Cache(0), "two-bit")).unwrap();
        let mut module = Node::new(&cfg(Actor::Module(0), "two-bit")).unwrap();
        let op = MemRef::read(WordAddr::new(4, 0)); // block 4 → module 0
        let out = deliver(&mut cache, &client_req(0, 1, op, None));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, Actor::Module(0));
        let out = deliver(&mut module, &out[0]);
        assert_eq!(out.len(), 1, "uncached block: immediate grant");
        let out = deliver(&mut cache, &out[0]);
        assert_eq!(out.len(), 1);
        match &out[0].payload {
            Payload::ClientResp { txn, .. } => assert_eq!(txn.raw(), 1),
            other => panic!("expected ClientResp, got {}", other.kind()),
        }
    }

    #[test]
    fn duplicate_client_requests_are_idempotent() {
        let mut cache = Node::new(&cfg(Actor::Cache(0), "two-bit")).unwrap();
        let mut module = Node::new(&cfg(Actor::Module(0), "two-bit")).unwrap();
        let op = MemRef::read(WordAddr::new(4, 0));
        let req = client_req(0, 1, op, None);
        let to_mem = deliver(&mut cache, &req);
        // Retry while in flight: dropped.
        assert!(deliver(&mut cache, &req).is_empty());
        let grant = deliver(&mut module, &to_mem[0]);
        let resp1 = deliver(&mut cache, &grant[0]);
        // Retry after completion: replayed from the dedup table, with the
        // same observed version, and no new traffic to memory.
        let resp2 = deliver(&mut cache, &req);
        assert_eq!(resp1, resp2);
    }

    #[test]
    fn write_miss_holds_grant_until_inv_acks() {
        let mut module = Node::new(&cfg(Actor::Module(0), "two-bit")).unwrap();
        let mut c0 = Node::new(&cfg(Actor::Cache(0), "two-bit")).unwrap();
        let mut c1 = Node::new(&cfg(Actor::Cache(1), "two-bit")).unwrap();
        let mut c2 = Node::new(&cfg(Actor::Cache(2), "two-bit")).unwrap();
        let a = WordAddr::new(4, 0);

        // c1 and c2 read block 4 → Present* (two sharers).
        for (k, cache) in [(1usize, &mut c1), (2usize, &mut c2)] {
            let to_mem = deliver(cache, &client_req(k, k as u64, MemRef::read(a), None));
            let grant = deliver(&mut module, &to_mem[0]);
            deliver(cache, &grant[0]);
        }

        // c0 write-misses: BROADINV to c1+c2, grant withheld.
        let to_mem = deliver(
            &mut c0,
            &client_req(0, 10, MemRef::write(a), Some(Version::new(7))),
        );
        let out = deliver(&mut module, &to_mem[0]);
        let invs: Vec<_> = out
            .iter()
            .filter(|e| matches!(e.payload, Payload::ToCache { ack: Some(_), .. }))
            .collect();
        assert_eq!(invs.len(), 2, "both sharers get acked invalidations");
        assert!(
            !out.iter().any(|e| matches!(
                &e.payload,
                Payload::ToCache {
                    cmd: MemoryToCache::GetData { .. },
                    ..
                }
            )),
            "grant must wait for the barrier"
        );

        // Deliver the invalidation to c1 only: barrier still closed.
        let ack1 = deliver(&mut c1, invs[0]);
        let after_one = deliver(&mut module, ack1.last().unwrap());
        assert!(after_one.is_empty());

        // Second ack releases the grant.
        let ack2 = deliver(&mut c2, invs[1]);
        let released = deliver(&mut module, ack2.last().unwrap());
        assert_eq!(released.len(), 1);
        match &released[0].payload {
            Payload::ToCache {
                cmd: MemoryToCache::GetData { exclusive, .. },
                ..
            } => assert!(*exclusive),
            other => panic!("expected held grant, got {}", other.kind()),
        }
        let resp = deliver(&mut c0, &released[0]);
        assert!(
            matches!(resp[0].payload, Payload::ClientResp { observed, .. } if observed == Version::new(7))
        );
    }

    #[test]
    fn commands_for_a_gated_block_are_deferred() {
        let mut module = Node::new(&cfg(Actor::Module(0), "two-bit")).unwrap();
        let mut c1 = Node::new(&cfg(Actor::Cache(1), "two-bit")).unwrap();
        let a = WordAddr::new(4, 0);

        // c1 shares block 4.
        let to_mem = deliver(&mut c1, &client_req(1, 1, MemRef::read(a), None));
        let grant = deliver(&mut module, &to_mem[0]);
        deliver(&mut c1, &grant[0]);

        // c0 write-misses → barrier on block 4 (one sharer to invalidate).
        let out = deliver(
            &mut module,
            &Envelope {
                src: Actor::Cache(0),
                dst: Actor::Module(0),
                payload: Payload::ToMemory {
                    cmd: CacheToMemory::Request {
                        k: CacheId::new(0),
                        a: BlockAddr::new(4),
                        rw: AccessKind::Write,
                    },
                },
            },
        );
        // Two-bit does not know the sharer's identity: both other caches
        // get an acked invalidation.
        let mut c2 = Node::new(&cfg(Actor::Cache(2), "two-bit")).unwrap();
        let invs: Vec<Envelope> = out
            .iter()
            .filter(|e| matches!(e.payload, Payload::ToCache { ack: Some(_), .. }))
            .cloned()
            .collect();
        assert_eq!(invs.len(), 2);

        // c2's read for the same block arrives inside the window: deferred.
        let deferred = deliver(
            &mut module,
            &Envelope {
                src: Actor::Cache(2),
                dst: Actor::Module(0),
                payload: Payload::ToMemory {
                    cmd: CacheToMemory::Request {
                        k: CacheId::new(2),
                        a: BlockAddr::new(4),
                        rw: AccessKind::Read,
                    },
                },
            },
        );
        assert!(deferred.is_empty(), "gated-block command must wait");

        // The first ack keeps the barrier closed; the last one releases
        // the c0 grant AND processes c2's read, which must see the
        // *post-write* state (queried from the new owner).
        let ack1 = deliver(&mut c1, &invs[0]);
        assert!(deliver(&mut module, ack1.last().unwrap()).is_empty());
        let ack2 = deliver(&mut c2, &invs[1]);
        let released = deliver(&mut module, ack2.last().unwrap());
        assert!(released
            .iter()
            .any(|e| matches!(&e.payload, Payload::ToCache { cmd: MemoryToCache::GetData { k, .. }, .. } if k.index() == 0)));
        // c2's deferred read triggers a query of the new exclusive owner,
        // not an immediate grant of the stale memory copy.
        assert!(released.iter().any(|e| matches!(
            &e.payload,
            Payload::ToCache {
                cmd: MemoryToCache::BroadQuery { .. } | MemoryToCache::Purge { .. },
                ..
            }
        )));
    }

    #[test]
    fn write_through_store_waits_for_wt_ack() {
        let mut cache = Node::new(&cfg(Actor::Cache(0), "classical-wt")).unwrap();
        let mut module = Node::new(&cfg(Actor::Module(0), "classical-wt")).unwrap();
        let a = WordAddr::new(4, 0);
        let out = deliver(
            &mut cache,
            &client_req(0, 1, MemRef::write(a), Some(Version::new(5))),
        );
        // The store posts through but the client response is held.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0].payload,
            Payload::ToMemory {
                cmd: CacheToMemory::WriteThrough { .. }
            }
        ));
        // The classical scheme broadcasts an invalidation on every
        // write-through; the WtAck is held until both other caches ack.
        let out = deliver(&mut module, &out[0]);
        let invs: Vec<Envelope> = out
            .iter()
            .filter(|e| matches!(e.payload, Payload::ToCache { ack: Some(_), .. }))
            .cloned()
            .collect();
        assert_eq!(invs.len(), 2);
        assert!(!out
            .iter()
            .any(|e| matches!(e.payload, Payload::WtAck { .. })));
        let mut c1 = Node::new(&cfg(Actor::Cache(1), "classical-wt")).unwrap();
        let mut c2 = Node::new(&cfg(Actor::Cache(2), "classical-wt")).unwrap();
        let ack1 = deliver(&mut c1, &invs[0]);
        assert!(deliver(&mut module, ack1.last().unwrap()).is_empty());
        let ack2 = deliver(&mut c2, &invs[1]);
        let released = deliver(&mut module, ack2.last().unwrap());
        let wt = released
            .iter()
            .find(|e| matches!(e.payload, Payload::WtAck { .. }))
            .expect("WtAck after barrier");
        let resp = deliver(&mut cache, wt);
        assert!(
            matches!(resp[0].payload, Payload::ClientResp { observed, .. } if observed == Version::new(5))
        );
    }

    #[test]
    fn node_checkpoint_roundtrips_through_text() {
        let mut cache = Node::new(&cfg(Actor::Cache(0), "two-bit")).unwrap();
        let mut module = Node::new(&cfg(Actor::Module(0), "two-bit")).unwrap();
        let op = MemRef::read(WordAddr::new(4, 0));
        let to_mem = deliver(&mut cache, &client_req(0, 1, op, None));
        let grant = deliver(&mut module, &to_mem[0]);
        deliver(&mut cache, &grant[0]);

        for node in [&mut cache, &mut module] {
            let state = match node.handle(&Request::Checkpoint) {
                Response::CheckpointOk { state } => state,
                other => panic!("unexpected: {other:?}"),
            };
            let text = state.to_json();
            let parsed = twobit_obs::json::parse(&text).unwrap();
            assert!(matches!(
                node.handle(&Request::Restore { state: parsed }),
                Response::RestoreOk
            ));
            let again = match node.handle(&Request::Checkpoint) {
                Response::CheckpointOk { state } => state,
                other => panic!("unexpected: {other:?}"),
            };
            assert_eq!(again.to_json(), text, "checkpoint must be canonical");
        }
    }
}
